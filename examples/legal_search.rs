//! Example 1.1 from the paper, end to end.
//!
//! "A user wants to find a model that can summarize a legal document…
//! there are 1M+ models… the user finds it hard to choose." The paper's
//! concerns, answered by lake machinery instead of scrolling:
//!
//! * *Is this model aware of legal jargon?*            → domain benchmarks
//! * *Is it good at the task?*                         → leaderboards
//! * *Is this the latest version?*                     → version graph depth
//! * *Was it trained on legal texts, and which?*       → provenance queries
//! * *What are similar models? Same training texts?*   → model-as-query +
//!   trained-on closures
//!
//! ```text
//! cargo run --example legal_search --release
//! ```

use model_lakes::core::lake::{LakeConfig, ModelLake};
use model_lakes::core::populate::{populate_from_ground_truth, CardPolicy};
use model_lakes::core::ModelId;
use model_lakes::datagen::{generate_lake, LakeSpec};
use model_lakes::fingerprint::FingerprintKind;

fn main() {
    let gt = generate_lake(&LakeSpec {
        seed: 1,
        num_base_models: 8,
        derivations_per_base: 4,
        ..LakeSpec::default()
    });
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).expect("populate");
    let known: Vec<ModelId> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    lake.rebuild_version_graph(Some(known)).expect("graph");

    println!("-- the user's question, as a declarative query ----------------");
    let mlql = "FIND MODELS \
                WHERE domain = 'legal' AND task = 'classification' \
                ORDER BY score('legal-holdout') DESC \
                LIMIT 3";
    println!("MLQL> {mlql}\n");
    let hits = lake.prepare(mlql).expect("parse").run().expect("query");
    if hits.is_empty() {
        println!("(no legal classifiers in this lake — try another seed)");
        return;
    }
    for (rank, hit) in hits.iter().enumerate() {
        let entry = lake.entry(ModelId(hit.id)).expect("entry");
        println!(
            "#{}  {:<44} legal-holdout = {:.3}",
            rank + 1,
            entry.name,
            hit.score.unwrap_or_default()
        );
    }

    let chosen = ModelId(hits[0].id);
    let entry = lake.entry(chosen).expect("entry");
    println!("\n-- due diligence on '{}' --------------------------", entry.name);

    // Is this the latest version? Where does it sit in the lineage?
    let path = lake.lineage_path(chosen).expect("lineage");
    println!("lineage: {}", path.join(" → "));

    // Which texts was it trained on?
    println!("training data on card:");
    for t in &entry.card.training_data {
        println!("  - {}", t.dataset_name);
    }

    // Does the documentation survive verification?
    let report = lake.verify_model_card(chosen).expect("verify");
    println!(
        "card verification: {} ({} contradictions, completeness {:.2})",
        if report.passes() { "PASS" } else { "FAIL" },
        report.contradictions(),
        report.completeness
    );

    // What are the related models (same lineage or behaviour)?
    println!("related models (model-as-query, hybrid fingerprint):");
    for (id, sim) in lake.similar(chosen, FingerprintKind::Hybrid, 3).expect("similar") {
        println!("  {:<44} similarity {:.3}", lake.entry(id).unwrap().name, sim);
    }

    // Models trained on the same texts — or versions of them.
    if let Some(first) = entry.card.training_data.first() {
        let q = format!(
            "FIND MODELS TRAINED ON DATASET '{}' INCLUDING VERSIONS",
            first.dataset_name
        );
        println!("\nMLQL> {q}");
        for hit in lake.prepare(&q).expect("parse").run().expect("query") {
            println!("  {}", lake.entry(ModelId(hit.id)).unwrap().name);
        }
    }
}
