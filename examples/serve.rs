//! Serve: stand up the HTTP service from the README "Serving" section
//! over a freshly generated benchmark lake, then run until killed.
//!
//! ```text
//! cargo run --example serve --release             # binds 127.0.0.1:8080
//! cargo run --example serve --release -- 127.0.0.1:0   # ephemeral port
//! ```
//!
//! Try it from another shell (the startup banner prints copy-pastable
//! commands with the bound port filled in):
//!
//! ```text
//! curl -s localhost:8080/v1/health
//! curl -s localhost:8080/v1/lakes/main/models
//! curl -s 'localhost:8080/v1/lakes/main/models/0/similar?kind=hybrid&k=5'
//! ```

use model_lakes::core::lake::{LakeConfig, ModelLake};
use model_lakes::core::populate::{populate_from_ground_truth, CardPolicy};
use model_lakes::datagen::{generate_lake, LakeSpec};
use model_lakes::server::{LakeRouter, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:8080".into());

    // A benchmark lake with verified ground truth, same as quickstart.
    let gt = generate_lake(&LakeSpec::tiny(42));
    let lake = ModelLake::new(LakeConfig::builder().name("main").build().unwrap());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
    let n = gt.models.len();

    let router = Arc::new(LakeRouter::new());
    let lake = router.register("main", lake);
    let first = lake.model_names().into_iter().next();

    let server = Server::bind(router, &addr, ServerConfig::default()).unwrap();
    let at = server.addr();
    println!("serving {n} models on http://{at}  (ctrl-c to stop)");
    println!("  curl -s {at}/v1/health");
    println!("  curl -s {at}/v1/lakes/main/models");
    if let Some(name) = first {
        println!("  curl -s '{at}/v1/lakes/main/models/{name}/similar?kind=hybrid&k=5'");
        println!("  curl -s {at}/v1/lakes/main/models/{name}/cite");
    }
    println!("  curl -s -X POST {at}/v1/lakes/main/query -d '{{\"mlql\": \"FIND MODELS LIMIT 3\"}}'");

    // Serve until the process is killed; connections are handled on
    // background threads, so the main thread just parks.
    loop {
        std::thread::park();
    }
}
