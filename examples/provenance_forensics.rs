//! Provenance forensics on an *undocumented* lake, plus a PoisonGPT-style
//! deception (§4: "people could intentionally misinform model users with
//! malicious intent").
//!
//! Scenario: a lake full of models whose uploaders wrote no documentation,
//! and one uploader who *lies* about their model's base. The lake recovers
//! the version graph from weights and behaviour, auto-generates cards, and
//! flags the liar.
//!
//! ```text
//! cargo run --example provenance_forensics --release
//! ```

use model_lakes::cards::corrupt::{corrupt_card, CardCorruption};
use model_lakes::core::lake::{LakeConfig, ModelLake};
use model_lakes::core::populate::{honest_card, populate_from_ground_truth, CardPolicy};
use model_lakes::core::ModelId;
use model_lakes::datagen::{generate_lake, LakeSpec};

fn main() {
    let gt = generate_lake(&LakeSpec::tiny(9));
    let lake = ModelLake::new(LakeConfig::default());
    // Nobody documented anything.
    populate_from_ground_truth(&lake, &gt, CardPolicy::Skeleton).expect("populate");

    // --- 1. Version-graph recovery ---------------------------------------
    // Two access regimes: the realistic one where foundation models are
    // known (hubs know their Llamas), and fully blind recovery — which is
    // genuinely hard (cf. Horwitz et al.) and shown here warts and all.
    let known: Vec<ModelId> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    for (label, roots) in [("known foundation models", Some(known)), ("blind", None)] {
        let graph = lake.rebuild_version_graph(roots).expect("recovery");
        println!("-- version-graph recovery ({label}) ----------------------");
        let mut correct = 0usize;
        for e in &graph.edges {
            let truth = gt
                .edges
                .iter()
                .find(|t| t.child == e.child && t.parent == e.parent);
            let verdict = match truth {
                Some(t) if t.kind == e.kind => {
                    correct += 1;
                    "| edge + kind correct"
                }
                Some(_) => "~ edge right, kind off",
                None => "x not a true edge",
            };
            println!(
                "  {} --{}--> {}   {}",
                lake.entry(ModelId(e.parent as u64)).unwrap().name,
                e.kind.name(),
                lake.entry(ModelId(e.child as u64)).unwrap().name,
                verdict
            );
        }
        println!(
            "  fully correct: {correct}/{} recovered ({} true edges)\n",
            graph.edges.len(),
            gt.edges.len()
        );
    }
    // Leave the better (known-roots) graph installed for the steps below.
    let known: Vec<ModelId> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    lake.rebuild_version_graph(Some(known)).expect("recovery");

    // --- 2. Auto-generate documentation ---------------------------------
    println!("-- auto-generated card for one undocumented model --------------");
    let some_derived = gt
        .edges
        .first()
        .map(|e| ModelId(e.child as u64))
        .unwrap_or(ModelId(0));
    let card = lake.generate_card(some_derived).expect("card");
    println!("{}\n", card.to_json().expect("card serializes"));

    // --- 3. Catch the liar ----------------------------------------------
    // A malicious uploader claims their derived model descends from a
    // prestigious unrelated base.
    let victim = some_derived;
    let honest = honest_card(&gt, victim.0 as usize);
    let decoy = gt
        .models
        .iter()
        .map(|m| m.name.clone())
        .find(|n| Some(n.as_str()) != honest.lineage.base_model.as_deref())
        .expect("a decoy base exists");
    let lying = corrupt_card(&honest, CardCorruption::FalseBaseModel, &decoy, "travel");
    lake.update_card(victim, lying).expect("card");
    let report = lake.verify_model_card(victim).expect("verify");
    println!("-- verification of the lying card ------------------------------");
    println!(
        "verdict: {}",
        if report.passes() { "PASS (missed!)" } else { "CONTRADICTED" }
    );
    for f in &report.findings {
        println!("  [{:?}] {}: claimed {}, observed {}", f.severity, f.field, f.claimed, f.observed);
    }
}
