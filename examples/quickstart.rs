//! Quickstart: build a tiny model lake, ingest models, and exercise every
//! headline task — search, versioning, benchmarking, cards, citations, MLQL.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use model_lakes::core::lake::{LakeConfig, ModelLake};
use model_lakes::core::populate::{populate_from_ground_truth, CardPolicy};
use model_lakes::core::ModelId;
use model_lakes::datagen::{generate_lake, LakeSpec};
use model_lakes::fingerprint::FingerprintKind;

fn main() {
    // 1. Generate a benchmark lake with verified ground truth: real (small)
    //    models, really derived from each other (fine-tune/LoRA/edit/...).
    let gt = generate_lake(&LakeSpec::tiny(42));
    println!(
        "generated {} models across {} derivation edges\n",
        gt.models.len(),
        gt.edges.len()
    );

    // 2. Stand up a lake and ingest everything with honest documentation.
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).expect("populate");
    println!("lake holds {} models, benchmarks: {:?}\n", lake.len(), {
        let mut b = lake.benchmark_names();
        b.truncate(4);
        b
    });

    // 3. Content-based related-model search (model as query).
    let query_model = ModelId(0);
    let name = lake.entry(query_model).expect("entry").name;
    println!("models most similar to '{name}' (hybrid fingerprint):");
    for (id, sim) in lake
        .similar(query_model, FingerprintKind::Hybrid, 3)
        .expect("search")
    {
        println!("  {:<40} similarity {:.3}", lake.entry(id).unwrap().name, sim);
    }

    // 4. Version-graph recovery.
    let known: Vec<ModelId> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    let graph = lake.rebuild_version_graph(Some(known)).expect("graph");
    println!("\nrecovered version graph: {} edges, {} roots", graph.edges.len(), graph.roots.len());

    // 5. Benchmark leaderboard.
    let lb = lake.leaderboard("legal-holdout").expect("leaderboard");
    if let Some(best) = lb.best() {
        println!(
            "\nbest model on legal-holdout: {} ({} = {:.3})",
            lake.entry(ModelId(best.model_id)).unwrap().name,
            best.score.metric,
            best.score.value
        );
    }

    // 6. Declarative search (MLQL).
    let mlql = "FIND MODELS WHERE domain = 'legal' ORDER BY score('legal-holdout') DESC LIMIT 3";
    println!("\nMLQL> {mlql}");
    let prepared = lake.prepare(mlql).expect("parse");
    for step in prepared.explain() {
        println!("  plan: {step}");
    }
    for hit in prepared.run().expect("query") {
        println!(
            "  {:<40} score {:?}",
            lake.entry(ModelId(hit.id)).unwrap().name,
            hit.score
        );
    }

    // 7. A graph-timestamped citation.
    let citation = lake.cite(ModelId(1)).expect("cite");
    println!("\ncitation: {}", citation.text());
    println!("bibtex key: {}", citation.key());
}
