//! Compliance auditing and graph-versioned citation (§6 Auditing; §6 Data
//! and Model Citation).
//!
//! ```text
//! cargo run --example audit_and_cite --release
//! ```

use model_lakes::core::lake::{LakeConfig, ModelLake};
use model_lakes::core::populate::{populate_from_ground_truth, CardPolicy};
use model_lakes::core::ModelId;
use model_lakes::datagen::{generate_lake, LakeSpec};

fn main() {
    let gt = generate_lake(&LakeSpec::tiny(15));
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).expect("populate");
    let known: Vec<ModelId> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    lake.rebuild_version_graph(Some(known.clone())).expect("graph");

    // --- audit a documented model vs an undocumented one ----------------
    let documented = ModelId(0);
    println!("-- audit of '{}' (honest card) ---------------", lake.entry(documented).unwrap().name);
    let report = lake.audit_model(documented).expect("audit");
    for a in &report.answers {
        println!(
            "  [{}] {:<5} {}",
            a.question_id,
            if a.satisfied { "OK" } else { "GAP" },
            a.explanation
        );
    }
    println!("coverage: {:.0}%\n", report.coverage() * 100.0);

    let anonymous = lake
        .ingest_model("anonymous-upload", &gt.models[0].model.clone(), None)
        .expect("ingest");
    lake.rebuild_version_graph(Some(known)).expect("graph");
    let report = lake.audit_model(anonymous).expect("audit");
    println!("-- audit of 'anonymous-upload' (no card) ----------------------");
    println!(
        "coverage: {:.0}% — gaps: {:?}\n",
        report.coverage() * 100.0,
        report.gaps()
    );

    // --- citations track the version graph ------------------------------
    println!("-- citations ----------------------------------------------------");
    let c1 = lake.cite(ModelId(1)).expect("cite");
    println!("today:      {}", c1.text());
    println!("bibtex:\n{}\n", c1.bibtex());

    // The lake evolves: a new model arrives, the graph is rebuilt, and any
    // new citation pins the new snapshot while the old key stays valid for
    // what it cited.
    lake.ingest_model("tomorrows-model", &gt.models[1].model.clone(), None)
        .expect("ingest");
    lake.rebuild_version_graph(None).expect("graph");
    let c2 = lake.cite(ModelId(1)).expect("cite");
    println!("tomorrow:   {}", c2.text());
    println!(
        "key change: {} → {}  (graph moved from v{} to v{})",
        c1.key(),
        c2.key(),
        c1.graph_timestamp,
        c2.graph_timestamp
    );
}
