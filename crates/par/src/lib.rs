//! Work-stealing data-parallel execution layer for the model lake.
//!
//! A single persistent pool of worker threads serves the whole process.
//! Parallel regions are *scoped*: the calling thread submits one job per
//! participating worker, joins the computation itself, and blocks until
//! every job has finished, so borrowed data stays valid for the duration
//! of the region.
//!
//! Scheduling is work-stealing over index ranges. Each participant owns a
//! contiguous block of the iteration space packed into one `AtomicU64`
//! (`lo` and `hi` in the two 32-bit halves). The owner claims grain-sized
//! chunks from the front with a CAS; an idle thread steals the back half
//! of a victim's remaining range with a single CAS. There are no locks on
//! the hot path and no allocation per chunk.
//!
//! # Determinism policy
//!
//! * `par_for` guarantees every index is visited exactly once, but chunk
//!   boundaries and thread assignment vary run to run. Use it only for
//!   element-wise independent work (each index writes its own output).
//! * `par_map_reduce` decomposes the iteration space into *fixed* blocks
//!   derived from `len` and `grain` alone — never from the thread count —
//!   and folds block results in ascending block order. Given the same
//!   `grain`, the reduction tree is identical whether the region executes
//!   on one thread or sixteen, so floating-point results are bit-stable
//!   across `MLAKE_THREADS` settings.
//! * `MLAKE_THREADS=1` (or [`serial`]) runs every region inline on the
//!   calling thread in ascending index order: exactly the serial program.
//!
//! # Nesting and liveness
//!
//! A parallel region entered from inside a pool worker runs inline (the
//! worker is already a unit of parallelism; blocking it on the pool could
//! deadlock). The calling thread always participates and can finish the
//! whole region alone by stealing, so a region completes even if the pool
//! is saturated by other callers. Worker panics are captured and re-raised
//! on the calling thread after the region completes.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

pub mod lockorder;

use lockorder::ranks;

// ---------------------------------------------------------------------------
// Thread-count policy
// ---------------------------------------------------------------------------

/// Number of threads parallel regions may use, decided once per process.
///
/// `MLAKE_THREADS` overrides the detected CPU count; `MLAKE_THREADS=1`
/// makes every parallel primitive run inline and in order (the serial
/// program). Values are clamped to `[1, 256]`.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        let detected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        std::env::var("MLAKE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(detected)
            .clamp(1, 256)
    })
}

thread_local! {
    /// True on pool worker threads: nested regions run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Depth of `serial()` scopes on this thread.
    static SERIAL_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with all parallel primitives forced inline on this thread.
///
/// Inside the scope every `par_*` call degenerates to the serial loop in
/// ascending index order, regardless of `MLAKE_THREADS`. Used by the
/// equivalence tests to compare parallel output against the exact serial
/// computation within one process.
pub fn serial<R>(f: impl FnOnce() -> R) -> R {
    SERIAL_DEPTH.with(|d| d.set(d.get() + 1));
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SERIAL_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    let _guard = Guard;
    f()
}

/// True while inside a [`serial`] scope on this thread.
pub fn is_serial() -> bool {
    SERIAL_DEPTH.with(|d| d.get() > 0)
}

fn inline_only() -> bool {
    num_threads() == 1
        || IN_POOL.with(|c| c.get())
        || SERIAL_DEPTH.with(|d| d.get() > 0)
}

// ---------------------------------------------------------------------------
// Persistent pool
// ---------------------------------------------------------------------------

/// A type-erased unit of work queued on the pool.
struct Job {
    /// Borrowed closure; the submitting region keeps it alive until its
    /// latch opens, which this job signals before returning.
    f: *const (dyn Fn(usize) + Sync),
    /// Participant slot the job should execute as.
    slot: usize,
    latch: *const Latch,
}

// SAFETY: the raw pointers are only dereferenced while the submitting
// region is blocked on its latch, which keeps the referents alive.
unsafe impl Send for Job {}

/// Counts outstanding pool jobs for one parallel region and stores the
/// first captured panic.
struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn count_down(&self, payload: Option<Box<dyn std::any::Any + Send>>) {
        // The decrement and the notification both happen under the mutex:
        // `wait` only reads `remaining` while holding it, so the waiter
        // cannot observe zero (and free the stack-allocated latch) until
        // this guard drops — the unlock is the worker's last touch of
        // `self`.
        // lock-order: 20 (par.latch)
        let _ord = lockorder::acquire(ranks::PAR_LATCH, "par.latch");
        let mut slot = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = payload {
            slot.get_or_insert(p);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        // lock-order: 20 (par.latch)
        let _ord = lockorder::acquire(ranks::PAR_LATCH, "par.latch");
        let mut slot = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.remaining.load(Ordering::Acquire) != 0 {
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        slot.take()
    }
}

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl Pool {
    fn submit(&self, jobs: impl Iterator<Item = Job>) {
        // lock-order: 10 (par.queue)
        let _ord = lockorder::acquire(ranks::PAR_QUEUE, "par.queue");
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut n = 0usize;
        for job in jobs {
            q.push_back(job);
            n += 1;
        }
        if mlake_obs::enabled() {
            mlake_obs::gauge!("par.queue.depth").set(q.len() as i64);
        }
        drop(q);
        for _ in 0..n {
            self.available.notify_one();
        }
    }

    fn worker_loop(&self, index: usize) {
        IN_POOL.with(|c| c.set(true));
        // Resolved once per worker; `None` when observability is disabled,
        // so the hot loop takes no clock reads in that case.
        let busy = mlake_obs::enabled()
            .then(|| mlake_obs::registry().counter_dyn(&format!("par.worker{index}.busy_ns")));
        loop {
            let job = {
                // Released before the job runs, so the job's own latch
                // acquisition starts from an empty held-set.
                // lock-order: 10 (par.queue)
                let _ord = lockorder::acquire(ranks::PAR_QUEUE, "par.queue");
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = q.pop_front() {
                        if busy.is_some() {
                            mlake_obs::gauge!("par.queue.depth").set(q.len() as i64);
                        }
                        break job;
                    }
                    q = self.available.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            // SAFETY: the submitting region blocks on its latch until this
            // job counts down, keeping the borrowed closure alive.
            let exec = || panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.f)(job.slot) }));
            let result = match busy {
                Some(c) => c.time(exec),
                None => exec(),
            };
            // SAFETY: as above — the latch is stack-allocated in the still-
            // blocked submitting region, so the pointer is live here.
            let latch = unsafe { &*job.latch };
            latch.count_down(result.err());
            // `job.f`/`job.latch` must not be touched after the count-down:
            // the submitting region may have already returned.
        }
    }
}

/// The process-wide pool, spawned on first parallel region.
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..num_threads().saturating_sub(1) {
            std::thread::Builder::new()
                .name(format!("mlake-par-{i}"))
                .spawn(move || pool.worker_loop(i))
                // lint: panic-ok one-time process init; a host that cannot
                // spawn threads cannot run parallel regions at all
                .expect("failed to spawn mlake-par worker");
        }
        pool
    })
}

// ---------------------------------------------------------------------------
// Work-stealing range scheduler
// ---------------------------------------------------------------------------

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

/// Drains `blocks` from participant `slot`: grain-sized chunks from the
/// front of the own block, then back-half steals from victims.
fn drive(blocks: &[AtomicU64], slot: usize, grain: usize, f: &(dyn Fn(Range<usize>) + Sync)) {
    let grain = grain.max(1) as u32;
    // Phase 1: consume the own block front-to-back.
    let own = &blocks[slot];
    loop {
        let cur = own.load(Ordering::Acquire);
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            break;
        }
        let take = grain.min(hi - lo);
        if own
            .compare_exchange_weak(cur, pack(lo + take, hi), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            f(lo as usize..(lo + take) as usize);
        }
    }
    // Phase 2: steal the back half of the largest remaining victim range
    // until the whole iteration space is drained.
    loop {
        let mut best: Option<(usize, u64, u32)> = None;
        for (v, block) in blocks.iter().enumerate() {
            if v == slot {
                continue;
            }
            let cur = block.load(Ordering::Acquire);
            let (lo, hi) = unpack(cur);
            let rem = hi.saturating_sub(lo);
            if rem > 0 && best.is_none_or(|(_, _, r)| rem > r) {
                best = Some((v, cur, rem));
            }
        }
        let Some((victim, cur, rem)) = best else {
            return;
        };
        let (lo, hi) = unpack(cur);
        let take = rem.div_ceil(2).min(rem);
        let split = hi - take;
        if blocks[victim]
            .compare_exchange(cur, pack(lo, split), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if mlake_obs::enabled() {
                mlake_obs::counter!("par.steals").inc();
            }
            // Process the stolen range in grain-sized chunks.
            let mut s = split;
            while s < hi {
                let e = (s + grain).min(hi);
                f(s as usize..e as usize);
                s = e;
            }
        }
        // CAS failure: the victim's range moved under us; rescan.
    }
}

/// Executes `f` over disjoint sub-ranges covering `0..len` in parallel.
///
/// Every index is visited exactly once; `f` must be safe to call from
/// multiple threads on disjoint ranges. Chunk boundaries are not
/// deterministic — each chunk is at most `grain` long when claimed by its
/// owner, but steals hand over larger spans. With `MLAKE_THREADS=1`,
/// inside [`serial`], or when `len <= grain`, this is exactly
/// `f(0..len)` on the calling thread.
pub fn par_for(len: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    if len == 0 {
        return;
    }
    assert!(len < u32::MAX as usize, "par_for range too large");
    let grain = grain.max(1);
    if inline_only() || len <= grain {
        f(0..len);
        return;
    }
    let threads = num_threads().min(len.div_ceil(grain)).max(1);
    if threads == 1 {
        f(0..len);
        return;
    }

    // Even initial partition; stealing rebalances skew.
    let blocks: Vec<AtomicU64> = (0..threads)
        .map(|t| {
            let lo = len * t / threads;
            let hi = len * (t + 1) / threads;
            AtomicU64::new(pack(lo as u32, hi as u32))
        })
        .collect();

    let run = |slot: usize| drive(&blocks, slot, grain, &f);
    region(threads, &run);
}

/// Submits `threads - 1` pool jobs for `run`, executes slot 0 inline, and
/// waits for all jobs; re-raises the first captured panic.
fn region(threads: usize, run: &(dyn Fn(usize) + Sync)) {
    if mlake_obs::enabled() {
        mlake_obs::counter!("par.regions").inc();
    }
    let latch = Latch::new(threads - 1);
    // SAFETY: the transmute only erases the region lifetime; `wait()`
    // below keeps `run` and `latch` alive until every job has signalled
    // the latch, so no job dereferences a dangling pointer.
    let f: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(run) };
    pool().submit((1..threads).map(|slot| Job {
        f,
        slot,
        latch: &latch,
    }));
    let own = panic::catch_unwind(AssertUnwindSafe(|| run(0)));
    let pool_panic = latch.wait();
    if let Err(p) = own {
        panic::resume_unwind(p);
    }
    if let Some(p) = pool_panic {
        panic::resume_unwind(p);
    }
}

// ---------------------------------------------------------------------------
// Deterministic collection / reduction primitives
// ---------------------------------------------------------------------------

/// Pointer wrapper asserting that disjoint-index writes are thread-safe.
struct SendPtr<T>(*mut T);
// SAFETY: holders only write through the pointer at disjoint indices
// (each caller below partitions the index space), so shared access from
// multiple threads never aliases a write.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Maps `f` over `0..len`, collecting results in index order.
///
/// Result order (and, for order-insensitive `f`, content) is identical
/// across thread counts. If `f` panics, completed results in other slots
/// are leaked, not dropped; the panic is re-raised.
pub fn par_map_index<R: Send>(len: usize, grain: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let mut out: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialization; every slot is written
    // exactly once below before assuming init.
    unsafe { out.set_len(len) };
    let ptr = SendPtr(out.as_mut_ptr());
    par_for(len, grain, |range| {
        let base = &ptr;
        for i in range {
            let value = f(i);
            // SAFETY: ranges are disjoint, so slot `i` is written once.
            unsafe { base.0.add(i).write(std::mem::MaybeUninit::new(value)) };
        }
    });
    let mut out = std::mem::ManuallyDrop::new(out);
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    // SAFETY: par_for visited every index exactly once, so all `len`
    // slots are initialized. Rebuild via raw parts rather than transmute:
    // Vec's layout is unspecified, so transmuting Vec<MaybeUninit<R>> to
    // Vec<R> is UB even though the element types match.
    unsafe { Vec::from_raw_parts(ptr as *mut R, len, cap) }
}

/// Maps `f` over a slice in parallel, preserving order.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let grain = items.len().div_ceil(4 * num_threads()).max(1);
    par_map_index(items.len(), grain, |i| f(&items[i]))
}

/// Scatter region: runs `f(i)` once per task `i in 0..n`, one pool task
/// per item, collecting results in index order.
///
/// The scatter half of scatter-gather fan-outs (one task per index shard,
/// one task per replica, …) where `n` is small and each task is coarse —
/// unlike [`par_map`], no grain batching is applied, so even `n = 2` tasks
/// run concurrently. Result order is index order regardless of thread
/// count; with `MLAKE_THREADS=1` or inside [`serial`] the tasks run
/// inline in ascending order — exactly the serial program.
pub fn par_scatter<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    par_map_index(n, 1, f)
}

/// Runs `f(chunk_index, chunk)` over `chunk_len`-sized chunks of `data`
/// in parallel (the final chunk may be shorter).
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let chunk_len = chunk_len.max(1);
    let n = data.len();
    let chunks = n.div_ceil(chunk_len);
    let ptr = SendPtr(data.as_mut_ptr());
    par_for(chunks, 1, |range| {
        let base = &ptr;
        for ci in range {
            let start = ci * chunk_len;
            let end = (start + chunk_len).min(n);
            // SAFETY: chunk indices are disjoint, so the sub-slices are.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            f(ci, chunk);
        }
    });
}

/// Parallel map-reduce with a deterministic reduction tree.
///
/// The iteration space is cut into fixed grain-sized blocks
/// (`0..grain`, `grain..2*grain`, …) that depend only on `len` and
/// `grain`; `map` runs per block in parallel and the block results fold
/// left-to-right in block order. The same inputs therefore reduce in the
/// same order regardless of thread count — floating-point sums are
/// bit-stable across `MLAKE_THREADS` settings. Returns `None` for an
/// empty range.
pub fn par_map_reduce<R: Send>(
    len: usize,
    grain: usize,
    map: impl Fn(Range<usize>) -> R + Sync,
    reduce: impl FnMut(R, R) -> R,
) -> Option<R> {
    if len == 0 {
        return None;
    }
    let grain = grain.max(1);
    let blocks = len.div_ceil(grain);
    let partials = par_map_index(blocks, 1, |b| {
        let lo = b * grain;
        let hi = (lo + grain).min(len);
        map(lo..hi)
    });
    partials.into_iter().reduce(reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn par_for_visits_every_index_once() {
        let n = 100_000;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_for(n, 64, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_and_tiny() {
        par_for(0, 8, |_| panic!("must not run"));
        let hit = AtomicU32::new(0);
        par_for(1, 8, |r| {
            assert_eq!(r, 0..1);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 2 + 1);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 2 + 1));
    }

    #[test]
    fn par_map_index_non_copy_results() {
        let out = par_map_index(1000, 16, |i| vec![i; i % 7]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i % 7);
            assert!(v.iter().all(|&x| x == i));
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut data = vec![0u32; 10_001];
        par_chunks_mut(&mut data, 97, |ci, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 97 + k) as u32;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn map_reduce_matches_serial_sum() {
        let n = 54_321usize;
        let expect: u64 = (0..n as u64).sum();
        let got = par_map_reduce(
            n,
            1000,
            |r| r.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(got, Some(expect));
        assert_eq!(par_map_reduce(0, 10, |_| 0u64, |a, b| a + b), None);
    }

    #[test]
    fn map_reduce_float_bit_stable_vs_serial() {
        // Pseudo-random values with awkward magnitudes: the fold order must
        // match the serial (in-order block) fold bit-for-bit.
        let xs: Vec<f32> = (0..10_000)
            .map(|i| ((i as f32 * 0.731).sin() * 1e3) + 1e-3 * i as f32)
            .collect();
        let grain = 128;
        let serial_result = serial(|| {
            par_map_reduce(
                xs.len(),
                grain,
                |r| r.map(|i| xs[i] as f64).sum::<f64>(),
                |a, b| a + b,
            )
        });
        let parallel_result = par_map_reduce(
            xs.len(),
            grain,
            |r| r.map(|i| xs[i] as f64).sum::<f64>(),
            |a, b| a + b,
        );
        assert_eq!(
            serial_result.unwrap().to_bits(),
            parallel_result.unwrap().to_bits()
        );
    }

    #[test]
    fn serial_scope_runs_inline_in_order() {
        serial(|| {
            let order = Mutex::new(Vec::new());
            par_for(10, 1, |r| {
                order.lock().unwrap().push(r.start);
            });
            // Inline execution is one call with the whole range.
            assert_eq!(*order.lock().unwrap(), vec![0]);
        });
    }

    #[test]
    fn nested_regions_complete() {
        let outer: Vec<u64> = par_map_index(8, 1, |i| {
            par_map_reduce(
                1000,
                64,
                |r| r.map(|j| (i * 1000 + j) as u64).sum::<u64>(),
                |a, b| a + b,
            )
            .unwrap()
        });
        for (i, &v) in outer.iter().enumerate() {
            let expect: u64 = (0..1000u64).map(|j| i as u64 * 1000 + j).sum();
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn panic_propagates() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            par_for(1000, 8, |r| {
                if r.contains(&777) {
                    panic!("boom at 777");
                }
            });
        }));
        assert!(caught.is_err());
        // Pool must still be usable afterwards.
        let ok = par_map_reduce(100, 8, |r| r.len(), |a, b| a + b);
        assert_eq!(ok, Some(100));
    }

    #[test]
    fn concurrent_callers_make_progress() {
        // Multiple user threads using the shared pool at once must all
        // complete (callers can finish their own regions by stealing).
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    par_map_reduce(
                        20_000,
                        128,
                        |r| r.map(|i| (i + t) as u64).sum::<u64>(),
                        |a, b| a + b,
                    )
                    .unwrap()
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let expect: u64 = (0..20_000u64).map(|i| i + t as u64).sum();
            assert_eq!(h.join().unwrap(), expect);
        }
    }
}
