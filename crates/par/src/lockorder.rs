//! Debug-mode lock-order race detector (DESIGN.md §10).
//!
//! Deadlock freedom across `mlake-par` and `mlake-index` rests on one
//! global rule: locks are acquired in strictly ascending rank order. The
//! ranks (see [`ranks`]) form the workspace lock hierarchy:
//!
//! | rank | lock                                             |
//! |------|--------------------------------------------------|
//! | 4    | `server.router` — lake-router map `RwLock`       |
//! | 5    | `server.queue` — HTTP dispatch queue mutex       |
//! | 6    | `server.job` — per-job take-once hand-off slot   |
//! | 7    | `server.conns` — connection join-handle list     |
//! | 10   | `par.queue` — pool job deque mutex               |
//! | 20   | `par.latch` — per-region latch mutex             |
//! | 30   | `hnsw.entry` — HNSW entry-point mutex            |
//! | 40   | `hnsw.node` — HNSW per-node neighbour `RwLock`s  |
//! | 50   | `wal.inner` — WAL writer state mutex             |
//!
//! In debug builds every tracked acquisition is recorded in a
//! thread-local stack; acquiring a lock whose rank is **not strictly
//! greater** than every lock already held panics with both sites, so the
//! inverted acquisition that *could* deadlock under unlucky scheduling
//! fails loudly and deterministically on the first test run instead. Note
//! equal ranks also panic: two same-rank locks (e.g. two HNSW node locks)
//! taken together can deadlock against a thread taking them in the
//! opposite order, so the hierarchy demands they be held one at a time.
//!
//! In release builds [`acquire`] compiles to nothing — [`OrderToken`] is
//! a zero-sized type and the call inlines away — so the production hot
//! path pays zero cost.
//!
//! Call sites pair the token with the `// lock-order: N` comment the
//! `mlake-lint` `lock-order` pass demands, keeping the static annotation
//! and the runtime check in sync:
//!
//! ```ignore
//! // lock-order: 30 (hnsw.entry)
//! let _ord = lockorder::acquire(ranks::HNSW_ENTRY, "hnsw.entry");
//! let g = entry.lock();
//! ```

/// The workspace lock hierarchy. Gaps between ranks leave room for new
/// locks without renumbering annotations.
pub mod ranks {
    /// `mlake-server` lake-router map `RwLock`. Below every other rank:
    /// routing resolves a lake handle before any lake/pool lock is taken,
    /// and never while one is held.
    pub const SERVER_ROUTER: u32 = 4;
    /// `mlake-server` HTTP dispatch queue mutex. Held only to push/drain
    /// jobs; always released before a batch enters a pool region.
    pub const SERVER_QUEUE: u32 = 5;
    /// `mlake-server` per-job take-once hand-off slot (FnOnce → pool
    /// `Fn` bridge). Acquired from an empty held-set inside a pool task
    /// and released before the job body runs.
    pub const SERVER_JOB: u32 = 6;
    /// `mlake-server` connection join-handle list. Touched only by the
    /// acceptor (push) and shutdown (drain); never taken by connection
    /// threads themselves, so it cannot invert against request locks.
    pub const SERVER_CONNS: u32 = 7;
    /// Pool job deque mutex (`Pool::queue`).
    pub const PAR_QUEUE: u32 = 10;
    /// Per-region latch mutex (`Latch::lock`).
    pub const PAR_LATCH: u32 = 20;
    /// `mlake-core` index staging queue (`ModelLake::pending_index`):
    /// deferred insert batches drained into the HNSW indexes on first
    /// search. Ranked below `HNSW_ENTRY` because the drain inserts into
    /// the indexes while holding it. (`mlake-par` is a dev-dependency of
    /// `mlake-core`, so the rank appears there as `// lock-order: 25`
    /// comment annotations rather than runtime tracker calls.)
    pub const CORE_INDEX_PENDING: u32 = 25;
    /// HNSW entry-point mutex (`insert_batch_parallel`'s `entry`).
    pub const HNSW_ENTRY: u32 = 30;
    /// HNSW per-node neighbour-list `RwLock`s (read or write).
    pub const HNSW_NODE: u32 = 40;
    /// `mlake-core` blob residency table (`ResidentStore::resident`): the
    /// LRU map of paged-in blobs. A leaf among the core locks — faulting
    /// a blob in reads the filesystem *outside* this lock and never takes
    /// another lock while holding it.
    pub const STORE_RESIDENT: u32 = 45;
    /// `mlake-core` segment-chain state (`LakeShared::seg`): live segment
    /// seqs, persist high-water marks, dirty-card and fresh-fingerprint
    /// stashes. Taken under the op lock by persist/GC; leaf otherwise.
    pub const CORE_SEGSTATE: u32 = 46;
    /// WAL writer state mutex (`Wal::inner` in `mlake-wal`). Ranked above
    /// the index locks: a facade mutation may append to the WAL while the
    /// caller holds no index lock, but replay and compaction never take
    /// index locks while holding the WAL mutex.
    pub const WAL_INNER: u32 = 50;
}

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks and sites of tracked locks currently held by this thread,
        /// in acquisition order.
        static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub fn push(rank: u32, site: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(&(held_rank, held_site)) =
                held.iter().find(|&&(r, _)| r >= rank)
            {
                // Drop the borrow before unwinding so the token's Drop
                // (which re-borrows) cannot double-panic.
                drop(held);
                // lint: panic-ok deliberate debug-build abort: a lock-order
                // inversion is a latent deadlock and must crash the test run
                panic!(
                    "lock-order violation: acquiring `{site}` (rank {rank}) while \
                     holding `{held_site}` (rank {held_rank}); locks must be taken \
                     in strictly ascending rank order (DESIGN.md §10)"
                );
            }
            held.push((rank, site));
        });
    }

    pub fn pop(rank: u32, site: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held
                .iter()
                .rposition(|&(r, s)| r == rank && std::ptr::eq(s, site))
            {
                held.remove(pos);
            }
        });
    }

    /// Number of tracked locks held by this thread (test hook).
    pub fn held_count() -> usize {
        HELD.with(|h| h.borrow().len())
    }
}

/// RAII token recording one tracked lock acquisition. Hold it for exactly
/// as long as the lock guard it shadows; dropping it releases the
/// tracker entry. Zero-sized and inert in release builds.
#[must_use = "the order token must live as long as the lock guard it tracks"]
pub struct OrderToken {
    #[cfg(debug_assertions)]
    rank: u32,
    #[cfg(debug_assertions)]
    site: &'static str,
}

/// Records acquiring the lock `site` with rank `rank`.
///
/// Debug builds panic (with both sites) when `rank` is not strictly
/// greater than every rank this thread already holds; release builds do
/// nothing.
#[inline]
pub fn acquire(rank: u32, site: &'static str) -> OrderToken {
    #[cfg(debug_assertions)]
    {
        imp::push(rank, site);
        OrderToken { rank, site }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (rank, site);
        OrderToken {}
    }
}

impl Drop for OrderToken {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        imp::pop(self.rank, self.site);
    }
}

/// Number of tracked locks held by the current thread (0 in release
/// builds). Exposed for tests asserting balanced acquire/release.
pub fn held_count() -> usize {
    #[cfg(debug_assertions)]
    {
        imp::held_count()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(debug_assertions)]
    fn catches(f: impl FnOnce() + Send + 'static) -> bool {
        // Run in a fresh thread so a panicking acquisition cannot leave
        // residue in this thread's HELD stack.
        std::thread::spawn(f).join().is_err()
    }

    #[test]
    #[cfg(debug_assertions)]
    fn ascending_acquisition_is_clean() {
        let ok = !catches(|| {
            let _q = acquire(ranks::PAR_QUEUE, "par.queue");
            let _l = acquire(ranks::PAR_LATCH, "par.latch");
            let _e = acquire(ranks::HNSW_ENTRY, "hnsw.entry");
            let _n = acquire(ranks::HNSW_NODE, "hnsw.node");
        });
        assert!(ok);
        assert_eq!(held_count(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn inverted_acquisition_panics_with_both_sites() {
        let r = std::thread::spawn(|| {
            let _high = acquire(ranks::HNSW_ENTRY, "hnsw.entry");
            let _low = acquire(ranks::PAR_QUEUE, "par.queue");
        })
        .join();
        let payload = r.expect_err("inversion must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("par.queue"), "missing acquiring site: {msg}");
        assert!(msg.contains("hnsw.entry"), "missing held site: {msg}");
        assert!(msg.contains("rank 10") && msg.contains("rank 30"), "{msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn equal_rank_nesting_panics() {
        assert!(catches(|| {
            let _a = acquire(ranks::HNSW_NODE, "hnsw.node");
            let _b = acquire(ranks::HNSW_NODE, "hnsw.node");
        }));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn release_unwinds_allow_reacquisition() {
        {
            let _a = acquire(ranks::PAR_LATCH, "par.latch");
        }
        // Rank 20 released; taking rank 10 now is legal.
        let _b = acquire(ranks::PAR_QUEUE, "par.queue");
        drop(_b);
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn release_build_token_is_inert() {
        // Compiles and runs in both profiles; in release the token is a
        // ZST and held_count is constant 0.
        let t = acquire(ranks::PAR_QUEUE, "par.queue");
        drop(t);
        assert_eq!(held_count(), 0);
    }
}
