//! Property-based invariants across the three index implementations.

use mlake_index::{FlatIndex, HnswConfig, HnswIndex, LshConfig, LshIndex, VectorIndex};
use proptest::prelude::*;

fn vectors(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec(-5.0f32..5.0, dim..=dim),
        n..=n,
    )
    .prop_filter("non-degenerate vectors", |vs| {
        vs.iter()
            .all(|v| v.iter().any(|&x| x.abs() > 1e-3))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With ef >= n, HNSW returns exactly the flat-scan answer.
    #[test]
    fn hnsw_exact_when_ef_covers_all(vs in vectors(24, 6), seed in any::<u64>()) {
        let mut hnsw = HnswIndex::new(HnswConfig {
            ef_search: 64,
            ef_construction: 64,
            seed,
            ..Default::default()
        });
        let mut flat = FlatIndex::new();
        for (i, v) in vs.iter().enumerate() {
            hnsw.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        for v in vs.iter().take(5) {
            let h: Vec<u64> = hnsw.search(v, 4).unwrap().iter().map(|x| x.id).collect();
            let f: Vec<u64> = flat.search(v, 4).unwrap().iter().map(|x| x.id).collect();
            prop_assert_eq!(h, f);
        }
    }

    /// Every index returns results sorted ascending by distance, with no
    /// duplicate ids, at most k items, and distances in [0, 2].
    #[test]
    fn results_are_wellformed(vs in vectors(16, 5), k in 1usize..10) {
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::new(HnswConfig::default());
        let mut lsh = LshIndex::new(LshConfig::default());
        for (i, v) in vs.iter().enumerate() {
            flat.insert(i as u64, v).unwrap();
            hnsw.insert(i as u64, v).unwrap();
            lsh.insert(i as u64, v).unwrap();
        }
        let indexes: [&dyn VectorIndex; 3] = [&flat, &hnsw, &lsh];
        for idx in indexes {
            let hits = idx.search(&vs[0], k).unwrap();
            prop_assert!(hits.len() <= k);
            let mut ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), hits.len(), "{} returned duplicates", idx.name());
            for w in hits.windows(2) {
                prop_assert!(w[0].distance <= w[1].distance);
            }
            for h in &hits {
                prop_assert!((-1e-4..=2.0001).contains(&h.distance));
            }
        }
    }

    /// Searching for an inserted vector returns it first (flat + hnsw; LSH
    /// may bucket-miss by design, but when it returns the id it ranks first).
    #[test]
    fn self_query_returns_self(vs in vectors(12, 4)) {
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::new(HnswConfig::default());
        for (i, v) in vs.iter().enumerate() {
            flat.insert(i as u64, v).unwrap();
            hnsw.insert(i as u64, v).unwrap();
        }
        for (i, v) in vs.iter().enumerate() {
            let f = flat.search(v, 1).unwrap();
            prop_assert!(f[0].distance < 1e-4);
            // Ties between identical directions may pick another id; accept
            // any zero-distance result.
            let h = hnsw.search(v, 1).unwrap();
            prop_assert!(h[0].distance < 1e-3, "hnsw self distance {} for {i}", h[0].distance);
        }
    }

    /// Insert order does not change flat-scan results (determinism / no
    /// hidden state).
    #[test]
    fn flat_insert_order_irrelevant(vs in vectors(10, 4), perm_seed in any::<u64>()) {
        let mut a = FlatIndex::new();
        for (i, v) in vs.iter().enumerate() {
            a.insert(i as u64, v).unwrap();
        }
        let mut order: Vec<usize> = (0..vs.len()).collect();
        let mut rng = mlake_tensor::Pcg64::new(perm_seed);
        rng.shuffle(&mut order);
        let mut b = FlatIndex::new();
        for &i in &order {
            b.insert(i as u64, &vs[i]).unwrap();
        }
        let ra: Vec<u64> = a.search(&vs[0], 5).unwrap().iter().map(|h| h.id).collect();
        let rb: Vec<u64> = b.search(&vs[0], 5).unwrap().iter().map(|h| h.id).collect();
        prop_assert_eq!(ra, rb);
    }
}
