//! Determinism property test for the sharded scatter-gather path.
//!
//! The tentpole invariant: merged results are **bit-identical** to the
//! single-shard path at equal precision, for every shard count N ∈
//! {1, 2, 4, 8} and every thread count. The thread-count axis is covered
//! twice: in-process by comparing each parallel run against the exact
//! serial program (`mlake_par::serial`), and across processes by ci.sh
//! re-running this suite under `MLAKE_THREADS=1`.

use mlake_index::{FlatIndex, HnswConfig, HnswIndex, ShardedIndex, VectorIndex};
use proptest::prelude::*;

fn embeddings(n: usize, dim: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..n)
        .map(|i| {
            let v = (0..dim)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                })
                .collect();
            (i as u64, v)
        })
        .collect()
}

fn assert_bit_identical(
    got: &[mlake_index::Hit],
    want: &[mlake_index::Hit],
    label: &str,
) {
    assert_eq!(got.len(), want.len(), "{label}: result length");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id, "{label}: id order");
        assert_eq!(
            g.distance.to_bits(),
            w.distance.to_bits(),
            "{label}: distance bits"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flat (exact) inner shards: sharded results equal the unsharded
    /// index bit-for-bit at every N, and every parallel run equals the
    /// serial program bit-for-bit.
    #[test]
    fn sharded_flat_bit_identical_across_shards_and_threads(
        n in 1usize..160,
        dim in 2usize..24,
        k in 1usize..16,
        seed in 0u64..1_000,
    ) {
        let data = embeddings(n, dim, seed);
        let mut flat = FlatIndex::new();
        for (id, v) in &data {
            flat.insert(*id, v).unwrap();
        }
        let q = &data[(seed as usize) % data.len()].1;
        let want = flat.search(q, k).unwrap();
        for shards in [1usize, 2, 4, 8] {
            let mut idx = ShardedIndex::new(shards, FlatIndex::new);
            idx.insert_batch(&data).unwrap();
            let parallel = idx.search(q, k).unwrap();
            let serial = mlake_par::serial(|| idx.search(q, k).unwrap());
            assert_bit_identical(&parallel, &want, &format!("N={shards} vs flat"));
            assert_bit_identical(&parallel, &serial, &format!("N={shards} par vs serial"));
        }
    }
}

/// HNSW inner shards at an effectively-exhaustive beam (ef ≥ shard size):
/// equal precision, so the merge must still reproduce the exact top-k.
#[test]
fn sharded_hnsw_exhaustive_beam_matches_flat() {
    let data = embeddings(96, 12, 42);
    let mut flat = FlatIndex::new();
    for (id, v) in &data {
        flat.insert(*id, v).unwrap();
    }
    let cfg = HnswConfig {
        ef_search: 256, // ≥ every shard's size: the beam is exhaustive
        ef_construction: 256,
        ..HnswConfig::default()
    };
    for shards in [1usize, 2, 4, 8] {
        let mut idx = ShardedIndex::new(shards, || HnswIndex::new(cfg));
        for (id, v) in &data {
            idx.insert(*id, v).unwrap();
        }
        for probe in [0usize, 17, 63] {
            let q = &data[probe].1;
            let want = flat.search(q, 8).unwrap();
            let got = idx.search(q, 8).unwrap();
            let serial = mlake_par::serial(|| idx.search(q, 8).unwrap());
            assert_bit_identical(&got, &want, &format!("hnsw N={shards} vs flat"));
            assert_bit_identical(&got, &serial, &format!("hnsw N={shards} par vs serial"));
        }
    }
}

/// Repeated searches on the same sharded index are identical run to run
/// (no ordering dependence on the scatter's completion order).
#[test]
fn repeated_searches_are_stable() {
    let data = embeddings(128, 16, 9);
    let mut idx = ShardedIndex::new(8, FlatIndex::new);
    idx.insert_batch(&data).unwrap();
    let q = &data[7].1;
    let first = idx.search(q, 10).unwrap();
    for _ in 0..20 {
        assert_bit_identical(&idx.search(q, 10).unwrap(), &first, "repeat");
    }
}
