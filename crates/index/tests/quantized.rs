//! SQ8 recall regression gate (ISSUE PR 4, acceptance criterion 2).
//!
//! On a seeded 1k-vector clustered fixture, `Precision::Sq8Rescore` must
//! keep recall@10 within 5% of the f32 path for both index families. Run
//! in CI under `MLAKE_OBS=on` and `off` — precision dispatch must not
//! depend on observability state.

use mlake_index::{
    eval::recall_at_k, FlatIndex, HnswConfig, HnswIndex, Precision, VectorIndex,
};
use mlake_tensor::Pcg64;

/// Clustered embeddings: `centers` Gaussian centroids, per-vector noise.
/// The regime where quantization matters — shared dynamic range across
/// dims, neighbours separated by less than the cluster spread.
fn clustered(n: usize, dim: usize, centers: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg64::new(seed);
    let cents: Vec<Vec<f32>> = (0..centers)
        .map(|_| (0..dim).map(|_| rng.normal()).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &cents[i % centers];
            c.iter().map(|&x| x + 0.3 * rng.normal()).collect()
        })
        .collect()
}

fn fixture() -> (Vec<(u64, Vec<f32>)>, Vec<Vec<f32>>, FlatIndex) {
    let vecs = clustered(1000, 32, 25, 42);
    let items: Vec<(u64, Vec<f32>)> = vecs
        .iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v.clone()))
        .collect();
    let queries = clustered(50, 32, 25, 777);
    let mut truth = FlatIndex::new();
    for (id, v) in &items {
        truth.insert(*id, v).unwrap();
    }
    (items, queries, truth)
}

#[test]
fn hnsw_sq8_recall_within_5_percent_of_f32() {
    let (items, queries, truth) = fixture();
    let build = |precision: Precision| {
        let mut idx = HnswIndex::new(HnswConfig {
            seed: 7,
            precision,
            ..Default::default()
        });
        idx.insert_batch(&items).unwrap();
        idx
    };
    let f32_idx = build(Precision::F32);
    let sq8_idx = build(Precision::Sq8Rescore);
    let rf = recall_at_k(&f32_idx, &truth, &queries, 10).unwrap();
    let rq = recall_at_k(&sq8_idx, &truth, &queries, 10).unwrap();
    assert!(rf > 0.8, "f32 baseline recall {rf} suspiciously low");
    assert!(
        rq >= 0.95 * rf,
        "sq8 rescored recall@10 {rq} below 0.95 x f32 recall {rf}"
    );
}

#[test]
fn flat_sq8_recall_within_5_percent_of_exact() {
    let (items, queries, truth) = fixture();
    let mut sq8 = FlatIndex::with_precision(Precision::Sq8Rescore);
    for (id, v) in &items {
        sq8.insert(*id, v).unwrap();
    }
    let r = recall_at_k(&sq8, &truth, &queries, 10).unwrap();
    assert!(r >= 0.95, "flat sq8 rescored recall@10 {r} below 0.95");
}

#[test]
fn hnsw_sq8_recall_improves_with_rescore_factor() {
    let (items, queries, truth) = fixture();
    let build = |rescore_factor: usize| {
        let mut idx = HnswIndex::new(HnswConfig {
            seed: 7,
            precision: Precision::Sq8Rescore,
            rescore_factor,
            ..Default::default()
        });
        idx.insert_batch(&items).unwrap();
        idx
    };
    let r1 = recall_at_k(&build(1), &truth, &queries, 10).unwrap();
    let r4 = recall_at_k(&build(4), &truth, &queries, 10).unwrap();
    // A wider rescore pool can only widen the beam and the re-rank set.
    assert!(
        r4 >= r1 - 1e-6,
        "recall fell when widening the pool: x1={r1} x4={r4}"
    );
}
