//! Hierarchical Navigable Small World graphs (Malkov & Yashunin 2020),
//! implemented from scratch.
//!
//! Layered proximity graph: each node is assigned a top layer from a
//! geometric distribution; greedy descent from the global entry point narrows
//! to layer 0, where a best-first beam of width `ef` collects candidates.
//! Neighbour sets are pruned with the paper's *heuristic* selection (keep a
//! candidate only if it is closer to the query than to any already-kept
//! neighbour), which preserves graph navigability on clustered data.

use crate::{par_search_many, Hit, Precision, VectorIndex, DEFAULT_RESCORE_FACTOR, SQ8_TRAIN_MIN};
use mlake_par::lockorder::{self, ranks};
use mlake_tensor::{quant, vector, Pcg64, Sq8Codec, TensorError};
use parking_lot::{Mutex, RwLock};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Below this batch size (and always when the effective thread count is 1)
/// [`HnswIndex::insert_batch`] runs the plain sequential insert loop, which
/// is bit-identical to calling [`VectorIndex::insert`] in a loop.
const PARALLEL_BUILD_MIN: usize = 64;

/// Number of leading batch items linked serially before the parallel link
/// phase when the graph starts empty: seeds a connected navigable core so
/// concurrent inserts never race against a near-empty graph.
const SERIAL_SEED: usize = 32;

/// Static per-layer visit-counter names (layers ≥ 7 fold into the last
/// entry) so the search hot path never formats a metric name.
const LAYER_VISITS: [&str; 8] = [
    "hnsw.search.visited.l0",
    "hnsw.search.visited.l1",
    "hnsw.search.visited.l2",
    "hnsw.search.visited.l3",
    "hnsw.search.visited.l4",
    "hnsw.search.visited.l5",
    "hnsw.search.visited.l6",
    "hnsw.search.visited.l7",
];

/// Visit/expansion tallies for one beam search, accumulated locally and
/// flushed to the registry once per query.
#[derive(Default)]
struct SearchStats {
    /// Nodes whose distance to the query was evaluated.
    visits: u64,
    /// Frontier pops that survived the termination check (beam expansions).
    expansions: u64,
}

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HnswConfig {
    /// Max neighbours per node on layers ≥ 1 (layer 0 keeps `2·m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Default beam width during search (override per query with
    /// [`HnswIndex::search_ef`]).
    pub ef_search: usize,
    /// Seed for layer assignment.
    pub seed: u64,
    /// Traversal precision. Graph *construction* always runs in f32 (graph
    /// quality is built once, searched forever); under
    /// [`Precision::Sq8Rescore`] the search beam runs on the SQ8 code
    /// arena and the pool is re-ranked in f32.
    pub precision: Precision,
    /// Rescore pool multiplier for [`Precision::Sq8Rescore`]: the beam's
    /// top `rescore_factor · k` candidates are re-ranked exactly.
    pub rescore_factor: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0,
            precision: Precision::F32,
            rescore_factor: DEFAULT_RESCORE_FACTOR,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    id: u64,
    /// Neighbour lists per layer, `neighbors[l]` valid for `l <= top_layer`.
    neighbors: Vec<Vec<u32>>,
}

/// The HNSW index.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    config: HnswConfig,
    dim: usize,
    /// Normalised vectors, contiguous.
    data: Vec<f32>,
    nodes: Vec<Node>,
    entry: Option<u32>,
    max_layer: usize,
    rng: Pcg64,
    /// Inverse of ln(M), the geometric layer parameter.
    level_lambda: f64,
    /// SQ8 codec, trained lazily at [`SQ8_TRAIN_MIN`] nodes
    /// (`Sq8Rescore` only).
    codec: Option<Sq8Codec>,
    /// Contiguous SQ8 codes, row-parallel to `data` once the codec exists.
    codes: Vec<u8>,
}

/// Max-heap entry ordered by distance (for the result set).
#[derive(PartialEq)]
struct FarFirst(f32, u32);
impl Eq for FarFirst {}
impl PartialOrd for FarFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Min-heap entry (via reversed ordering) for the candidate frontier.
#[derive(PartialEq)]
struct NearFirst(f32, u32);
impl Eq for NearFirst {}
impl PartialOrd for NearFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NearFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.total_cmp(&self.0)
    }
}

impl HnswIndex {
    /// Creates an empty index.
    pub fn new(config: HnswConfig) -> HnswIndex {
        let m = config.m.max(2);
        HnswIndex {
            config: HnswConfig { m, ..config },
            dim: 0,
            data: Vec::new(),
            nodes: Vec::new(),
            entry: None,
            max_layer: 0,
            rng: Pcg64::with_stream(config.seed, 0x484e_5357),
            level_lambda: 1.0 / (m as f64).ln(),
            codec: None,
            codes: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> HnswConfig {
        self.config
    }

    #[inline]
    fn vec_of(&self, idx: u32) -> &[f32] {
        let d = self.dim;
        &self.data[idx as usize * d..(idx as usize + 1) * d]
    }

    #[inline]
    fn dist(&self, q: &[f32], idx: u32) -> f32 {
        1.0 - vector::dot(q, self.vec_of(idx))
    }

    fn random_layer(&mut self) -> usize {
        let u = (1.0 - self.rng.next_f64()).max(f64::MIN_POSITIVE);
        ((-u.ln() * self.level_lambda) as usize).min(31)
    }

    /// Keeps the SQ8 code arena in lockstep with `data`: calibrates the
    /// codec once [`SQ8_TRAIN_MIN`] nodes exist (backfilling earlier rows),
    /// then encodes every new row. No-op in `F32` mode.
    fn maintain_codes(&mut self) {
        if !self.ensure_codec() {
            return;
        }
        let Some(codec) = self.codec.take() else { return };
        for row in (self.codes.len() / self.dim)..self.nodes.len() {
            let v = &self.data[row * self.dim..(row + 1) * self.dim];
            if codec.encode_into(v, &mut self.codes).is_err() {
                break; // unreachable: row width matches the codec by construction
            }
        }
        self.codec = Some(codec);
    }

    /// Batch variant of [`Self::maintain_codes`]: the per-item quantization
    /// of the un-encoded tail runs on the shared pool, one row per chunk.
    fn maintain_codes_batch(&mut self) {
        if !self.ensure_codec() {
            return;
        }
        let Some(codec) = self.codec.as_ref() else { return };
        let dim = self.dim;
        let start_row = self.codes.len() / dim;
        if start_row == self.nodes.len() {
            return;
        }
        let mut buf = vec![0u8; (self.nodes.len() - start_row) * dim];
        let data = &self.data;
        mlake_par::par_chunks_mut(&mut buf, dim, |i, chunk| {
            let row = start_row + i;
            // Unreachable error: chunk and row widths match the codec.
            let _ = codec.encode_to_slice(&data[row * dim..(row + 1) * dim], chunk);
        });
        self.codes.extend_from_slice(&buf);
    }

    /// Trains the codec when due; `true` when a codec is available.
    fn ensure_codec(&mut self) -> bool {
        if self.config.precision != Precision::Sq8Rescore || self.dim == 0 {
            return false;
        }
        if self.codec.is_none() {
            if self.nodes.len() < SQ8_TRAIN_MIN {
                return false;
            }
            // Rows are normalised (finite) and non-empty, so training
            // cannot fail; if it somehow does, stay on f32 traversal.
            match Sq8Codec::train_flat(&self.data, self.dim) {
                Ok(c) => self.codec = Some(c),
                Err(_) => return false,
            }
        }
        true
    }

    /// The codec, iff SQ8 traversal is configured *and* the code arena
    /// fully covers the stored vectors (below the training threshold it
    /// does not, and searches fall back to f32 traversal).
    fn sq8_ready(&self) -> Option<&Sq8Codec> {
        if self.config.precision != Precision::Sq8Rescore {
            return None;
        }
        let codec = self.codec.as_ref()?;
        (self.codes.len() == self.nodes.len() * self.dim).then_some(codec)
    }

    /// Greedy best-first search on one layer; returns up to `ef` closest
    /// nodes as a max-heap-drained, *unsorted* vector of (distance, idx).
    /// When `stats` is provided, tallies visited nodes and beam expansions.
    fn search_layer(
        &self,
        q: &[f32],
        entry: u32,
        ef: usize,
        layer: usize,
        stats: Option<&mut SearchStats>,
    ) -> Vec<(f32, u32)> {
        self.search_layer_impl(&|i| self.dist(q, i), entry, ef, layer, stats)
    }

    /// [`Self::search_layer`] under an arbitrary distance kernel — the f32
    /// closure above, or raw SQ8 code distance (monomorphized per kernel,
    /// so the f32 hot path is unchanged).
    fn search_layer_impl<F: Fn(u32) -> f32>(
        &self,
        dist: &F,
        entry: u32,
        ef: usize,
        layer: usize,
        mut stats: Option<&mut SearchStats>,
    ) -> Vec<(f32, u32)> {
        let mut visited = vec![false; self.nodes.len()];
        visited[entry as usize] = true;
        let d0 = dist(entry);
        if let Some(s) = stats.as_deref_mut() {
            s.visits += 1;
        }
        let mut frontier = BinaryHeap::new();
        frontier.push(NearFirst(d0, entry));
        let mut results: BinaryHeap<FarFirst> = BinaryHeap::new();
        results.push(FarFirst(d0, entry));

        while let Some(NearFirst(d_cand, cand)) = frontier.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
            if d_cand > worst && results.len() >= ef {
                break;
            }
            if let Some(s) = stats.as_deref_mut() {
                s.expansions += 1;
            }
            for &nb in &self.nodes[cand as usize].neighbors[layer] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                if let Some(s) = stats.as_deref_mut() {
                    s.visits += 1;
                }
                let d = dist(nb);
                let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    frontier.push(NearFirst(d, nb));
                    results.push(FarFirst(d, nb));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        results.into_iter().map(|FarFirst(d, i)| (d, i)).collect()
    }

    /// The neighbour-selection heuristic from the paper (Algorithm 4): scan
    /// candidates nearest-first, keep one only if it is closer to the base
    /// point than to every already-kept neighbour.
    fn select_neighbors(&self, candidates: &mut [(f32, u32)], m: usize) -> Vec<u32> {
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut kept: Vec<(f32, u32)> = Vec::with_capacity(m);
        for &(d, c) in candidates.iter() {
            if kept.len() >= m {
                break;
            }
            let dominated = kept.iter().any(|&(_, k)| {
                let d_ck = 1.0 - vector::dot(self.vec_of(c), self.vec_of(k));
                d_ck < d
            });
            if !dominated {
                kept.push((d, c));
            }
        }
        // Fill remaining slots with nearest dominated candidates (keeps
        // degree up on dense clusters).
        if kept.len() < m {
            for &(d, c) in candidates.iter() {
                if kept.len() >= m {
                    break;
                }
                if !kept.iter().any(|&(_, k)| k == c) {
                    kept.push((d, c));
                }
            }
        }
        kept.into_iter().map(|(_, c)| c).collect()
    }

    fn max_degree(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Search with an explicit beam width (recall/latency knob of E5).
    ///
    /// Under [`Precision::Sq8Rescore`] the descent and the layer-0 beam
    /// rank by raw integer code distance (monotone in the decoded L2 — the
    /// shared-step s² factor cannot reorder; see `mlake_tensor::quant`),
    /// the beam widens to at least `rescore_factor · k`, and the top pool
    /// is re-ranked with exact f32 kernels, so returned distances match
    /// the f32 path's semantics.
    pub fn search_ef(&self, query: &[f32], k: usize, ef: usize) -> Result<Vec<Hit>, TensorError> {
        let Some(entry) = self.entry else {
            return Ok(Vec::new());
        };
        if query.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "hnsw_search",
                lhs: (self.dim, 1),
                rhs: (query.len(), 1),
            });
        }
        let _span = mlake_obs::span("hnsw.search");
        let mut q = query.to_vec();
        vector::normalize(&mut q);
        let ef = ef.max(k).max(1);
        let Some(codec) = self.sq8_ready() else {
            let mut found = self.traverse(entry, &|i| self.dist(&q, i), ef);
            found.sort_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then(self.nodes[a.1 as usize].id.cmp(&self.nodes[b.1 as usize].id))
            });
            return Ok(found
                .into_iter()
                .take(k)
                .map(|(d, i)| Hit {
                    id: self.nodes[i as usize].id,
                    distance: d,
                })
                .collect());
        };
        let qc = codec.encode(&q)?;
        let dim = self.dim;
        let codes = &self.codes;
        let pool = self.config.rescore_factor.max(1).saturating_mul(k);
        // Raw code distances fit f32 exactly up to dim·255² < 2²⁴
        // (dim ≤ 258); beyond that the cast only coarsens ties.
        let dist = |i: u32| {
            let at = i as usize * dim;
            quant::l2_distance_sq_u8(&qc, &codes[at..at + dim]) as f32
        };
        let mut found = self.traverse(entry, &dist, ef.max(pool));
        found.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(self.nodes[a.1 as usize].id.cmp(&self.nodes[b.1 as usize].id))
        });
        found.truncate(pool);
        let mut hits: Vec<Hit> = found
            .into_iter()
            .map(|(_, i)| Hit {
                id: self.nodes[i as usize].id,
                distance: self.dist(&q, i),
            })
            .collect();
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        hits.truncate(k);
        Ok(hits)
    }

    /// Greedy upper-layer descent followed by the layer-0 beam under an
    /// arbitrary distance kernel; flushes visit counters once per call.
    fn traverse<F: Fn(u32) -> f32>(&self, entry: u32, dist: &F, ef: usize) -> Vec<(f32, u32)> {
        let obs = mlake_obs::enabled();
        let mut layer_visits = [0u64; LAYER_VISITS.len()];
        let mut ep = entry;
        let mut ep_dist = dist(ep);
        for layer in (1..=self.max_layer).rev() {
            loop {
                let mut improved = false;
                // Borrow neighbor list by index to satisfy the borrow checker.
                let nbrs = self.nodes[ep as usize].neighbors.get(layer).cloned().unwrap_or_default();
                if obs {
                    layer_visits[layer.min(LAYER_VISITS.len() - 1)] += nbrs.len() as u64;
                }
                for nb in nbrs {
                    let d = dist(nb);
                    if d < ep_dist {
                        ep = nb;
                        ep_dist = d;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        let mut stats = SearchStats::default();
        let found = self.search_layer_impl(dist, ep, ef, 0, obs.then_some(&mut stats));
        if obs {
            layer_visits[0] += stats.visits;
            for (l, &v) in layer_visits.iter().enumerate() {
                if v > 0 {
                    mlake_obs::registry().counter(LAYER_VISITS[l]).add(v);
                }
            }
            mlake_obs::counter!("hnsw.search.expansions").add(stats.expansions);
            mlake_obs::counter!("hnsw.search.queries").inc();
        }
        found
    }

    /// Inserts a batch of vectors, linking them into the graph in parallel
    /// on the shared pool (the [`VectorIndex::insert_batch`] override
    /// delegates here).
    ///
    /// The whole batch is validated up front (shape, emptiness, duplicate
    /// ids against the index *and* within the batch); on error nothing is
    /// inserted. Layer assignments always come from the index RNG in batch
    /// order, so the RNG stream matches the equivalent sequence of
    /// [`VectorIndex::insert`] calls exactly.
    ///
    /// Determinism: with `MLAKE_THREADS=1` (or inside `mlake_par::serial`)
    /// or for batches under [`PARALLEL_BUILD_MIN`] this *is* the
    /// sequential insert loop — the resulting graph is bit-identical to
    /// serial construction. With more threads the link phase runs
    /// concurrently under per-node-per-layer locks: the final graph then
    /// depends on insertion interleaving, but every node is linked with
    /// the same beam parameters, so search recall is preserved (asserted
    /// by the equivalence tests).
    pub fn insert_batch_parallel(&mut self, items: &[(u64, Vec<f32>)]) -> Result<(), TensorError> {
        if items.is_empty() {
            return Ok(());
        }
        let _span = mlake_obs::span("hnsw.build");
        // ---- Validate everything before mutating anything --------------
        let dim = if self.dim == 0 {
            items[0].1.len()
        } else {
            self.dim
        };
        let mut seen: HashSet<u64> = self.nodes.iter().map(|n| n.id).collect();
        for (id, v) in items {
            if v.is_empty() {
                return Err(TensorError::Empty("hnsw insert"));
            }
            if v.len() != dim {
                return Err(TensorError::ShapeMismatch {
                    op: "hnsw_insert",
                    lhs: (dim, 1),
                    rhs: (v.len(), 1),
                });
            }
            if !seen.insert(*id) {
                return Err(TensorError::Numerical("duplicate id in index"));
            }
        }

        let sequential = mlake_par::num_threads() == 1
            || mlake_par::is_serial()
            || items.len() < PARALLEL_BUILD_MIN;
        if sequential {
            for (id, v) in items {
                self.insert(*id, v)?;
            }
            return Ok(());
        }
        self.dim = dim;

        // ---- Assign layers and append vectors + nodes -------------------
        let first_new = self.nodes.len();
        let layers: Vec<usize> = items.iter().map(|_| self.random_layer()).collect();
        for ((id, v), &layer) in items.iter().zip(&layers) {
            let mut vn = v.clone();
            vector::normalize(&mut vn);
            self.data.extend_from_slice(&vn);
            self.nodes.push(Node {
                id: *id,
                neighbors: vec![Vec::new(); layer + 1],
            });
        }
        // Quantize the new rows per-item on the shared pool (linking below
        // reads only the f32 arena, so the order is immaterial).
        self.maintain_codes_batch();

        // ---- Move neighbour lists into per-node-per-layer locks ---------
        let locks: Vec<Vec<RwLock<Vec<u32>>>> = self
            .nodes
            .iter_mut()
            .map(|n| n.neighbors.drain(..).map(RwLock::new).collect())
            .collect();
        let entry = Mutex::new((self.entry, self.max_layer));

        // Seed a connected core serially when the graph starts empty, then
        // link the rest in parallel. Each parallel unit is one node; the
        // grain of 1 lets the pool steal smoothly across skewed link costs.
        let seed_end = if self.entry.is_none() {
            (first_new + SERIAL_SEED).min(self.nodes.len())
        } else {
            first_new
        };
        for idx in first_new..seed_end {
            self.link_node(&locks, &entry, idx as u32, layers[idx - first_new]);
        }
        let remaining = self.nodes.len() - seed_end;
        mlake_par::par_for(remaining, 1, |range| {
            for off in range {
                let idx = seed_end + off;
                self.link_node(&locks, &entry, idx as u32, layers[idx - first_new]);
            }
        });

        // ---- Unwrap the locks back into the plain graph -----------------
        for (node, node_locks) in self.nodes.iter_mut().zip(locks) {
            node.neighbors = node_locks.into_iter().map(RwLock::into_inner).collect();
        }
        let (e, ml) = entry.into_inner();
        self.entry = e;
        self.max_layer = ml;
        Ok(())
    }

    /// Links one pre-appended node into the locked graph (shared by the
    /// serial seed phase and the parallel link phase of `insert_batch`).
    fn link_node(
        &self,
        locks: &[Vec<RwLock<Vec<u32>>>],
        entry: &Mutex<(Option<u32>, usize)>,
        new_idx: u32,
        layer: usize,
    ) {
        // Snapshot the entry point; the very first node just registers.
        let (ep0, top) = {
            // lock-order: 30 (hnsw.entry)
            let _ord = lockorder::acquire(ranks::HNSW_ENTRY, "hnsw.entry");
            let mut g = entry.lock();
            match g.0 {
                Some(e) => (e, g.1),
                None => {
                    *g = (Some(new_idx), layer);
                    return;
                }
            }
        };
        let q = self.vec_of(new_idx).to_vec();
        let mut ep = ep0;
        let mut ep_dist = self.dist(&q, ep);
        // Greedy descent to the node's top layer.
        for l in ((layer + 1)..=top).rev() {
            loop {
                let mut improved = false;
                let nbrs: Vec<u32> = locks[ep as usize]
                    .get(l)
                    .map(|lk| {
                        // lock-order: 40 (hnsw.node)
                        let _ord = lockorder::acquire(ranks::HNSW_NODE, "hnsw.node");
                        lk.read().clone()
                    })
                    .unwrap_or_default();
                for nb in nbrs {
                    let d = self.dist(&q, nb);
                    if d < ep_dist {
                        ep = nb;
                        ep_dist = d;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Connect on each layer from min(layer, top) down to 0.
        for l in (0..=layer.min(top)).rev() {
            let mut candidates =
                self.search_layer_locked(locks, &q, ep, self.config.ef_construction, l);
            let selected = self.select_neighbors(&mut candidates, self.max_degree(l));
            if let Some(&(_, best)) = candidates.first() {
                ep = best;
            }
            // Merge rather than assign: once the node is reachable on a
            // higher layer, concurrent inserters may already have pushed
            // backlinks into this list; overwriting would drop them and
            // leave asymmetric edges.
            {
                // lock-order: 40 (hnsw.node)
                let _ord = lockorder::acquire(ranks::HNSW_NODE, "hnsw.node");
                let mut own = locks[new_idx as usize][l].write();
                for &nb in &selected {
                    if !own.contains(&nb) {
                        own.push(nb);
                    }
                }
                let cap = self.max_degree(l);
                if own.len() > cap {
                    let mut cands: Vec<(f32, u32)> =
                        own.iter().map(|&x| (self.dist(&q, x), x)).collect();
                    *own = self.select_neighbors(&mut cands, cap);
                }
            }
            // Bidirectional links with degree pruning; only one lock is
            // ever held at a time (select_neighbors touches vectors, not
            // the graph), so lock order cannot deadlock.
            for nb in selected {
                let Some(nb_lock) = locks[nb as usize].get(l) else {
                    continue;
                };
                // lock-order: 40 (hnsw.node)
                let _ord = lockorder::acquire(ranks::HNSW_NODE, "hnsw.node");
                let mut list = nb_lock.write();
                list.push(new_idx);
                let cap = self.max_degree(l);
                if list.len() > cap {
                    let base = self.vec_of(nb);
                    let mut cands: Vec<(f32, u32)> = list
                        .iter()
                        .map(|&x| (1.0 - vector::dot(base, self.vec_of(x)), x))
                        .collect();
                    *list = self.select_neighbors(&mut cands, cap);
                }
            }
        }
        // Raise the global entry point if this node tops the hierarchy.
        // lock-order: 30 (hnsw.entry)
        let _ord = lockorder::acquire(ranks::HNSW_ENTRY, "hnsw.entry");
        let mut g = entry.lock();
        if layer > g.1 {
            *g = (Some(new_idx), layer);
        }
    }

    /// [`HnswIndex::search_layer`] over the locked graph used during
    /// parallel construction.
    fn search_layer_locked(
        &self,
        locks: &[Vec<RwLock<Vec<u32>>>],
        q: &[f32],
        entry: u32,
        ef: usize,
        layer: usize,
    ) -> Vec<(f32, u32)> {
        let mut visited = vec![false; locks.len()];
        visited[entry as usize] = true;
        let d0 = self.dist(q, entry);
        let mut frontier = BinaryHeap::new();
        frontier.push(NearFirst(d0, entry));
        let mut results: BinaryHeap<FarFirst> = BinaryHeap::new();
        results.push(FarFirst(d0, entry));

        while let Some(NearFirst(d_cand, cand)) = frontier.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
            if d_cand > worst && results.len() >= ef {
                break;
            }
            let nbrs: Vec<u32> = locks[cand as usize]
                .get(layer)
                .map(|lk| {
                    // lock-order: 40 (hnsw.node)
                    let _ord = lockorder::acquire(ranks::HNSW_NODE, "hnsw.node");
                    lk.read().clone()
                })
                .unwrap_or_default();
            for nb in nbrs {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let d = self.dist(q, nb);
                let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    frontier.push(NearFirst(d, nb));
                    results.push(FarFirst(d, nb));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        results.into_iter().map(|FarFirst(d, i)| (d, i)).collect()
    }
}

impl VectorIndex for HnswIndex {
    fn insert(&mut self, id: u64, vec_in: &[f32]) -> Result<(), TensorError> {
        if vec_in.is_empty() {
            return Err(TensorError::Empty("hnsw insert"));
        }
        if self.dim == 0 {
            self.dim = vec_in.len();
        } else if vec_in.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "hnsw_insert",
                lhs: (self.dim, 1),
                rhs: (vec_in.len(), 1),
            });
        }
        if self.nodes.iter().any(|n| n.id == id) {
            return Err(TensorError::Numerical("duplicate id in index"));
        }
        let mut v = vec_in.to_vec();
        vector::normalize(&mut v);
        let new_idx = self.nodes.len() as u32;
        let layer = self.random_layer();
        self.data.extend_from_slice(&v);
        self.nodes.push(Node {
            id,
            neighbors: vec![Vec::new(); layer + 1],
        });

        let Some(entry) = self.entry else {
            // First node becomes the entry point.
            self.entry = Some(new_idx);
            self.max_layer = layer;
            self.maintain_codes();
            return Ok(());
        };

        let q = self.vec_of(new_idx).to_vec();
        let mut ep = entry;
        let mut ep_dist = self.dist(&q, ep);
        // Descend to the new node's top layer.
        for l in ((layer + 1)..=self.max_layer).rev() {
            loop {
                let mut improved = false;
                let nbrs = self.nodes[ep as usize].neighbors.get(l).cloned().unwrap_or_default();
                for nb in nbrs {
                    let d = self.dist(&q, nb);
                    if d < ep_dist {
                        ep = nb;
                        ep_dist = d;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Connect on each layer from min(layer, max_layer) down to 0.
        for l in (0..=layer.min(self.max_layer)).rev() {
            let mut candidates = self.search_layer(&q, ep, self.config.ef_construction, l, None);
            let selected = self.select_neighbors(&mut candidates, self.max_degree(l));
            // Keep the closest candidate as next layer's entry point.
            if let Some(&(_, best)) = candidates.first() {
                ep = best;
            }
            self.nodes[new_idx as usize].neighbors[l] = selected.clone();
            // Bidirectional links with degree pruning.
            for nb in selected {
                self.nodes[nb as usize].neighbors[l].push(new_idx);
                let degree = self.nodes[nb as usize].neighbors[l].len();
                let cap = self.max_degree(l);
                if degree > cap {
                    let base = self.vec_of(nb).to_vec();
                    let mut cands: Vec<(f32, u32)> = self.nodes[nb as usize].neighbors[l]
                        .iter()
                        .map(|&x| (1.0 - vector::dot(&base, self.vec_of(x)), x))
                        .collect();
                    let pruned = self.select_neighbors(&mut cands, cap);
                    self.nodes[nb as usize].neighbors[l] = pruned;
                }
            }
        }
        if layer > self.max_layer {
            self.max_layer = layer;
            self.entry = Some(new_idx);
        }
        self.maintain_codes();
        Ok(())
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, TensorError> {
        self.search_ef(query, k, self.config.ef_search)
    }

    fn search_many(&self, queries: &[Vec<f32>], k: usize) -> Result<Vec<Vec<Hit>>, TensorError> {
        par_search_many(self, queries, k)
    }

    fn insert_batch(&mut self, items: &[(u64, Vec<f32>)]) -> Result<(), TensorError> {
        self.insert_batch_parallel(items)
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn name(&self) -> &'static str {
        "hnsw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Pcg64::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.normal()).collect())
            .collect()
    }

    #[test]
    fn single_and_empty() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        assert!(idx.search(&[1.0, 0.0], 3).unwrap().is_empty());
        idx.insert(7, &[1.0, 0.0]).unwrap();
        let hits = idx.search(&[1.0, 0.1], 3).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
    }

    #[test]
    fn exact_on_small_sets() {
        // With ef >= n, HNSW search must equal the flat scan.
        let vecs = random_vectors(50, 8, 3);
        let mut hnsw = HnswIndex::new(HnswConfig { ef_search: 64, ..Default::default() });
        let mut flat = FlatIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            hnsw.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        let queries = random_vectors(10, 8, 4);
        for q in &queries {
            let h: Vec<u64> = hnsw.search(q, 5).unwrap().iter().map(|x| x.id).collect();
            let f: Vec<u64> = flat.search(q, 5).unwrap().iter().map(|x| x.id).collect();
            assert_eq!(h, f, "query {q:?}");
        }
    }

    #[test]
    fn high_recall_on_larger_set() {
        let vecs = random_vectors(1000, 16, 5);
        let mut hnsw = HnswIndex::new(HnswConfig {
            m: 12,
            ef_construction: 80,
            ef_search: 48,
            seed: 1,
            ..Default::default()
        });
        let mut flat = FlatIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            hnsw.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        let queries = random_vectors(30, 16, 6);
        let mut recall_acc = 0.0f32;
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 10).unwrap().iter().map(|h| h.id).collect();
            let got = hnsw.search(q, 10).unwrap();
            let inter = got.iter().filter(|h| truth.contains(&h.id)).count();
            recall_acc += inter as f32 / 10.0;
        }
        let recall = recall_acc / queries.len() as f32;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn ef_improves_recall() {
        let vecs = random_vectors(800, 16, 7);
        let mut hnsw = HnswIndex::new(HnswConfig {
            m: 6,
            ef_construction: 40,
            ef_search: 4,
            seed: 2,
            ..Default::default()
        });
        let mut flat = FlatIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            hnsw.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        let queries = random_vectors(40, 16, 8);
        let recall = |ef: usize| -> f32 {
            let mut acc = 0.0;
            for q in &queries {
                let truth: std::collections::HashSet<u64> =
                    flat.search(q, 10).unwrap().iter().map(|h| h.id).collect();
                let got = hnsw.search_ef(q, 10, ef).unwrap();
                acc += got.iter().filter(|h| truth.contains(&h.id)).count() as f32 / 10.0;
            }
            acc / queries.len() as f32
        };
        let low = recall(10);
        let high = recall(200);
        assert!(high >= low, "ef=200 recall {high} < ef=10 recall {low}");
        assert!(high > 0.95, "recall at high ef {high}");
    }

    #[test]
    fn validation() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        idx.insert(1, &[1.0, 0.0]).unwrap();
        assert!(idx.insert(1, &[0.0, 1.0]).is_err());
        assert!(idx.insert(2, &[1.0]).is_err());
        assert!(idx.insert(3, &[]).is_err());
        assert!(idx.search(&[1.0], 1).is_err());
        assert_eq!(idx.name(), "hnsw");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn insert_batch_serial_scope_is_bitwise_sequential() {
        // Inside mlake_par::serial the batch path must be literally the
        // sequential insert loop: identical graph, identical RNG state
        // (compared via the full Debug rendering).
        let vecs = random_vectors(300, 8, 21);
        let items: Vec<(u64, Vec<f32>)> =
            vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())).collect();
        let mut looped = HnswIndex::new(HnswConfig { seed: 5, ..Default::default() });
        for (id, v) in &items {
            looped.insert(*id, v).unwrap();
        }
        let mut batched = HnswIndex::new(HnswConfig { seed: 5, ..Default::default() });
        mlake_par::serial(|| batched.insert_batch(&items)).unwrap();
        assert_eq!(format!("{looped:?}"), format!("{batched:?}"));
    }

    #[test]
    fn insert_batch_parallel_preserves_recall() {
        let vecs = random_vectors(1200, 16, 22);
        let items: Vec<(u64, Vec<f32>)> =
            vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())).collect();
        let config = HnswConfig { m: 12, ef_construction: 80, ef_search: 48, seed: 3, ..Default::default() };
        let mut serial_idx = HnswIndex::new(config);
        mlake_par::serial(|| serial_idx.insert_batch(&items)).unwrap();
        let mut par_idx = HnswIndex::new(config);
        par_idx.insert_batch(&items).unwrap();
        assert_eq!(par_idx.len(), items.len());

        let mut flat = FlatIndex::new();
        for (id, v) in &items {
            flat.insert(*id, v).unwrap();
        }
        let queries = random_vectors(40, 16, 23);
        let recall = |idx: &HnswIndex| crate::eval::recall_at_k(idx, &flat, &queries, 10).unwrap();
        let (rs, rp) = (recall(&serial_idx), recall(&par_idx));
        assert!(rp > 0.9, "parallel-built recall {rp}");
        assert!(rp >= rs - 0.05, "parallel recall {rp} far below serial {rs}");
    }

    #[test]
    fn insert_batch_validates_whole_batch_first() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        idx.insert(0, &[1.0, 0.0]).unwrap();
        // Duplicate id inside the batch → nothing inserted.
        let bad = vec![
            (1, vec![0.0, 1.0]),
            (1, vec![0.5, 0.5]),
        ];
        assert!(idx.insert_batch(&bad).is_err());
        assert_eq!(idx.len(), 1);
        // Dimension mismatch anywhere in the batch → nothing inserted.
        let bad_dim = vec![(2, vec![0.0, 1.0]), (3, vec![1.0])];
        assert!(idx.insert_batch(&bad_dim).is_err());
        assert_eq!(idx.len(), 1);
        // Duplicate against the existing index → nothing inserted.
        let dup_existing = vec![(0, vec![0.0, 1.0])];
        assert!(idx.insert_batch(&dup_existing).is_err());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn search_many_matches_individual_searches() {
        let vecs = random_vectors(400, 8, 24);
        let mut idx = HnswIndex::new(HnswConfig { seed: 7, ..Default::default() });
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v).unwrap();
        }
        let queries = random_vectors(25, 8, 25);
        let batched = idx.search_many(&queries, 5).unwrap();
        for (q, hits) in queries.iter().zip(&batched) {
            let single = idx.search(q, 5).unwrap();
            assert_eq!(&single, hits);
        }
    }

    /// The debug-mode lock-order tracker must reject the one acquisition
    /// pattern the concurrent build is designed to never produce: taking
    /// the entry-point lock (rank 30) while a node lock (rank 40) is held.
    /// The inversion runs in a spawned thread so the panic unwinds cleanly.
    #[test]
    #[cfg(debug_assertions)]
    fn lock_order_tracker_rejects_entry_after_node() {
        let r = std::thread::spawn(|| {
            let _node = lockorder::acquire(ranks::HNSW_NODE, "hnsw.node");
            let _entry = lockorder::acquire(ranks::HNSW_ENTRY, "hnsw.entry");
        })
        .join();
        let msg = r
            .expect_err("inverted acquisition must panic")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("hnsw.entry") && msg.contains("hnsw.node"), "{msg}");
    }

    #[test]
    fn sq8_rescore_preserves_recall_and_exact_distances() {
        let vecs = random_vectors(600, 16, 41);
        let sq8_config = HnswConfig {
            seed: 9,
            precision: Precision::Sq8Rescore,
            ..Default::default()
        };
        let mut sq8 = HnswIndex::new(sq8_config);
        let mut f32_idx = HnswIndex::new(HnswConfig { seed: 9, ..Default::default() });
        let mut flat = FlatIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            sq8.insert(i as u64, v).unwrap();
            f32_idx.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        assert!(sq8.sq8_ready().is_some());
        assert_eq!(sq8.codes.len(), 600 * 16);
        let queries = random_vectors(30, 16, 42);
        let recall = |idx: &HnswIndex| crate::eval::recall_at_k(idx, &flat, &queries, 10).unwrap();
        let (rq, rf) = (recall(&sq8), recall(&f32_idx));
        assert!(rq >= 0.95 * rf, "sq8 recall {rq} vs f32 recall {rf}");
        // Rescoring returns exact f32 distances for the ids it keeps.
        let truth = flat.search(&queries[0], 10).unwrap();
        for h in sq8.search(&queries[0], 10).unwrap() {
            if let Some(t) = truth.iter().find(|t| t.id == h.id) {
                assert_eq!(t.distance, h.distance);
            }
        }
    }

    #[test]
    fn sq8_batch_build_quantizes_every_row() {
        let vecs = random_vectors(400, 8, 43);
        let items: Vec<(u64, Vec<f32>)> =
            vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())).collect();
        let config = HnswConfig {
            seed: 4,
            precision: Precision::Sq8Rescore,
            rescore_factor: 3,
            ..Default::default()
        };
        let mut batched = HnswIndex::new(config);
        batched.insert_batch(&items).unwrap();
        assert!(batched.sq8_ready().is_some());
        assert_eq!(batched.codes.len(), items.len() * 8);
        // The parallel arena fill must byte-match the sequential encode.
        let mut looped = HnswIndex::new(config);
        for (id, v) in &items {
            looped.insert(*id, v).unwrap();
        }
        assert_eq!(batched.codes, looped.codes);
        assert_eq!(batched.codec, looped.codec);
        let q = &vecs[7];
        let got: Vec<u64> = batched.search(q, 5).unwrap().iter().map(|h| h.id).collect();
        assert!(!got.is_empty());
    }

    #[test]
    fn sq8_below_threshold_falls_back_to_f32() {
        let vecs = random_vectors(SQ8_TRAIN_MIN - 2, 8, 44);
        let mut sq8 = HnswIndex::new(HnswConfig {
            seed: 2,
            precision: Precision::Sq8Rescore,
            ..Default::default()
        });
        let mut f32_idx = HnswIndex::new(HnswConfig { seed: 2, ..Default::default() });
        for (i, v) in vecs.iter().enumerate() {
            sq8.insert(i as u64, v).unwrap();
            f32_idx.insert(i as u64, v).unwrap();
        }
        assert!(sq8.sq8_ready().is_none());
        let q = &vecs[3];
        assert_eq!(sq8.search(q, 5).unwrap(), f32_idx.search(q, 5).unwrap());
    }

    #[test]
    fn deterministic_given_seed() {
        let vecs = random_vectors(200, 8, 9);
        let build = || {
            let mut idx = HnswIndex::new(HnswConfig { seed: 11, ..Default::default() });
            for (i, v) in vecs.iter().enumerate() {
                idx.insert(i as u64, v).unwrap();
            }
            idx
        };
        let a = build();
        let b = build();
        let q = &vecs[0];
        assert_eq!(
            a.search(q, 5).unwrap().iter().map(|h| h.id).collect::<Vec<_>>(),
            b.search(q, 5).unwrap().iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }
}
