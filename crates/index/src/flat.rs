//! Exact brute-force index: the recall ground truth and latency baseline.

use crate::{par_search_many, Hit, Precision, VectorIndex, DEFAULT_RESCORE_FACTOR, SQ8_TRAIN_MIN};
use mlake_tensor::{quant, vector, Sq8Codec, TensorError};

/// Multiply-accumulates per parallel scan block: keeps tiny indexes on the
/// inline path and gives big ones cache-sized chunks.
const SCAN_BLOCK_FLOPS: usize = 1 << 18;

/// Contiguous-storage exact-scan index over normalised vectors.
///
/// Vectors are stored back-to-back in one buffer (one allocation, streaming
/// scans) and normalised at insert so a search is a single pass of dot
/// products. Under [`Precision::Sq8Rescore`] a parallel SQ8 code arena
/// shadows the f32 buffer — block scans then stream a quarter of the bytes
/// on integer lanes and the top `rescore_factor · k` candidates are
/// re-ranked exactly (see [`crate::Precision`]).
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dim: usize,
    ids: Vec<u64>,
    data: Vec<f32>,
    precision: Precision,
    rescore_factor: usize,
    codec: Option<Sq8Codec>,
    codes: Vec<u8>,
}

impl Default for FlatIndex {
    fn default() -> FlatIndex {
        FlatIndex::new()
    }
}

impl FlatIndex {
    /// Creates an empty f32 index; the dimension locks on first insert.
    pub fn new() -> FlatIndex {
        FlatIndex::with_precision(Precision::F32)
    }

    /// Creates an empty index with the given scan precision.
    pub fn with_precision(precision: Precision) -> FlatIndex {
        FlatIndex {
            dim: 0,
            ids: Vec::new(),
            data: Vec::new(),
            precision,
            rescore_factor: DEFAULT_RESCORE_FACTOR,
            codec: None,
            codes: Vec::new(),
        }
    }

    /// Dimensionality (0 before the first insert).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The scan precision this index was created with.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The rescore pool multiplier in effect (`Sq8Rescore` only).
    pub fn rescore_factor(&self) -> usize {
        self.rescore_factor.max(1)
    }

    /// Sets the rescore pool multiplier (clamped to ≥ 1).
    pub fn set_rescore_factor(&mut self, factor: usize) {
        self.rescore_factor = factor.max(1);
    }

    /// Keeps the SQ8 code arena in lockstep with the f32 buffer: calibrates
    /// the codec once [`SQ8_TRAIN_MIN`] rows exist (backfilling earlier
    /// rows), then encodes every new row. No-op in `F32` mode.
    fn maintain_codes(&mut self) {
        if self.precision != Precision::Sq8Rescore || self.dim == 0 {
            return;
        }
        if self.codec.is_none() {
            if self.ids.len() < SQ8_TRAIN_MIN {
                return;
            }
            // Rows are normalised (finite) and the arena is non-empty, so
            // training cannot fail; if it somehow does, stay on f32 scans.
            match Sq8Codec::train_flat(&self.data, self.dim) {
                Ok(c) => self.codec = Some(c),
                Err(_) => return,
            }
        }
        let Some(codec) = self.codec.take() else { return };
        for row in (self.codes.len() / self.dim)..self.ids.len() {
            let v = &self.data[row * self.dim..(row + 1) * self.dim];
            if codec.encode_into(v, &mut self.codes).is_err() {
                break; // unreachable: row width matches the codec by construction
            }
        }
        self.codec = Some(codec);
    }

    /// The codec, iff SQ8 scanning is configured *and* the code arena fully
    /// covers the stored vectors (below the training threshold it does not,
    /// and searches fall back to the exact f32 scan).
    fn sq8_ready(&self) -> Option<&Sq8Codec> {
        if self.precision != Precision::Sq8Rescore {
            return None;
        }
        let codec = self.codec.as_ref()?;
        (self.codes.len() == self.ids.len() * self.dim).then_some(codec)
    }

    /// SQ8 block scan: rank in code space by raw integer L2 (monotone in
    /// the decoded distance — the shared-step s² factor cannot reorder),
    /// keep the top `rescore_factor · k` per block, merge, then re-rank the
    /// pool with exact f32 dots. `q` must already be normalised.
    ///
    /// Each candidate packs as `raw << 32 | row` in one `u64`, so per-block
    /// top-pool extraction is an O(n) `select_nth_unstable` on plain
    /// integers instead of a full comparator sort — the selection would
    /// otherwise rival the distance kernel for scan time. Raw distances
    /// saturate at `u32::MAX` (unreachable below ~66k dims, where
    /// `dim · 255² < 2³²`), and the row suffix makes every key unique, so
    /// the pool is deterministic across thread counts.
    fn search_sq8(&self, codec: &Sq8Codec, q: &[f32], k: usize) -> Vec<Hit> {
        let dim = self.dim.max(1);
        let Ok(qc) = codec.encode(q) else {
            return Vec::new(); // unreachable: caller validated the dimension
        };
        let pool = self.rescore_factor().saturating_mul(k);
        // Codes are 4× denser than f32, so blocks hold 4× the vectors.
        let block = (SCAN_BLOCK_FLOPS * 4 / dim).max(64);
        let top_pool = |mut cands: Vec<u64>| {
            if cands.len() > pool {
                cands.select_nth_unstable(pool - 1);
                cands.truncate(pool);
            }
            cands.sort_unstable();
            cands
        };
        let top = mlake_par::par_map_reduce(
            self.ids.len(),
            block,
            |range| {
                top_pool(
                    range
                        .map(|i| {
                            let raw =
                                quant::l2_distance_sq_u8(&qc, &self.codes[i * dim..(i + 1) * dim]);
                            raw.min(u64::from(u32::MAX)) << 32 | i as u64
                        })
                        .collect(),
                )
            },
            |mut acc, other| {
                acc.extend(other);
                top_pool(acc)
            },
        )
        .unwrap_or_default();
        let mut hits: Vec<Hit> = top
            .into_iter()
            .map(|packed| {
                let row = (packed & u64::from(u32::MAX)) as usize;
                Hit {
                    id: self.ids[row],
                    distance: 1.0 - vector::dot(q, &self.data[row * dim..(row + 1) * dim]),
                }
            })
            .collect();
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }

    fn check_insert(&mut self, id: u64, vector: &[f32]) -> Result<Vec<f32>, TensorError> {
        if vector.is_empty() {
            return Err(TensorError::Empty("index insert"));
        }
        if self.dim == 0 {
            self.dim = vector.len();
        } else if vector.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "index_insert",
                lhs: (self.dim, 1),
                rhs: (vector.len(), 1),
            });
        }
        if self.ids.contains(&id) {
            return Err(TensorError::Numerical("duplicate id in index"));
        }
        let mut v = vector.to_vec();
        vector::normalize(&mut v);
        Ok(v)
    }
}

impl VectorIndex for FlatIndex {
    fn insert(&mut self, id: u64, vec: &[f32]) -> Result<(), TensorError> {
        let v = self.check_insert(id, vec)?;
        self.ids.push(id);
        self.data.extend_from_slice(&v);
        self.maintain_codes();
        Ok(())
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, TensorError> {
        if self.dim != 0 && query.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "index_search",
                lhs: (self.dim, 1),
                rhs: (query.len(), 1),
            });
        }
        let mut q = query.to_vec();
        vector::normalize(&mut q);
        if let Some(codec) = self.sq8_ready() {
            return Ok(self.search_sq8(codec, &q, k));
        }
        let dim = self.dim.max(1);
        // Parallel block scan: each fixed block yields its sorted top-k;
        // block results merge in block order (deterministic across thread
        // counts — (distance, id) is a strict total order, so the global
        // top-k is unique).
        let block = (SCAN_BLOCK_FLOPS / dim).max(64);
        let top = mlake_par::par_map_reduce(
            self.ids.len(),
            block,
            |range| {
                let mut hits: Vec<Hit> = range
                    .map(|i| Hit {
                        id: self.ids[i],
                        distance: 1.0 - vector::dot(&q, &self.data[i * dim..(i + 1) * dim]),
                    })
                    .collect();
                hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
                hits.truncate(k);
                hits
            },
            |mut acc, other| {
                acc.extend(other);
                acc.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
                acc.truncate(k);
                acc
            },
        );
        Ok(top.unwrap_or_default())
    }

    fn search_many(&self, queries: &[Vec<f32>], k: usize) -> Result<Vec<Vec<Hit>>, TensorError> {
        par_search_many(self, queries, k)
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn name(&self) -> &'static str {
        "flat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> FlatIndex {
        let mut idx = FlatIndex::new();
        idx.insert(1, &[1.0, 0.0]).unwrap();
        idx.insert(2, &[0.0, 1.0]).unwrap();
        idx.insert(3, &[0.7, 0.7]).unwrap();
        idx
    }

    #[test]
    fn exact_nearest() {
        let idx = populated();
        let hits = idx.search(&[1.0, 0.1], 2).unwrap();
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3);
        assert!(hits[0].distance < hits[1].distance);
    }

    #[test]
    fn k_larger_than_len() {
        let idx = populated();
        assert_eq!(idx.search(&[1.0, 0.0], 10).unwrap().len(), 3);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn dimension_and_duplicate_checks() {
        let mut idx = populated();
        assert!(idx.insert(4, &[1.0, 2.0, 3.0]).is_err());
        assert!(idx.insert(1, &[0.5, 0.5]).is_err());
        assert!(idx.insert(5, &[]).is_err());
        assert!(idx.search(&[1.0], 1).is_err());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new();
        assert!(idx.search(&[1.0, 0.0], 3).unwrap().is_empty());
        assert!(idx.is_empty());
        assert_eq!(idx.name(), "flat");
    }

    #[test]
    fn ties_break_by_id() {
        let mut idx = FlatIndex::new();
        idx.insert(9, &[1.0, 0.0]).unwrap();
        idx.insert(4, &[2.0, 0.0]).unwrap(); // same direction after normalise
        let hits = idx.search(&[1.0, 0.0], 2).unwrap();
        assert_eq!(hits[0].id, 4);
        assert_eq!(hits[1].id, 9);
    }

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = mlake_tensor::Pcg64::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.normal()).collect())
            .collect()
    }

    #[test]
    fn sq8_arena_tracks_inserts() {
        let vecs = random_vectors(SQ8_TRAIN_MIN + 6, 8, 31);
        let mut idx = FlatIndex::with_precision(Precision::Sq8Rescore);
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v).unwrap();
            if i + 1 < SQ8_TRAIN_MIN {
                assert!(idx.codec.is_none() && idx.codes.is_empty());
            } else {
                // Trained at the threshold, backfilled, then kept in
                // lockstep with every subsequent insert.
                assert!(idx.codec.is_some());
                assert_eq!(idx.codes.len(), (i + 1) * 8);
            }
        }
        assert!(idx.sq8_ready().is_some());
    }

    #[test]
    fn sq8_below_threshold_is_the_exact_scan() {
        let vecs = random_vectors(SQ8_TRAIN_MIN - 1, 8, 32);
        let mut a = FlatIndex::with_precision(Precision::Sq8Rescore);
        let mut b = FlatIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            a.insert(i as u64, v).unwrap();
            b.insert(i as u64, v).unwrap();
        }
        for q in random_vectors(5, 8, 33) {
            assert_eq!(a.search(&q, 7).unwrap(), b.search(&q, 7).unwrap());
        }
    }

    #[test]
    fn sq8_rescore_distances_are_exact_and_recall_high() {
        let vecs = random_vectors(500, 16, 34);
        let mut sq8 = FlatIndex::with_precision(Precision::Sq8Rescore);
        let mut exact = FlatIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            sq8.insert(i as u64, v).unwrap();
            exact.insert(i as u64, v).unwrap();
        }
        let queries = random_vectors(20, 16, 35);
        let mut overlap = 0usize;
        for q in &queries {
            let truth = exact.search(q, 10).unwrap();
            let got = sq8.search(q, 10).unwrap();
            assert_eq!(got.len(), 10);
            for h in &got {
                // Rescoring re-ranks with the exact f32 kernel, so every
                // returned distance must equal the f32 index's distance
                // for the same id bit-for-bit.
                let want = truth
                    .iter()
                    .find(|t| t.id == h.id)
                    .map(|t| t.distance)
                    .unwrap_or_else(|| {
                        1.0 - {
                            let mut qn = q.clone();
                            vector::normalize(&mut qn);
                            let d = 16;
                            let row = sq8.ids.iter().position(|&x| x == h.id).unwrap();
                            vector::dot(&qn, &sq8.data[row * d..(row + 1) * d])
                        }
                    });
                assert_eq!(h.distance, want);
            }
            overlap += got.iter().filter(|h| truth.iter().any(|t| t.id == h.id)).count();
        }
        let recall = overlap as f32 / (queries.len() * 10) as f32;
        assert!(recall >= 0.95, "flat sq8 rescored recall {recall}");
        // Deterministic across repeat searches.
        assert_eq!(sq8.search(&queries[0], 10).unwrap(), sq8.search(&queries[0], 10).unwrap());
    }
}
