//! Exact brute-force index: the recall ground truth and latency baseline.

use crate::{par_search_many, Hit, VectorIndex};
use mlake_tensor::{vector, TensorError};

/// Multiply-accumulates per parallel scan block: keeps tiny indexes on the
/// inline path and gives big ones cache-sized chunks.
const SCAN_BLOCK_FLOPS: usize = 1 << 18;

/// Contiguous-storage exact-scan index over normalised vectors.
///
/// Vectors are stored back-to-back in one buffer (one allocation, streaming
/// scans) and normalised at insert so a search is a single pass of dot
/// products.
#[derive(Debug, Clone, Default)]
pub struct FlatIndex {
    dim: usize,
    ids: Vec<u64>,
    data: Vec<f32>,
}

impl FlatIndex {
    /// Creates an empty index; the dimension locks on first insert.
    pub fn new() -> FlatIndex {
        FlatIndex::default()
    }

    /// Dimensionality (0 before the first insert).
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn check_insert(&mut self, id: u64, vector: &[f32]) -> Result<Vec<f32>, TensorError> {
        if vector.is_empty() {
            return Err(TensorError::Empty("index insert"));
        }
        if self.dim == 0 {
            self.dim = vector.len();
        } else if vector.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "index_insert",
                lhs: (self.dim, 1),
                rhs: (vector.len(), 1),
            });
        }
        if self.ids.contains(&id) {
            return Err(TensorError::Numerical("duplicate id in index"));
        }
        let mut v = vector.to_vec();
        vector::normalize(&mut v);
        Ok(v)
    }
}

impl VectorIndex for FlatIndex {
    fn insert(&mut self, id: u64, vec: &[f32]) -> Result<(), TensorError> {
        let v = self.check_insert(id, vec)?;
        self.ids.push(id);
        self.data.extend_from_slice(&v);
        Ok(())
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, TensorError> {
        if self.dim != 0 && query.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "index_search",
                lhs: (self.dim, 1),
                rhs: (query.len(), 1),
            });
        }
        let mut q = query.to_vec();
        vector::normalize(&mut q);
        let dim = self.dim.max(1);
        // Parallel block scan: each fixed block yields its sorted top-k;
        // block results merge in block order (deterministic across thread
        // counts — (distance, id) is a strict total order, so the global
        // top-k is unique).
        let block = (SCAN_BLOCK_FLOPS / dim).max(64);
        let top = mlake_par::par_map_reduce(
            self.ids.len(),
            block,
            |range| {
                let mut hits: Vec<Hit> = range
                    .map(|i| Hit {
                        id: self.ids[i],
                        distance: 1.0 - vector::dot(&q, &self.data[i * dim..(i + 1) * dim]),
                    })
                    .collect();
                hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
                hits.truncate(k);
                hits
            },
            |mut acc, other| {
                acc.extend(other);
                acc.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
                acc.truncate(k);
                acc
            },
        );
        Ok(top.unwrap_or_default())
    }

    fn search_many(&self, queries: &[Vec<f32>], k: usize) -> Result<Vec<Vec<Hit>>, TensorError> {
        par_search_many(self, queries, k)
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn name(&self) -> &'static str {
        "flat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> FlatIndex {
        let mut idx = FlatIndex::new();
        idx.insert(1, &[1.0, 0.0]).unwrap();
        idx.insert(2, &[0.0, 1.0]).unwrap();
        idx.insert(3, &[0.7, 0.7]).unwrap();
        idx
    }

    #[test]
    fn exact_nearest() {
        let idx = populated();
        let hits = idx.search(&[1.0, 0.1], 2).unwrap();
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3);
        assert!(hits[0].distance < hits[1].distance);
    }

    #[test]
    fn k_larger_than_len() {
        let idx = populated();
        assert_eq!(idx.search(&[1.0, 0.0], 10).unwrap().len(), 3);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn dimension_and_duplicate_checks() {
        let mut idx = populated();
        assert!(idx.insert(4, &[1.0, 2.0, 3.0]).is_err());
        assert!(idx.insert(1, &[0.5, 0.5]).is_err());
        assert!(idx.insert(5, &[]).is_err());
        assert!(idx.search(&[1.0], 1).is_err());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new();
        assert!(idx.search(&[1.0, 0.0], 3).unwrap().is_empty());
        assert!(idx.is_empty());
        assert_eq!(idx.name(), "flat");
    }

    #[test]
    fn ties_break_by_id() {
        let mut idx = FlatIndex::new();
        idx.insert(9, &[1.0, 0.0]).unwrap();
        idx.insert(4, &[2.0, 0.0]).unwrap(); // same direction after normalise
        let hits = idx.search(&[1.0, 0.0], 2).unwrap();
        assert_eq!(hits[0].id, 4);
        assert_eq!(hits[1].id, 9);
    }
}
