//! Random-hyperplane locality-sensitive hashing (Charikar 2002) for cosine
//! similarity — the classical sublinear baseline HNSW is compared against.

use crate::{Hit, VectorIndex};
use mlake_tensor::{vector, Pcg64, TensorError};
use std::collections::HashMap;

/// LSH parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshConfig {
    /// Number of hash tables (more tables → higher recall, more memory).
    pub tables: usize,
    /// Hyperplanes (signature bits) per table (more bits → smaller buckets).
    pub bits: usize,
    /// Seed for hyperplane directions.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            tables: 8,
            bits: 12,
            seed: 0,
        }
    }
}

/// Multi-table sign-random-projection index.
#[derive(Debug, Clone)]
pub struct LshIndex {
    config: LshConfig,
    dim: usize,
    /// Hyperplanes per table, lazily materialised at first insert:
    /// `planes[t]` is `bits × dim`, flattened.
    planes: Vec<Vec<f32>>,
    /// Buckets per table: signature → vector indices.
    buckets: Vec<HashMap<u64, Vec<u32>>>,
    ids: Vec<u64>,
    data: Vec<f32>,
}

impl LshIndex {
    /// Creates an empty index.
    pub fn new(config: LshConfig) -> LshIndex {
        LshIndex {
            config: LshConfig {
                tables: config.tables.max(1),
                bits: config.bits.clamp(1, 63),
                seed: config.seed,
            },
            dim: 0,
            planes: Vec::new(),
            buckets: Vec::new(),
            ids: Vec::new(),
            data: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> LshConfig {
        self.config
    }

    fn materialize_planes(&mut self) {
        let mut rng = Pcg64::with_stream(self.config.seed, 0x004c_5348);
        self.planes = (0..self.config.tables)
            .map(|_| {
                let mut p = vec![0.0f32; self.config.bits * self.dim];
                rng.fill_normal(&mut p);
                p
            })
            .collect();
        self.buckets = vec![HashMap::new(); self.config.tables];
    }

    fn signature(&self, table: usize, v: &[f32]) -> u64 {
        let planes = &self.planes[table];
        let mut sig = 0u64;
        for b in 0..self.config.bits {
            let plane = &planes[b * self.dim..(b + 1) * self.dim];
            if vector::dot(plane, v) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    #[inline]
    fn vec_of(&self, idx: u32) -> &[f32] {
        &self.data[idx as usize * self.dim..(idx as usize + 1) * self.dim]
    }

    /// Candidate set size for a query — exposed so experiments can report
    /// how much of the lake LSH actually scans.
    pub fn candidate_count(&self, query: &[f32]) -> usize {
        if self.dim == 0 || query.len() != self.dim {
            return 0;
        }
        let mut q = query.to_vec();
        vector::normalize(&mut q);
        let mut seen = std::collections::HashSet::new();
        for t in 0..self.config.tables {
            let sig = self.signature(t, &q);
            if let Some(b) = self.buckets[t].get(&sig) {
                seen.extend(b.iter().copied());
            }
        }
        seen.len()
    }
}

impl VectorIndex for LshIndex {
    fn insert(&mut self, id: u64, vec_in: &[f32]) -> Result<(), TensorError> {
        if vec_in.is_empty() {
            return Err(TensorError::Empty("lsh insert"));
        }
        if self.dim == 0 {
            self.dim = vec_in.len();
            self.materialize_planes();
        } else if vec_in.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "lsh_insert",
                lhs: (self.dim, 1),
                rhs: (vec_in.len(), 1),
            });
        }
        if self.ids.contains(&id) {
            return Err(TensorError::Numerical("duplicate id in index"));
        }
        let mut v = vec_in.to_vec();
        vector::normalize(&mut v);
        let idx = self.ids.len() as u32;
        for t in 0..self.config.tables {
            let sig = self.signature(t, &v);
            self.buckets[t].entry(sig).or_default().push(idx);
        }
        self.ids.push(id);
        self.data.extend_from_slice(&v);
        Ok(())
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, TensorError> {
        if self.dim == 0 {
            return Ok(Vec::new());
        }
        if query.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "lsh_search",
                lhs: (self.dim, 1),
                rhs: (query.len(), 1),
            });
        }
        let mut q = query.to_vec();
        vector::normalize(&mut q);
        let mut seen: Vec<u32> = Vec::new();
        for t in 0..self.config.tables {
            let sig = self.signature(t, &q);
            if let Some(b) = self.buckets[t].get(&sig) {
                seen.extend(b.iter().copied());
            }
        }
        seen.sort_unstable();
        seen.dedup();
        let mut hits: Vec<Hit> = seen
            .into_iter()
            .map(|i| Hit {
                id: self.ids[i as usize],
                distance: 1.0 - vector::dot(&q, self.vec_of(i)),
            })
            .collect();
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        hits.truncate(k);
        Ok(hits)
    }

    fn search_many(&self, queries: &[Vec<f32>], k: usize) -> Result<Vec<Vec<Hit>>, TensorError> {
        crate::par_search_many(self, queries, k)
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn name(&self) -> &'static str {
        "lsh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn clustered_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        // Clustered data: LSH's home turf.
        let mut rng = Pcg64::new(seed);
        let centers: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..dim).map(|_| rng.normal() * 3.0).collect())
            .collect();
        (0..n)
            .map(|i| {
                let c = &centers[i % centers.len()];
                c.iter().map(|&x| x + rng.normal() * 0.3).collect()
            })
            .collect()
    }

    #[test]
    fn finds_near_duplicates() {
        let mut idx = LshIndex::new(LshConfig::default());
        let vecs = clustered_vectors(400, 16, 1);
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v).unwrap();
        }
        // Query with a slightly perturbed copy of vector 5.
        let q: Vec<f32> = vecs[5].iter().map(|&x| x + 0.01).collect();
        let hits = idx.search(&q, 5).unwrap();
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id, 5);
    }

    #[test]
    fn recall_reasonable_on_clusters() {
        let vecs = clustered_vectors(600, 16, 2);
        let mut lsh = LshIndex::new(LshConfig { tables: 12, bits: 10, seed: 3 });
        let mut flat = FlatIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            lsh.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        let mut acc = 0.0f32;
        // Queries near the indexed clusters (perturbed members): the regime
        // LSH serves — locating near-duplicates and close versions.
        let mut qrng = Pcg64::new(4);
        let queries: Vec<Vec<f32>> = (0..20)
            .map(|i| vecs[i * 13].iter().map(|&x| x + qrng.normal() * 0.1).collect())
            .collect();
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 5).unwrap().iter().map(|h| h.id).collect();
            let got = lsh.search(q, 5).unwrap();
            acc += got.iter().filter(|h| truth.contains(&h.id)).count() as f32 / 5.0;
        }
        let recall = acc / queries.len() as f32;
        assert!(recall > 0.5, "recall {recall}");
    }

    #[test]
    fn candidate_count_is_sublinear_on_clusters() {
        let vecs = clustered_vectors(500, 16, 5);
        let mut lsh = LshIndex::new(LshConfig { tables: 4, bits: 14, seed: 6 });
        for (i, v) in vecs.iter().enumerate() {
            lsh.insert(i as u64, v).unwrap();
        }
        let c = lsh.candidate_count(&vecs[0]);
        assert!(c > 0);
        assert!(c < 400, "candidate count {c} not sublinear");
    }

    #[test]
    fn validation_and_empty() {
        let mut idx = LshIndex::new(LshConfig::default());
        assert!(idx.search(&[1.0, 0.0], 3).unwrap().is_empty());
        idx.insert(1, &[1.0, 0.0, 0.0]).unwrap();
        assert!(idx.insert(1, &[0.0, 1.0, 0.0]).is_err());
        assert!(idx.insert(2, &[1.0]).is_err());
        assert!(idx.insert(3, &[]).is_err());
        assert!(idx.search(&[1.0], 1).is_err());
        assert_eq!(idx.name(), "lsh");
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.candidate_count(&[9.0]), 0);
    }

    #[test]
    fn bits_clamped() {
        let idx = LshIndex::new(LshConfig { tables: 0, bits: 99, seed: 0 });
        assert_eq!(idx.config().tables, 1);
        assert_eq!(idx.config().bits, 63);
    }
}
