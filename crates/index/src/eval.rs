//! Index-quality evaluation utilities shared by tests and experiments.

use crate::{FlatIndex, VectorIndex};
use mlake_tensor::TensorError;

/// Mean recall@k of `index` against exact `truth` over `queries`.
pub fn recall_at_k(
    index: &dyn VectorIndex,
    truth: &FlatIndex,
    queries: &[Vec<f32>],
    k: usize,
) -> Result<f32, TensorError> {
    if queries.is_empty() || k == 0 {
        return Ok(0.0);
    }
    let truths = truth.search_many(queries, k)?;
    let results = index.search_many(queries, k)?;
    let mut acc = 0.0f64;
    for (exact_hits, got) in truths.iter().zip(&results) {
        let exact: std::collections::HashSet<u64> = exact_hits.iter().map(|h| h.id).collect();
        if exact.is_empty() {
            continue;
        }
        let inter = got.iter().filter(|h| exact.contains(&h.id)).count();
        acc += inter as f64 / exact.len() as f64;
    }
    Ok((acc / queries.len() as f64) as f32)
}

/// Mean reciprocal rank of the single exact nearest neighbour in the index's
/// top-`k` result list.
pub fn mrr_at_k(
    index: &dyn VectorIndex,
    truth: &FlatIndex,
    queries: &[Vec<f32>],
    k: usize,
) -> Result<f32, TensorError> {
    if queries.is_empty() {
        return Ok(0.0);
    }
    let truths = truth.search_many(queries, 1)?;
    let results = index.search_many(queries, k)?;
    let mut acc = 0.0f64;
    for (exact, got) in truths.iter().zip(&results) {
        let Some(best) = exact.first() else { continue };
        if let Some(rank) = got.iter().position(|h| h.id == best.id) {
            acc += 1.0 / (rank + 1) as f64;
        }
    }
    Ok((acc / queries.len() as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_tensor::Pcg64;

    fn setup() -> (FlatIndex, Vec<Vec<f32>>) {
        let mut rng = Pcg64::new(1);
        let vecs: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..8).map(|_| rng.normal()).collect())
            .collect();
        let mut flat = FlatIndex::new();
        for (i, v) in vecs.iter().enumerate() {
            flat.insert(i as u64, v).unwrap();
        }
        (flat, vecs)
    }

    #[test]
    fn flat_has_perfect_recall_against_itself() {
        let (flat, vecs) = setup();
        let queries: Vec<Vec<f32>> = vecs[..10].to_vec();
        let r = recall_at_k(&flat, &flat, &queries, 5).unwrap();
        assert!((r - 1.0).abs() < 1e-6);
        let m = mrr_at_k(&flat, &flat, &queries, 5).unwrap();
        assert!((m - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        let (flat, _) = setup();
        assert_eq!(recall_at_k(&flat, &flat, &[], 5).unwrap(), 0.0);
        assert_eq!(recall_at_k(&flat, &flat, &[vec![1.0; 8]], 0).unwrap(), 0.0);
        assert_eq!(mrr_at_k(&flat, &flat, &[], 5).unwrap(), 0.0);
    }

    #[test]
    fn empty_truth_counts_zero() {
        let empty = FlatIndex::new();
        let r = recall_at_k(&empty, &empty, &[vec![1.0, 0.0]], 3).unwrap();
        assert_eq!(r, 0.0);
    }
}
