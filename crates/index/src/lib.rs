//! # mlake-index
//!
//! Vector indexes over model embeddings — the lake's **indexer** component
//! (§5: "A central component of a model lake is the indexer, which would be
//! used to embed and provide scalable sublinear search over the model
//! embeddings... Indices like HNSW have proven effective in practice").
//!
//! Three interchangeable implementations behind [`VectorIndex`]:
//! * [`flat::FlatIndex`] — exact scan, the recall ground truth and the
//!   baseline every approximate index must beat on latency;
//! * [`hnsw::HnswIndex`] — Hierarchical Navigable Small World graphs
//!   (Malkov & Yashunin 2020), built from scratch;
//! * [`lsh::LshIndex`] — random-hyperplane locality-sensitive hashing, the
//!   classical sublinear alternative.
//!
//! All indexes use cosine distance over L2-normalised vectors, matching the
//! fingerprint metric.

pub mod eval;
pub mod flat;
pub mod hnsw;
pub mod lsh;

pub use eval::recall_at_k;
pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use lsh::{LshConfig, LshIndex};

use mlake_tensor::TensorError;

/// A search hit: external id plus cosine distance (smaller is closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Caller-supplied identifier.
    pub id: u64,
    /// Cosine distance to the query.
    pub distance: f32,
}

/// Common interface over all index implementations.
pub trait VectorIndex {
    /// Inserts a vector under an external id. Ids must be unique; dimensions
    /// must match the index's first insert.
    fn insert(&mut self, id: u64, vector: &[f32]) -> Result<(), TensorError>;

    /// Returns up to `k` nearest neighbours, ascending by distance.
    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, TensorError>;

    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// `true` when no vectors are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short implementation name for reports ("hnsw", "lsh", "flat").
    fn name(&self) -> &'static str;
}
