//! # mlake-index
//!
//! Vector indexes over model embeddings — the lake's **indexer** component
//! (§5: "A central component of a model lake is the indexer, which would be
//! used to embed and provide scalable sublinear search over the model
//! embeddings... Indices like HNSW have proven effective in practice").
//!
//! Three interchangeable implementations behind [`VectorIndex`]:
//! * [`flat::FlatIndex`] — exact scan, the recall ground truth and the
//!   baseline every approximate index must beat on latency;
//! * [`hnsw::HnswIndex`] — Hierarchical Navigable Small World graphs
//!   (Malkov & Yashunin 2020), built from scratch;
//! * [`lsh::LshIndex`] — random-hyperplane locality-sensitive hashing, the
//!   classical sublinear alternative.
//!
//! [`sharded::ShardedIndex`] composes any of them into `N` digest-routed
//! sub-shards searched scatter-gather, so search cost scales with shard
//! size and cores rather than lake size.
//!
//! All indexes use cosine distance over L2-normalised vectors, matching the
//! fingerprint metric.

pub mod eval;
pub mod flat;
pub mod hnsw;
pub mod lsh;
pub mod sharded;

pub use eval::recall_at_k;
pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use lsh::{LshConfig, LshIndex};
pub use sharded::ShardedIndex;

use mlake_tensor::TensorError;

/// Scan/traversal precision of an index.
///
/// Under [`Precision::Sq8Rescore`] the index keeps an SQ8 code arena
/// (`mlake_tensor::quant`) alongside the f32 data: candidate generation —
/// the flat block scan or the HNSW beam — runs on integer kernels over the
/// codes, then the top `rescore_factor · k` candidates are re-ranked with
/// the exact f32 kernels. Returned distances therefore always match the
/// [`Precision::F32`] path's semantics; quantization only costs recall when
/// it pushes a true neighbour out of the rescore pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// Full-precision f32 storage and kernels (the default).
    #[default]
    F32,
    /// SQ8 codes drive candidate generation; f32 re-ranks the pool.
    Sq8Rescore,
}

/// Default rescore pool multiplier for [`Precision::Sq8Rescore`].
pub const DEFAULT_RESCORE_FACTOR: usize = 4;

/// Vector count at which SQ8 indexes calibrate their codec. Earlier
/// inserts scan in f32 (the sample is too small to be representative);
/// when the threshold is crossed the whole arena is backfilled.
pub const SQ8_TRAIN_MIN: usize = 64;

/// A search hit: external id plus cosine distance (smaller is closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Caller-supplied identifier.
    pub id: u64,
    /// Cosine distance to the query.
    pub distance: f32,
}

/// Common interface over all index implementations.
pub trait VectorIndex {
    /// Inserts a vector under an external id. Ids must be unique; dimensions
    /// must match the index's first insert.
    fn insert(&mut self, id: u64, vector: &[f32]) -> Result<(), TensorError>;

    /// Inserts a batch of vectors.
    ///
    /// The default is the sequential insert loop (stopping at the first
    /// error); implementations with a concurrent build path — see
    /// [`hnsw::HnswIndex`] — override it to validate the whole batch up
    /// front and link in parallel.
    fn insert_batch(&mut self, items: &[(u64, Vec<f32>)]) -> Result<(), TensorError> {
        for (id, v) in items {
            self.insert(*id, v)?;
        }
        Ok(())
    }

    /// Returns up to `k` nearest neighbours, ascending by distance.
    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, TensorError>;

    /// Batched search: one result list per query, in query order.
    ///
    /// The default is the sequential query loop; implementations override
    /// it to answer queries in parallel on the shared pool. Queries are
    /// independent, so per-query results are identical to [`Self::search`]
    /// regardless of thread count. The first error (in query order) is
    /// returned if any query fails.
    fn search_many(&self, queries: &[Vec<f32>], k: usize) -> Result<Vec<Vec<Hit>>, TensorError> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }

    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// `true` when no vectors are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short implementation name for reports ("hnsw", "lsh", "flat").
    fn name(&self) -> &'static str;
}

/// Answers `queries` in parallel on the shared pool, one [`VectorIndex::search`]
/// per query, results in query order; the first error (in query order) wins.
///
/// The building block behind the `search_many` overrides of the concrete
/// indexes — exposed so external [`VectorIndex`] implementations can reuse it.
pub fn par_search_many<I: VectorIndex + Sync + ?Sized>(
    index: &I,
    queries: &[Vec<f32>],
    k: usize,
) -> Result<Vec<Vec<Hit>>, TensorError> {
    mlake_par::par_map(queries, |q| index.search(q, k))
        .into_iter()
        .collect()
}
