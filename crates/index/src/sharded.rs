//! Sharded scatter-gather search: one index partitioned into `N` sub-shards.
//!
//! A [`ShardedIndex`] owns `N` (power of two) inner indexes and routes every
//! vector to exactly one of them off the low bits of a caller-supplied
//! routing key (`shard = key & (N − 1)` — the lake passes the model digest,
//! so placement is content-addressed and stable across re-opens). Search
//! fans out over `mlake_par` — one scatter task per shard, each shard
//! returning its own top `rescore_factor · k` candidates — and the gather
//! half merges the per-shard pools into a global top-`k` with the same
//! u64-packed `select_nth_unstable` selection the flat SQ8 scan uses.
//!
//! # Merge invariant
//!
//! The packed key is `(order(distance) << 32) | id`, where `order` is the
//! sign-magnitude bit twiddle that makes unsigned comparison of f32 bits
//! agree with [`f32::total_cmp`]. Keys are unique (the id suffix breaks
//! distance ties), so the merged top-`k` is a total order independent of
//! shard count, arrival order and thread count. For an exact inner index
//! (the flat scan) every shard's top `≥ k` candidates is a superset of the
//! global winners that live in that shard, so the merged result is
//! **bit-identical** to the unsharded index over the same vectors — at any
//! `N` and any `MLAKE_THREADS`. For approximate inner indexes (HNSW) the
//! guarantee holds at equal precision: each shard runs the same beam over a
//! smaller graph, so recall is ≥ the single-graph configuration while
//! per-query latency scales with shard size on multi-core hosts.
//!
//! `N = 1` (the default lake configuration) bypasses the scatter entirely
//! and forwards to the single inner index — exactly today's behavior.

use crate::{par_search_many, Hit, VectorIndex, DEFAULT_RESCORE_FACTOR};
use mlake_tensor::TensorError;

/// A vector index partitioned into a power-of-two number of sub-shards
/// searched scatter-gather. See the module docs for the merge invariant.
pub struct ShardedIndex<I> {
    shards: Vec<I>,
    /// `shards.len() - 1`; routing is `key & mask`.
    mask: u64,
    /// Per-shard overfetch multiplier: each shard returns up to
    /// `rescore_factor · k` candidates to the merge.
    rescore_factor: usize,
}

/// Maps f32 bits to a u32 whose unsigned order equals [`f32::total_cmp`]
/// order (sign-magnitude → biased representation).
#[inline]
fn order_of(distance: f32) -> u32 {
    let b = distance.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

/// Inverse of [`order_of`]: recovers the exact f32 bits.
#[inline]
fn distance_of(ord: u32) -> f32 {
    let bits = if ord & 0x8000_0000 != 0 {
        ord ^ 0x8000_0000
    } else {
        !ord
    };
    f32::from_bits(bits)
}

/// Packs a hit into one u64 key: distance order in the high half, id in
/// the low half. Unsigned key order is (distance, id) order and the
/// distance round-trips bit-exactly.
#[inline]
fn pack_hit(h: &Hit) -> u64 {
    ((order_of(h.distance) as u64) << 32) | (h.id & 0xffff_ffff)
}

#[inline]
fn unpack_hit(key: u64) -> Hit {
    Hit {
        id: key & 0xffff_ffff,
        distance: distance_of((key >> 32) as u32),
    }
}

/// Selects the global top-`k` of a merged candidate pool, ascending by
/// `(total_cmp(distance), id)`.
///
/// The hot path packs each candidate into a u64 and selects with
/// `select_nth_unstable` — O(n) selection, no comparator calls — exactly
/// the pool the flat SQ8 scan builds. Ids wider than 32 bits cannot pack
/// losslessly; that (lake ids are dense and small, so it never happens
/// there) falls back to comparator-based selection with identical ordering
/// semantics.
fn merge_top_k(mut pool: Vec<Hit>, k: usize) -> Vec<Hit> {
    if k == 0 || pool.is_empty() {
        return Vec::new();
    }
    if pool.iter().all(|h| h.id <= u32::MAX as u64) {
        let mut keys: Vec<u64> = pool.iter().map(pack_hit).collect();
        if keys.len() > k {
            keys.select_nth_unstable(k - 1);
            keys.truncate(k);
        }
        keys.sort_unstable();
        return keys.into_iter().map(unpack_hit).collect();
    }
    let cmp =
        |a: &Hit, b: &Hit| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id));
    if pool.len() > k {
        pool.select_nth_unstable_by(k - 1, cmp);
        pool.truncate(k);
    }
    pool.sort_unstable_by(cmp);
    pool
}

impl<I: VectorIndex> ShardedIndex<I> {
    /// Creates a sharded index with `shards` sub-shards built by `factory`.
    ///
    /// The shard count is normalized to the next power of two (minimum 1)
    /// so the mask routing is always valid; callers that must reject
    /// non-power-of-two counts (the lake config builder does) validate
    /// before constructing.
    pub fn new(shards: usize, mut factory: impl FnMut() -> I) -> ShardedIndex<I> {
        let n = shards.max(1).next_power_of_two();
        ShardedIndex {
            shards: (0..n).map(|_| factory()).collect(),
            mask: (n - 1) as u64,
            rescore_factor: DEFAULT_RESCORE_FACTOR,
        }
    }

    /// Sets the per-shard overfetch multiplier (clamped to ≥ 1): each
    /// shard answers with `rescore_factor · k` candidates before the merge.
    pub fn with_rescore_factor(mut self, rescore_factor: usize) -> ShardedIndex<I> {
        self.rescore_factor = rescore_factor.max(1);
        self
    }

    /// Number of sub-shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index a routing key maps to.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    /// Read access to one sub-shard (for tests and reporting).
    pub fn shard(&self, s: usize) -> Option<&I> {
        self.shards.get(s)
    }

    /// Inserts a vector into the shard selected by `key` (the lake passes
    /// the low 8 bytes of the model's content digest). Ids must still be
    /// unique across the *whole* sharded index — the merge assumes one hit
    /// per id.
    pub fn insert_by_key(&mut self, key: u64, id: u64, vector: &[f32]) -> Result<(), TensorError> {
        let s = self.route(key);
        self.shards[s].insert(id, vector)
    }

    /// Per-shard candidate fetch for a top-`k` query.
    fn per_shard_k(&self, k: usize) -> usize {
        self.rescore_factor.max(1).saturating_mul(k)
    }
}

impl<I: VectorIndex + Send + Sync> VectorIndex for ShardedIndex<I> {
    /// Trait-path insert routes on the id itself; callers with a better
    /// routing key (content digests) use [`ShardedIndex::insert_by_key`].
    fn insert(&mut self, id: u64, vector: &[f32]) -> Result<(), TensorError> {
        self.insert_by_key(id, id, vector)
    }

    /// Batched build: items are bucketed per shard (routing on id, as
    /// [`VectorIndex::insert`] does) and the shards build concurrently —
    /// one scatter task per shard, each preserving its bucket's original
    /// item order, so the per-shard graphs are independent of thread
    /// count. The first error in shard order wins.
    fn insert_batch(&mut self, items: &[(u64, Vec<f32>)]) -> Result<(), TensorError> {
        if self.shards.len() == 1 {
            return self.shards[0].insert_batch(items);
        }
        let mut buckets: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); self.shards.len()];
        for (id, v) in items {
            buckets[self.route(*id)].push((*id, v.clone()));
        }
        type ShardBuild<I> = (I, Vec<(u64, Vec<f32>)>, Result<(), TensorError>);
        let shards = std::mem::take(&mut self.shards);
        let mut work: Vec<ShardBuild<I>> = shards
            .into_iter()
            .zip(buckets)
            .map(|(s, b)| (s, b, Ok(())))
            .collect();
        mlake_par::par_chunks_mut(&mut work, 1, |_, chunk| {
            let (shard, bucket, res) = &mut chunk[0];
            *res = shard.insert_batch(bucket);
        });
        let mut first_err = None;
        self.shards = work
            .into_iter()
            .map(|(shard, _, res)| {
                if let (Err(e), None) = (res, first_err.as_ref()) {
                    first_err = Some(e);
                }
                shard
            })
            .collect();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, TensorError> {
        if self.shards.len() == 1 {
            // Single shard: forward verbatim — bit-identical to the
            // unsharded index, no scatter overhead.
            return self.shards[0].search(query, k);
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let per_shard = self.per_shard_k(k);
        let results = {
            let _span = mlake_obs::span("shard.search");
            if mlake_obs::enabled() {
                mlake_obs::counter!("shard.fanout").add(self.shards.len() as u64);
            }
            mlake_par::par_scatter(self.shards.len(), |s| {
                self.shards[s].search(query, per_shard)
            })
        };
        let _span = mlake_obs::span("shard.merge");
        let mut pool = Vec::new();
        for r in results {
            pool.extend(r?);
        }
        Ok(merge_top_k(pool, k))
    }

    fn search_many(&self, queries: &[Vec<f32>], k: usize) -> Result<Vec<Vec<Hit>>, TensorError> {
        par_search_many(self, queries, k)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    fn vecs(n: usize, dim: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..n)
            .map(|i| {
                let v = (0..dim)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                    })
                    .collect();
                (i as u64, v)
            })
            .collect()
    }

    #[test]
    fn order_key_roundtrips_and_orders() {
        let samples = [
            0.0f32, -0.0, 1.0, -1.0, 1e-7, -1e-7, f32::MAX, f32::MIN_POSITIVE, 2.0,
        ];
        for &a in &samples {
            assert_eq!(distance_of(order_of(a)).to_bits(), a.to_bits());
            for &b in &samples {
                assert_eq!(
                    order_of(a).cmp(&order_of(b)),
                    a.total_cmp(&b),
                    "order mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn shard_count_normalizes_to_power_of_two() {
        assert_eq!(ShardedIndex::new(0, FlatIndex::new).shard_count(), 1);
        assert_eq!(ShardedIndex::new(1, FlatIndex::new).shard_count(), 1);
        assert_eq!(ShardedIndex::new(3, FlatIndex::new).shard_count(), 4);
        assert_eq!(ShardedIndex::new(8, FlatIndex::new).shard_count(), 8);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let idx = ShardedIndex::new(4, FlatIndex::new);
        for key in [0u64, 1, 2, 3, 4, 0xdead_beef, u64::MAX] {
            let s = idx.route(key);
            assert!(s < 4);
            assert_eq!(s, idx.route(key));
            assert_eq!(s, (key % 4) as usize);
        }
    }

    #[test]
    fn sharded_flat_matches_unsharded_bit_for_bit() {
        let data = vecs(150, 16, 7);
        let mut flat = FlatIndex::new();
        for (id, v) in &data {
            flat.insert(*id, v).unwrap();
        }
        let queries: Vec<Vec<f32>> = data.iter().take(10).map(|(_, v)| v.clone()).collect();
        for n in [1usize, 2, 4, 8] {
            let mut sharded = ShardedIndex::new(n, FlatIndex::new);
            for (id, v) in &data {
                sharded.insert(*id, v).unwrap();
            }
            assert_eq!(sharded.len(), flat.len());
            for q in &queries {
                let want = flat.search(q, 12).unwrap();
                let got = sharded.search(q, 12).unwrap();
                assert_eq!(got.len(), want.len(), "shards={n}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.id, w.id, "shards={n}");
                    assert_eq!(
                        g.distance.to_bits(),
                        w.distance.to_bits(),
                        "shards={n}: distance must round-trip the merge exactly"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_build_matches_incremental() {
        let data = vecs(120, 8, 3);
        let mut a = ShardedIndex::new(4, FlatIndex::new);
        for (id, v) in &data {
            a.insert(*id, v).unwrap();
        }
        let mut b = ShardedIndex::new(4, FlatIndex::new);
        b.insert_batch(&data).unwrap();
        let q = &data[5].1;
        let ha = a.search(q, 9).unwrap();
        let hb = b.search(q, 9).unwrap();
        assert_eq!(ha, hb);
    }

    #[test]
    fn errors_propagate_from_shards() {
        let mut idx = ShardedIndex::new(4, FlatIndex::new);
        idx.insert(0, &[1.0, 0.0]).unwrap();
        // Wrong dimension against the shard that holds id 0.
        assert!(idx.insert_by_key(0, 4, &[1.0, 0.0, 0.0]).is_err());
        // Duplicate id within one shard.
        assert!(idx.insert_by_key(0, 0, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn search_many_matches_search() {
        let data = vecs(90, 8, 11);
        let mut idx = ShardedIndex::new(4, FlatIndex::new);
        idx.insert_batch(&data).unwrap();
        let queries: Vec<Vec<f32>> = data.iter().take(6).map(|(_, v)| v.clone()).collect();
        let batched = idx.search_many(&queries, 5).unwrap();
        for (q, want) in queries.iter().zip(&batched) {
            assert_eq!(&idx.search(q, 5).unwrap(), want);
        }
    }
}
