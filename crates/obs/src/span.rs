//! RAII tracing spans with a thread-local span stack and monotonic timing.
//!
//! [`span`] pushes the name onto the current thread's span stack and starts
//! a monotonic clock; dropping the returned [`SpanGuard`] pops the stack,
//! feeds the duration into the latency histogram of the same name, and
//! appends a record to the bounded [`crate::recorder`] ring. With
//! observability disabled the guard is inert: no clock read, no TLS touch,
//! no atomics.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

struct Active {
    name: &'static str,
    start: Instant,
}

/// Guard for one span; ends the span on drop. Spans close in LIFO order
/// (guaranteed by scoping — keep guards in a local, don't store them).
pub struct SpanGuard(Option<Active>);

impl SpanGuard {
    /// The span's name (`None` on an inert guard).
    pub fn name(&self) -> Option<&'static str> {
        self.0.as_ref().map(|a| a.name)
    }
}

/// Opens a span. `name` doubles as the latency-histogram name, so every
/// span yields count + p50/p95/p99 in the metrics snapshot for free.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard(Some(Active {
        name,
        start: Instant::now(),
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let dur = active.start.elapsed();
        let depth = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.pop();
            stack.len() as u16
        });
        crate::metrics::registry()
            .histogram(active.name)
            .record_duration(dur);
        crate::recorder::record(active.name, depth, dur);
    }
}

/// Depth of the current thread's span stack (open spans).
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        // The process-wide MLAKE_OBS decides whether spans are live; both
        // paths must be structurally sound.
        let before = current_depth();
        {
            let outer = span("test.span.outer");
            let inner = span("test.span.inner");
            if crate::enabled() {
                assert_eq!(current_depth(), before + 2);
                assert_eq!(inner.name(), Some("test.span.inner"));
            } else {
                assert_eq!(current_depth(), before);
                assert_eq!(inner.name(), None);
            }
            drop(inner);
            drop(outer);
        }
        assert_eq!(current_depth(), before);
        if crate::enabled() {
            let snap = crate::metrics::snapshot();
            assert!(snap.histogram("test.span.outer").map(|h| h.count).unwrap_or(0) >= 1);
        }
    }
}
