//! # mlake-obs
//!
//! The lake's *physical clock*: span-based tracing, a metrics registry and
//! a bounded span recorder, threaded through every hot path of the
//! workspace. The append-only event log in `mlake-core` stays the *logical*
//! clock (what happened, in what order); this crate answers where wall-clock
//! time and work went — the per-operation telemetry a managed model lake
//! needs for provenance-grade accountability at production traffic.
//!
//! Three pieces (DESIGN.md §9):
//!
//! * [`span`] — RAII spans with a thread-local span stack and monotonic
//!   timing. Ending a span records its duration into the latency histogram
//!   of the same name and appends a [`recorder::SpanRecord`] to a bounded
//!   ring buffer (fixed memory, oldest records overwritten).
//! * [`metrics`] — a process-global registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s and log-scale latency [`metrics::Histogram`]s
//!   (p50/p95/p99). Handles are `&'static` and lock-free on the hot path;
//!   the registry lock is only taken on first lookup of a name (the
//!   [`counter!`]/[`gauge!`]/[`histogram!`] macros cache the handle in a
//!   per-call-site `OnceLock`).
//! * [`recorder`] — the ring buffer of recently finished spans, for
//!   after-the-fact inspection of individual operations.
//!
//! # Disabling
//!
//! `MLAKE_OBS=off` (or `0`/`false`) turns the whole layer off for the
//! process: [`enabled`] caches the answer once, spans become inert guards
//! that never read the clock, and instrumented call sites skip their
//! counter updates. The disabled path must never change results — CI
//! re-runs tier-1 under `MLAKE_OBS=off` to prove it.
//!
//! # Naming scheme
//!
//! Dotted lowercase paths, `<subsystem>.<operation>[.<detail>]`:
//! `lake.ingest`, `hnsw.search.visited.l0`, `par.steals`. Span names double
//! as histogram names, so every span automatically yields count + latency
//! percentiles in the [`MetricsSnapshot`].

pub mod metrics;
pub mod recorder;
pub mod span;

pub use metrics::{registry, snapshot, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use recorder::SpanRecord;
pub use span::{span, SpanGuard};

use std::sync::OnceLock;

/// Whether observability is on for this process (decided once from the
/// `MLAKE_OBS` environment variable; anything except `off`, `0` or `false`
/// — including unset — means on).
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("MLAKE_OBS").unwrap_or_default().to_ascii_lowercase().as_str(),
            "off" | "0" | "false"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_is_stable() {
        // Whatever the environment says, the answer must not flip within a
        // process (handles are cached on first use).
        assert_eq!(enabled(), enabled());
    }
}
