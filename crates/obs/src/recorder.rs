//! Bounded ring buffer of recently finished spans.
//!
//! Memory is fixed at [`CAPACITY`] records; the oldest record is
//! overwritten when full. One short mutex hold per span end — spans sit at
//! operation granularity (an ingest, a search), not per-loop-iteration, so
//! the lock is uncontended in practice.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Ring capacity in records (~24 bytes each).
pub const CAPACITY: usize = 4096;

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span (= histogram) name.
    pub name: &'static str,
    /// Span-stack depth below this span when it ended (0 = root span).
    pub depth: u16,
    /// Small per-thread ordinal (assignment order, not OS thread id).
    pub thread: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Global completion sequence number (1-based, monotone).
    pub seq: u64,
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Next write position once the buffer is full.
    next: usize,
    seq: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: Vec::with_capacity(CAPACITY),
            next: 0,
            seq: 0,
        })
    })
}

fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// Appends a record (called by [`crate::span::SpanGuard`] on drop).
pub fn record(name: &'static str, depth: u16, dur: Duration) {
    let mut r = ring().lock();
    r.seq += 1;
    let rec = SpanRecord {
        name,
        depth,
        thread: thread_ordinal(),
        dur_ns: dur.as_nanos().min(u128::from(u64::MAX)) as u64,
        seq: r.seq,
    };
    if r.buf.len() < CAPACITY {
        r.buf.push(rec);
    } else {
        let at = r.next;
        r.buf[at] = rec;
        r.next = (at + 1) % CAPACITY;
    }
}

/// The most recent `n` records, oldest first.
pub fn recent(n: usize) -> Vec<SpanRecord> {
    let r = ring().lock();
    let mut out: Vec<SpanRecord> = if r.buf.len() < CAPACITY {
        r.buf.clone()
    } else {
        // Unwrap the circular buffer: oldest starts at `next`.
        r.buf[r.next..].iter().chain(&r.buf[..r.next]).copied().collect()
    };
    let keep = out.len().saturating_sub(n);
    out.drain(..keep);
    out
}

/// Total spans ever recorded (survives ring overwrites).
pub fn total_recorded() -> u64 {
    ring().lock().seq
}

/// Empties the ring (registrations elsewhere are unaffected).
pub fn clear() {
    let mut r = ring().lock();
    r.buf.clear();
    r.next = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writing exactly [`CAPACITY`] more records forces the ring through
    /// its wrap point. The ring is process-global and other tests in this
    /// binary record concurrently, so the assertions are the wraparound
    /// invariants themselves rather than exact contents: the ring never
    /// holds more than CAPACITY records, and after wrapping it holds
    /// exactly the last CAPACITY sequence numbers, contiguous and oldest
    /// first across the wrap seam.
    #[test]
    fn ring_wraps_at_exactly_capacity() {
        for i in 0..CAPACITY as u64 {
            record("test.recorder.wrap", 1, Duration::from_nanos(i + 1));
        }
        let all = recent(usize::MAX);
        assert_eq!(all.len(), CAPACITY, "ring must cap at CAPACITY records");
        for w in all.windows(2) {
            assert_eq!(
                w[1].seq,
                w[0].seq + 1,
                "post-wrap unwrap must yield contiguous seqs across the seam"
            );
        }
        assert!(total_recorded() >= CAPACITY as u64);
        // Asking for more than CAPACITY can never return more.
        assert_eq!(recent(CAPACITY + 1).len(), CAPACITY);
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        // Use distinct durations to identify records regardless of other
        // tests writing concurrently into the shared ring.
        for i in 0..(CAPACITY + 100) as u64 {
            record("test.recorder.flood", 0, Duration::from_nanos(i + 1));
        }
        let recent = recent(50);
        assert_eq!(recent.len(), 50);
        // Sequence numbers strictly increase.
        for w in recent.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        assert!(total_recorded() >= (CAPACITY + 100) as u64);
    }
}
