//! The metrics registry: named counters, gauges and log-scale latency
//! histograms, plus the [`MetricsSnapshot`] read side.
//!
//! Handles are `&'static` — registered once, updated forever with relaxed
//! atomics and no locking. The registry mutex is only held during name
//! lookup; the [`crate::counter!`]-family macros cache the returned handle
//! in a per-call-site `OnceLock`, so steady-state instrumentation costs one
//! atomic read-modify-write per update.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Runs `f`, adds its wall-clock duration in nanoseconds, and returns
    /// its result. This is the sanctioned way for other crates to time
    /// work: the clock read stays inside `mlake-obs` (the workspace's
    /// no-wallclock lint confines `Instant` to this crate).
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = f();
        self.add(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        out
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depths, in-flight ops).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// Sets the gauge, tracking the high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative), tracking the high-water mark.
    #[inline]
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set/reached.
    pub fn high_water(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Values below this are binned exactly (one bucket per value).
const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per power-of-two octave above the linear range; bounds the
/// relative quantile error at 1/(2·4) = 12.5%.
const SUBS: usize = 4;
/// 16 exact buckets + 4 sub-buckets for each octave 4..=63.
const BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 4) * SUBS;

/// A log-scale histogram for latency-shaped values (nanoseconds by
/// convention). Fixed memory, lock-free recording, ~12.5% worst-case
/// relative error on reported quantiles.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (octave - 2)) & (SUBS as u64 - 1)) as usize;
        LINEAR_CUTOFF as usize + (octave - 4) * SUBS + sub
    }
}

/// Midpoint of a bucket's value range (exact below the linear cutoff).
fn bucket_mid(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let octave = 4 + (idx - LINEAR_CUTOFF as usize) / SUBS;
        let sub = ((idx - LINEAR_CUTOFF as usize) % SUBS) as u64;
        let width = 1u64 << (octave - 2);
        (1u64 << octave) + sub * width + width / 2
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_mid(idx);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time summary.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count();
        let max_ns = self.max.load(Ordering::Relaxed);
        // Quantiles report log-bucket upper bounds, which can overshoot the
        // true maximum; clamp so p50 <= p95 <= p99 <= max always holds.
        HistogramSnapshot {
            name: name.to_string(),
            count,
            mean_ns: self.sum.load(Ordering::Relaxed).checked_div(count).unwrap_or(0),
            p50_ns: self.quantile(0.50).min(max_ns),
            p95_ns: self.quantile(0.95).min(max_ns),
            p99_ns: self.quantile(0.99).min(max_ns),
            max_ns,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50_ns", &self.quantile(0.5))
            .finish()
    }
}

/// Summary of one histogram at snapshot time (all values nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name (also the span name when span-fed).
    pub name: String,
    /// Recorded values.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Largest recorded value.
    pub max_ns: u64,
}

/// Point-in-time view of every registered metric, names sorted.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → (current, high-water).
    pub gauges: Vec<(String, i64, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// The process-global registry.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

/// Interns a dynamic metric name. Each distinct name leaks once — callers
/// must draw names from a bounded set (layer indexes, worker slots).
fn intern(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

impl Registry {
    /// Returns (registering on first use) the counter `name`.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock();
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// [`Registry::counter`] for a runtime-built name (interned, bounded
    /// sets only).
    pub fn counter_dyn(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name) {
            return c;
        }
        map.entry(intern(name)).or_insert_with(|| Box::leak(Box::default()))
    }

    /// Returns (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock();
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// Returns (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock();
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// [`Registry::histogram`] for a runtime-built name.
    pub fn histogram_dyn(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock();
        if let Some(h) = map.get(name) {
            return h;
        }
        map.entry(intern(name)).or_insert_with(|| Box::leak(Box::default()))
    }

    /// Snapshot of every registered metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(n, c)| (n.to_string(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(n, g)| (n.to_string(), g.get(), g.high_water()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(n, h)| h.snapshot(n))
                .collect(),
        }
    }

    /// Zeroes every registered metric (registrations survive). For tests
    /// and for scoping an experiment's metrics table to its own run.
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
        crate::recorder::clear();
    }
}

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// [`Registry::snapshot`] on the global registry.
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// Counter handle cached per call site (name must be a literal).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// Gauge handle cached per call site (name must be a literal).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// Histogram handle cached per call site (name must be a literal).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2, v - 1] {
                let b = bucket_of(probe);
                assert!(b < BUCKETS, "value {probe} bucket {b}");
                let _ = last;
                last = b;
            }
        }
        // Monotone over a dense small range.
        let mut prev = 0;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of({v}) = {b} < {prev}");
            prev = b;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_mid_within_relative_error() {
        for v in [1u64, 7, 15, 16, 100, 1_000, 123_456, 1 << 30, 1 << 50] {
            let mid = bucket_mid(bucket_of(v));
            let err = (mid as f64 - v as f64).abs() / (v as f64).max(1.0);
            assert!(err <= 0.125 + 1e-9, "value {v} mid {mid} err {err}");
        }
    }

    #[test]
    fn histogram_quantiles_roughly_correct() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in ns
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.15, "p50 {p50}");
        assert!((p99 / 990_000.0 - 1.0).abs() < 0.15, "p99 {p99}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 1000);
        assert!(snap.mean_ns > 0 && snap.max_ns == 1_000_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        let s = h.snapshot("empty");
        assert_eq!((s.count, s.mean_ns, s.p99_ns, s.max_ns), (0, 0, 0, 0));
    }

    /// A single sample lands in one log bucket whose midpoint overshoots
    /// the sample; the snapshot must clamp every quantile to the true
    /// maximum so `p50 <= p95 <= p99 <= max` holds even at count == 1.
    #[test]
    fn single_sample_snapshot_clamps_quantiles_to_max() {
        let h = Histogram::default();
        let v = 1u64 << 20; // bucket midpoint = 1.125 * 2^20 > v
        h.record(v);
        assert!(
            h.quantile(0.99) > v,
            "raw bucket quantile should overshoot the sample"
        );
        let s = h.snapshot("one");
        assert_eq!(s.max_ns, v);
        assert_eq!((s.p50_ns, s.p95_ns, s.p99_ns), (v, v, v));
        assert_eq!(s.mean_ns, v);
    }

    #[test]
    fn counter_time_adds_elapsed_and_returns_result() {
        let c = Counter::default();
        let out = c.time(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7u32
        });
        assert_eq!(out, 7);
        assert!(c.get() >= 2_000_000, "timed at least the 2ms sleep");
    }

    #[test]
    fn registry_round_trip_and_reset() {
        let r = registry();
        let c = r.counter("test.metrics.counter");
        c.inc();
        c.add(4);
        assert!(c.get() >= 5);
        let g = r.gauge("test.metrics.gauge");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        assert!(g.high_water() >= 7);
        let h = r.histogram("test.metrics.hist");
        h.record(42);
        let snap = r.snapshot();
        assert!(snap.counter("test.metrics.counter") >= 5);
        assert!(snap.histogram("test.metrics.hist").is_some());
        assert_eq!(snap.counter("test.metrics.absent"), 0);
        // Same name returns the same handle.
        assert!(std::ptr::eq(c, r.counter("test.metrics.counter")));
        assert!(std::ptr::eq(c, r.counter_dyn("test.metrics.counter")));
        // Snapshot names are sorted.
        let names: Vec<&String> = snap.counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn macros_cache_handles() {
        let a = crate::counter!("test.metrics.macro");
        a.inc();
        let b = crate::counter!("test.metrics.macro");
        assert!(std::ptr::eq(a, b));
        crate::gauge!("test.metrics.macro.gauge").set(1);
        crate::histogram!("test.metrics.macro.hist").record(1);
    }
}
