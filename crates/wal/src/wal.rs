//! The log writer: segmented appends, group commit, compaction.

use crate::record::{self, Lsn};
use crate::vfs::{RealFs, VFile, Vfs};
use crate::WalError;
use mlake_par::lockorder::{self, ranks, OrderToken};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default segment roll-over threshold: 4 MiB.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

/// When appended records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SyncPolicy {
    /// `fsync` after every append; an `Ok` from [`Wal::append`] means the
    /// record is on stable storage.
    Always,
    /// Group commit: `fsync` once every `every` appends (and on explicit
    /// [`Wal::sync`]). Amortises the fsync cost across a batch at the
    /// price of the tail of the batch being lost on a crash. The trigger
    /// is a record count, not a timer — the workspace is wall-clock-free
    /// outside `mlake-obs` and the benches.
    Batch {
        /// Records per fsync. `0` is treated as `1`.
        every: u32,
    },
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Roll to a new segment once the current one would exceed this many
    /// bytes (a single over-sized record still goes in one segment).
    pub segment_bytes: u64,
    /// Commit durability policy.
    pub sync: SyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            sync: SyncPolicy::Always,
        }
    }
}

/// A sealed (no longer written) segment.
#[derive(Debug, Clone)]
pub(crate) struct Sealed {
    pub(crate) path: PathBuf,
    #[allow(dead_code)]
    pub(crate) first: Lsn,
    pub(crate) last: Lsn,
    /// Byte length of the sealed file, so the live-size accounting the
    /// background-compaction trigger polls never touches the filesystem.
    pub(crate) bytes: u64,
}

/// Segment metadata the recovery reader hands back so [`Wal::open_with`]
/// can resume writing where the log left off.
#[derive(Debug, Clone)]
pub(crate) struct SegMeta {
    pub(crate) path: PathBuf,
    pub(crate) first: Lsn,
    /// Last valid LSN in the segment; `None` when the segment holds no
    /// valid records (fresh tail segment).
    pub(crate) last: Option<Lsn>,
    /// Byte length after any torn-tail truncation.
    pub(crate) len: u64,
}

struct Inner {
    /// Handle to the active tail segment.
    file: Box<dyn VFile>,
    /// Path of the active tail segment.
    seg_path: PathBuf,
    /// LSN the active segment is named after (its first record's LSN).
    seg_first: Lsn,
    /// Bytes written to the active segment so far.
    seg_bytes: u64,
    /// Whether the active segment holds at least one record.
    seg_nonempty: bool,
    /// LSN the next append will carry.
    next_lsn: Lsn,
    /// Sealed segments, oldest first.
    sealed: Vec<Sealed>,
    /// Appends since the last fsync (group-commit counter).
    pending: u32,
    /// A write or sync failed; the log refuses further appends because
    /// the on-disk suffix is in an unknown state.
    broken: bool,
}

/// Guard over the writer state that pairs the mutex with its lock-order
/// token, so every acquisition goes through one annotated site.
struct InnerGuard<'a> {
    _ord: OrderToken,
    g: MutexGuard<'a, Inner>,
}

impl std::ops::Deref for InnerGuard<'_> {
    type Target = Inner;
    fn deref(&self) -> &Inner {
        &self.g
    }
}

impl std::ops::DerefMut for InnerGuard<'_> {
    fn deref_mut(&mut self) -> &mut Inner {
        &mut self.g
    }
}

/// Name of the segment whose first record carries `lsn`. Zero-padded so
/// lexicographic directory order equals numeric LSN order.
pub(crate) fn segment_name(lsn: Lsn) -> String {
    format!("{lsn:020}.wal")
}

/// Parses a segment file name back into its first LSN.
pub(crate) fn parse_segment_name(path: &Path) -> Option<Lsn> {
    let stem = path.file_name()?.to_str()?.strip_suffix(".wal")?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// A segmented, checksummed write-ahead log.
///
/// Appends are serialized through an internal mutex; `&self` methods make
/// the log shareable behind an `Arc` or embeddable in a facade that is
/// itself `Sync`. An `Ok` from [`Wal::append`] means the record is
/// durable under [`SyncPolicy::Always`], or buffered for the next group
/// commit under [`SyncPolicy::Batch`]; [`Wal::sync`] is the explicit
/// commit barrier.
pub struct Wal {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    opts: WalOptions,
    inner: Mutex<Inner>,
}

impl Wal {
    /// Opens (or creates) the log in `dir` on the real filesystem,
    /// starting from LSN 0 — i.e. a log with no snapshot in front of it.
    /// Returns the writer plus everything recovery replayed.
    // lint: no-span — delegates to open_with, which opens the replay span
    pub fn open(dir: &Path, opts: WalOptions) -> Result<(Wal, crate::Replay), WalError> {
        Wal::open_with(dir, opts, Arc::new(RealFs), 0)
    }

    /// Opens (or creates) the log in `dir` through an arbitrary [`Vfs`]
    /// (the fault-injection harness plugs in here). `base_lsn` is the
    /// highest LSN already folded into the caller's snapshot: records at
    /// or below it are skipped during replay, and a fresh log starts at
    /// `base_lsn + 1`.
    // lint: no-span — recovery opens the wal.replay span; appends open wal.append
    pub fn open_with(
        dir: &Path,
        opts: WalOptions,
        vfs: Arc<dyn Vfs>,
        base_lsn: Lsn,
    ) -> Result<(Wal, crate::Replay), WalError> {
        vfs.create_dir_all(dir)?;
        let replay = crate::Recovery::run(dir, &vfs, base_lsn)?;
        let next_lsn = replay.last_lsn.max(base_lsn) + 1;

        // Resume the newest segment when it still has room; otherwise
        // seal everything and start a fresh tail segment.
        let mut sealed = Vec::new();
        let mut tail: Option<&crate::SegMeta> = None;
        for (i, seg) in replay.segments.iter().enumerate() {
            let is_last = i + 1 == replay.segments.len();
            if is_last && seg.len < opts.segment_bytes {
                tail = Some(seg);
            } else if let Some(last) = seg.last {
                sealed.push(Sealed {
                    path: seg.path.clone(),
                    first: seg.first,
                    last,
                    bytes: seg.len,
                });
            } else {
                // A full-sized segment with no valid record cannot occur
                // (truncation would have emptied it), but stay safe:
                // delete rather than strand it.
                vfs.remove_file(&seg.path)?;
            }
        }

        let inner = match tail {
            Some(seg) => Inner {
                file: vfs.open_append(&seg.path)?,
                seg_path: seg.path.clone(),
                seg_first: seg.first,
                seg_bytes: seg.len,
                seg_nonempty: seg.last.is_some(),
                next_lsn,
                sealed,
                pending: 0,
                broken: false,
            },
            None => {
                let seg_path = dir.join(segment_name(next_lsn));
                Inner {
                    file: vfs.open_append(&seg_path)?,
                    seg_path,
                    seg_first: next_lsn,
                    seg_bytes: 0,
                    seg_nonempty: false,
                    next_lsn,
                    sealed,
                    pending: 0,
                    broken: false,
                }
            }
        };

        mlake_obs::gauge!("wal.segments").set(inner.sealed.len() as i64 + 1);
        let wal = Wal {
            dir: dir.to_path_buf(),
            vfs,
            opts,
            inner: Mutex::new(inner),
        };
        Ok((wal, replay))
    }

    fn lock_inner(&self) -> InnerGuard<'_> {
        let _ord = lockorder::acquire(ranks::WAL_INNER, "wal.inner");
        // A panic while holding the guard (e.g. an OOM in a test) only
        // poisons state we re-validate via `broken`, so unwrap the poison.
        // lock-order: 50 (wal.inner)
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        InnerGuard { _ord, g }
    }

    /// Directory the log lives in.
    // lint: no-span — trivial accessor
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN of the last record ever appended (0 when the log has none).
    // lint: no-span — trivial accessor
    pub fn head(&self) -> Lsn {
        self.lock_inner().next_lsn - 1
    }

    /// Number of live segment files (sealed + active tail).
    // lint: no-span — trivial accessor
    pub fn segment_count(&self) -> usize {
        self.lock_inner().sealed.len() + 1
    }

    /// Number of sealed (no longer written) segments awaiting compaction.
    // lint: no-span — trivial accessor
    pub fn sealed_count(&self) -> usize {
        self.lock_inner().sealed.len()
    }

    /// Total bytes in live segments (sealed + active tail) — the log's
    /// on-disk footprint a snapshot has not yet folded away. The
    /// background-compaction trigger polls this after every append; it is
    /// pure in-memory accounting, no filesystem access.
    // lint: no-span — trivial accessor on the mutation hot path
    pub fn live_bytes(&self) -> u64 {
        let inner = self.lock_inner();
        inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.seg_bytes
    }

    /// Appends one record and returns its LSN.
    ///
    /// Under [`SyncPolicy::Always`] the record is fsynced before this
    /// returns; under [`SyncPolicy::Batch`] it is fsynced once the batch
    /// fills (or on [`Wal::sync`]). Any I/O failure marks the log broken:
    /// subsequent appends fail with [`WalError::Broken`] because the
    /// on-disk suffix is no longer known-good.
    pub fn append(&self, payload: &[u8]) -> Result<Lsn, WalError> {
        let _span = mlake_obs::span("wal.append");
        let mut inner = self.lock_inner();
        if inner.broken {
            return Err(WalError::Broken);
        }
        let lsn = inner.next_lsn;
        let rec = record::encode(lsn, payload);

        // Roll to a new segment when this record would overflow the
        // current one (never leaving an empty segment behind).
        if inner.seg_nonempty && inner.seg_bytes + rec.len() as u64 > self.opts.segment_bytes {
            // lint: blocking-ok sealing must fsync under the inner lock so a
            // sealed segment is durable before any later append can observe it
            if let Err(e) = self.roll(&mut inner, lsn) {
                inner.broken = true;
                return Err(e);
            }
        }

        if let Err(e) = inner.file.write_all(&rec) {
            inner.broken = true;
            return Err(e.into());
        }
        inner.seg_bytes += rec.len() as u64;
        inner.seg_nonempty = true;
        inner.next_lsn = lsn + 1;
        inner.pending += 1;
        mlake_obs::counter!("wal.bytes").add(rec.len() as u64);

        let due = match self.opts.sync {
            SyncPolicy::Always => true,
            SyncPolicy::Batch { every } => inner.pending >= every.max(1),
        };
        if due {
            // lint: blocking-ok group commit by design — the fsync must cover
            // exactly the records written under this guard (DESIGN.md §6)
            if let Err(e) = Self::fsync(&mut inner) {
                inner.broken = true;
                return Err(e);
            }
        }
        Ok(lsn)
    }

    /// Explicit commit barrier: fsyncs any appends the group-commit
    /// policy has buffered. A no-op when nothing is pending.
    pub fn sync(&self) -> Result<(), WalError> {
        let _span = mlake_obs::span("wal.sync");
        let mut inner = self.lock_inner();
        if inner.broken {
            return Err(WalError::Broken);
        }
        if inner.pending == 0 {
            return Ok(());
        }
        // lint: blocking-ok commit barrier — callers ask for exactly this
        Self::fsync(&mut inner).inspect_err(|_| inner.broken = true)
    }

    fn fsync(inner: &mut Inner) -> Result<(), WalError> {
        let _span = mlake_obs::span("wal.fsync");
        inner.file.sync()?;
        inner.pending = 0;
        Ok(())
    }

    /// Seals the active segment and starts a fresh one whose first record
    /// will be `next_first`. Pending appends are fsynced first so a
    /// sealed segment is always fully durable.
    fn roll(&self, inner: &mut Inner, next_first: Lsn) -> Result<(), WalError> {
        if inner.pending > 0 {
            Self::fsync(inner)?;
        }
        let new_path = self.dir.join(segment_name(next_first));
        let new_file = self.vfs.open_append(&new_path)?;
        let old_path = std::mem::replace(&mut inner.seg_path, new_path);
        let old_bytes = inner.seg_bytes;
        inner.sealed.push(Sealed {
            path: old_path,
            first: inner.seg_first,
            last: next_first - 1,
            bytes: old_bytes,
        });
        inner.file = new_file;
        inner.seg_first = next_first;
        inner.seg_bytes = 0;
        inner.seg_nonempty = false;
        mlake_obs::gauge!("wal.segments").set(inner.sealed.len() as i64 + 1);
        Ok(())
    }

    /// Drops sealed segments whose every record has LSN `<= upto` — the
    /// caller just folded those records into a snapshot. The active tail
    /// segment is first sealed (if non-empty) so it too can be collected
    /// when fully covered. Records above `upto` are untouched.
    pub fn compact_to(&self, upto: Lsn) -> Result<(), WalError> {
        let _span = mlake_obs::span("wal.compact");
        let mut inner = self.lock_inner();
        if inner.broken {
            return Err(WalError::Broken);
        }
        // Seal the tail if the snapshot covers everything in it, so the
        // whole log can shrink to a single fresh segment.
        if inner.seg_nonempty && inner.next_lsn - 1 <= upto {
            let next = inner.next_lsn;
            // lint: blocking-ok sealing the tail fsyncs under the inner lock
            // so the snapshot boundary is durable before segments are dropped
            if let Err(e) = self.roll(&mut inner, next) {
                inner.broken = true;
                return Err(e);
            }
        }
        let (drop_now, keep): (Vec<_>, Vec<_>) =
            std::mem::take(&mut inner.sealed)
                .into_iter()
                .partition(|s| s.last <= upto);
        inner.sealed = keep;
        for seg in drop_now {
            self.vfs.remove_file(&seg.path)?;
        }
        mlake_obs::gauge!("wal.segments").set(inner.sealed.len() as i64 + 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlake-wal-{tag}-{}", std::process::id()))
    }

    fn fresh(tag: &str) -> PathBuf {
        let dir = tmp(tag);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn segment_names_sort_numerically() {
        assert_eq!(segment_name(1), "00000000000000000001.wal");
        let a = segment_name(9);
        let b = segment_name(10);
        assert!(a < b);
        assert_eq!(parse_segment_name(Path::new(&b)), Some(10));
        assert_eq!(parse_segment_name(Path::new("x.wal")), None);
        assert_eq!(parse_segment_name(Path::new("manifest.json")), None);
    }

    #[test]
    fn append_assigns_dense_lsns() {
        let dir = fresh("dense");
        let (wal, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(replay.records.len(), 0);
        assert_eq!(wal.head(), 0);
        for i in 1..=5u64 {
            assert_eq!(wal.append(format!("op{i}").as_bytes()).unwrap(), i);
        }
        assert_eq!(wal.head(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_at_threshold() {
        let dir = fresh("roll");
        let opts = WalOptions {
            segment_bytes: 64,
            sync: SyncPolicy::Always,
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        // Each record is 22 + 10 = 32 bytes; two fit per 64-byte segment.
        for _ in 0..5 {
            wal.append(&[7u8; 10]).unwrap();
        }
        assert_eq!(wal.segment_count(), 3);
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&segment_name(1)));
        assert!(names.contains(&segment_name(3)));
        assert!(names.contains(&segment_name(5)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_still_lands_alone() {
        let dir = fresh("oversize");
        let opts = WalOptions {
            segment_bytes: 64,
            sync: SyncPolicy::Always,
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        wal.append(&[1u8; 200]).unwrap(); // bigger than a whole segment
        wal.append(b"next").unwrap(); // rolls into a new segment
        assert_eq!(wal.segment_count(), 2);
        let (_, replay) = Wal::open(&dir, opts).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].1.len(), 200);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_mode_counts_syncs() {
        use crate::testing::FailFs;
        let dir = fresh("batch");
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::counting();
        let opts = WalOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            sync: SyncPolicy::Batch { every: 4 },
        };
        let (wal, _) = Wal::open_with(&dir, opts, Arc::new(Arc::clone(&fs)), 0).unwrap();
        for _ in 0..10 {
            wal.append(b"x").unwrap();
        }
        // 10 appends at every=4 → fsync after the 4th and 8th.
        assert_eq!(fs.syncs(), 2);
        wal.sync().unwrap(); // flushes the 2 stragglers
        assert_eq!(fs.syncs(), 3);
        wal.sync().unwrap(); // nothing pending → no-op
        assert_eq!(fs.syncs(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn always_mode_syncs_every_append() {
        use crate::testing::FailFs;
        let dir = fresh("always");
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::counting();
        let (wal, _) = Wal::open_with(
            &dir,
            WalOptions::default(),
            Arc::new(Arc::clone(&fs)),
            0,
        )
        .unwrap();
        for _ in 0..3 {
            wal.append(b"x").unwrap();
        }
        assert_eq!(fs.syncs(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_resumes_lsns_and_tail_segment() {
        let dir = fresh("resume");
        {
            let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
        }
        let (wal, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(replay.last_lsn, 2);
        assert_eq!(
            replay.records,
            vec![(1, b"one".to_vec()), (2, b"two".to_vec())]
        );
        assert_eq!(wal.append(b"three").unwrap(), 3);
        // Still one segment: the tail was resumed, not replaced.
        assert_eq!(wal.segment_count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn base_lsn_skips_snapshotted_prefix() {
        let dir = fresh("base");
        {
            let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 1..=4u64 {
                wal.append(format!("r{i}").as_bytes()).unwrap();
            }
        }
        let (wal, replay) =
            Wal::open_with(&dir, WalOptions::default(), RealFs::shared(), 2).unwrap();
        assert_eq!(
            replay.records,
            vec![(3, b"r3".to_vec()), (4, b"r4".to_vec())]
        );
        assert_eq!(wal.head(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_covered_segments() {
        let dir = fresh("compact");
        let opts = WalOptions {
            segment_bytes: 64,
            sync: SyncPolicy::Always,
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        for _ in 0..6 {
            wal.append(&[9u8; 10]).unwrap();
        }
        assert_eq!(wal.segment_count(), 3);
        // Snapshot covers LSNs 1..=4: the first two segments go.
        wal.compact_to(4).unwrap();
        assert_eq!(wal.segment_count(), 1);
        let (_, replay) = Wal::open_with(&dir, opts, RealFs::shared(), 4).unwrap();
        assert_eq!(replay.records.iter().map(|r| r.0).collect::<Vec<_>>(), [5, 6]);
        // Snapshot covers everything: tail is sealed and dropped too.
        let (wal, _) = Wal::open_with(&dir, opts, RealFs::shared(), 4).unwrap();
        wal.compact_to(6).unwrap();
        assert_eq!(wal.segment_count(), 1); // one fresh empty segment
        let (wal, replay) = Wal::open_with(&dir, opts, RealFs::shared(), 6).unwrap();
        assert_eq!(replay.records.len(), 0);
        assert_eq!(wal.append(b"after").unwrap(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_bytes_tracks_appends_rolls_and_compaction() {
        let dir = fresh("livebytes");
        let opts = WalOptions {
            segment_bytes: 64,
            sync: SyncPolicy::Always,
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        assert_eq!(wal.live_bytes(), 0);
        assert_eq!(wal.sealed_count(), 0);
        for _ in 0..6 {
            wal.append(&[9u8; 10]).unwrap();
        }
        // Each record is 32 bytes; two per 64-byte segment → 2 sealed.
        assert_eq!(wal.sealed_count(), 2);
        let before = wal.live_bytes();
        assert_eq!(before, 6 * 32);
        // Reopen: accounting must survive recovery. The full tail segment
        // is sealed on reopen (no room left), so a fresh empty tail opens.
        drop(wal);
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        assert_eq!(wal.live_bytes(), before);
        assert_eq!(wal.sealed_count(), 3);
        // Compaction drops the covered bytes; records 5..=6 stay.
        wal.compact_to(4).unwrap();
        assert_eq!(wal.sealed_count(), 1);
        assert_eq!(wal.live_bytes(), 2 * 32);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn broken_log_refuses_appends() {
        use crate::testing::FailFs;
        let dir = fresh("broken");
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::kill_at_write(2, 0);
        let (wal, _) = Wal::open_with(
            &dir,
            WalOptions::default(),
            Arc::new(Arc::clone(&fs)),
            0,
        )
        .unwrap();
        wal.append(b"ok").unwrap();
        assert!(matches!(wal.append(b"boom"), Err(WalError::Io(_))));
        assert!(matches!(wal.append(b"later"), Err(WalError::Broken)));
        assert!(matches!(wal.sync(), Err(WalError::Broken)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
