//! File-layer abstraction the WAL writes through.
//!
//! Everything the log (and the lake's persistence layer) does to disk goes
//! through [`Vfs`], so the deterministic fault-injection harness
//! ([`crate::testing::FailFs`]) can sit between the code under test and the
//! real filesystem and kill the "process" at an exact write. Production
//! code uses [`RealFs`], a thin veneer over `std::fs`.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open file handle supporting appends and durability barriers.
pub trait VFile: Send {
    /// Appends `buf` at the current end of the file.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flushes file contents to stable storage (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
}

/// Filesystem operations the WAL and snapshot writer need.
pub trait Vfs: Send + Sync {
    /// Creates `dir` and all parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Opens `path` for appending, creating it when absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VFile>>;

    /// Creates (truncating) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VFile>>;

    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Lists the files (not directories) directly under `dir`, sorted by
    /// file name.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Truncates `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;

    /// Writes `bytes` to `path` atomically: write + fsync a sibling
    /// temporary file, then rename it over `path`. A crash at any point
    /// leaves either the old file or the new one, never a torn mix —
    /// this is the `persist()` atomicity fix's primitive.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        {
            let mut f = self.create(&tmp)?;
            f.write_all(bytes)?;
            f.sync()?;
        }
        self.rename(&tmp, path)
    }
}

/// The production [`Vfs`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl RealFs {
    /// A shared handle to the real filesystem.
    pub fn shared() -> Arc<dyn Vfs> {
        Arc::new(RealFs)
    }
}

struct RealFile(std::fs::File);

impl VFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VFile>> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(RealFile(f)))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_file() {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)?;
        // Durability of the rename itself: fsync the containing directory
        // (best-effort — not all platforms support directory fsync).
        if let Some(parent) = to.parent() {
            if let Ok(d) = std::fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlake-vfs-{tag}-{}", std::process::id()))
    }

    #[test]
    fn append_read_truncate_round_trip() {
        let dir = tmp("rt");
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let path = dir.join("a.log");
        {
            let mut f = fs.open_append(&path).unwrap();
            f.write_all(b"hello ").unwrap();
            f.write_all(b"world").unwrap();
            f.sync().unwrap();
        }
        assert_eq!(fs.read(&path).unwrap(), b"hello world");
        // Re-open appends at the end.
        {
            let mut f = fs.open_append(&path).unwrap();
            f.write_all(b"!").unwrap();
        }
        assert_eq!(fs.read(&path).unwrap(), b"hello world!");
        fs.truncate(&path, 5).unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        assert_eq!(fs.list(&dir).unwrap(), vec![path.clone()]);
        fs.remove_file(&path).unwrap();
        assert!(!fs.exists(&path));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = tmp("atomic");
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        fs.write_atomic(&path, b"v1").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"v1");
        fs.write_atomic(&path, b"v2 is longer").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"v2 is longer");
        // No temp file left behind.
        assert_eq!(fs.list(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
