//! # mlake-wal — segmented, checksummed write-ahead log
//!
//! Durability substrate for the model lake (DESIGN.md §12). The facade
//! appends every mutating operation here *before* touching in-memory
//! state; `ModelLake::open` is snapshot-load + WAL replay; `persist()`
//! is "compact now".
//!
//! The crate is layered bottom-up:
//!
//! * [`record`] — the on-disk frame: fixed 22-byte header (magic,
//!   format version, payload length, LSN, CRC32C) + payload.
//! * [`vfs`] — the file-layer seam ([`Vfs`]/[`VFile`]) everything writes
//!   through, so the fault-injection harness can crash the "process" at
//!   an exact write.
//! * [`Wal`] — the writer: LSN-stamped appends, 4 MiB segment roll-over,
//!   fsync-on-commit ([`SyncPolicy::Always`]) or count-based group
//!   commit ([`SyncPolicy::Batch`]), and [`Wal::compact_to`] for folding
//!   snapshotted prefixes away.
//! * [`Recovery`] — the reader: replays to the last valid record,
//!   truncates torn tails (CRC-detected), surfaces sealed-segment
//!   corruption as a typed error, enforces LSN continuity.
//! * [`testing`] — [`testing::FailFs`], the deterministic crash
//!   injector behind the recovery test matrix.
//!
//! Zero external dependencies; instrumented with `mlake-obs`
//! (`wal.append` / `wal.fsync` / `wal.replay` / `wal.compact` spans,
//! `wal.bytes` counter, `wal.segments` gauge).

pub mod record;
pub mod recovery;
pub mod testing;
pub mod vfs;
#[allow(clippy::module_inception)]
pub mod wal;

pub use record::{crc32c, Lsn, TornReason};
pub use recovery::{Recovery, Replay, Torn};
pub use vfs::{RealFs, VFile, Vfs};
pub use wal::{SyncPolicy, Wal, WalOptions, DEFAULT_SEGMENT_BYTES};

pub(crate) use wal::SegMeta;

/// Errors the log can surface.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A segment that must be intact (anything but the newest segment's
    /// tail) failed to decode — history has been damaged in place.
    Corrupt {
        /// Segment file holding the bad bytes.
        segment: std::path::PathBuf,
        /// Byte offset of the first undecodable record.
        offset: u64,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A previous append or sync on this writer failed, leaving the
    /// on-disk suffix in an unknown state; the log refuses further
    /// appends until reopened (which re-runs recovery).
    Broken,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "wal corruption in {} at byte {offset}: {detail}",
                segment.display()
            ),
            WalError::Broken => {
                f.write_str("wal is broken after an earlier write failure; reopen to recover")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let io: WalError = std::io::Error::other("disk gone").into();
        assert!(io.to_string().contains("disk gone"));
        assert!(std::error::Error::source(&io).is_some());

        let c = WalError::Corrupt {
            segment: "00000000000000000001.wal".into(),
            offset: 44,
            detail: "crc mismatch".into(),
        };
        let msg = c.to_string();
        assert!(msg.contains("byte 44") && msg.contains("crc mismatch"), "{msg}");

        assert!(WalError::Broken.to_string().contains("reopen"));
    }
}
