//! On-disk record format of the write-ahead log.
//!
//! Every record is framed with a fixed 22-byte header followed by the
//! payload, all integers little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic      b"MLWA"
//! 4       2     version    format version (currently 1)
//! 6       4     len        payload length in bytes
//! 10      8     lsn        log sequence number (1-based, dense)
//! 18      4     crc        CRC32C over lsn (8 LE bytes) ++ payload
//! 22      len   payload    opaque bytes (the caller's serialized op)
//! ```
//!
//! The CRC covers the LSN as well as the payload so a bit flip in either
//! is caught; the magic + version guard against mis-framing after a torn
//! write corrupted the preceding record's `len`. Decoding classifies any
//! malformed suffix as a *torn tail* — the recovery reader truncates it
//! when it is the physical end of the newest segment, and reports hard
//! corruption when it is not.

/// Log sequence number. 1-based and dense: the n-th record ever appended
/// to a log carries LSN n, across segment boundaries and compactions.
pub type Lsn = u64;

/// Record magic bytes.
pub const MAGIC: [u8; 4] = *b"MLWA";

/// Record format version.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 22;

/// Software CRC32C (Castagnoli, reflected polynomial 0x82F63B78) —
/// the checksum iSCSI/ext4 use, implemented from scratch like the
/// workspace's SHA-256. Validated against the RFC 3720 test vector.
pub fn crc32c(data: &[u8]) -> u32 {
    const fn make_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut j = 0;
            while j < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0x82F6_3B78
                } else {
                    crc >> 1
                };
                j += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    static TABLE: [u32; 256] = make_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// CRC32C over the LSN (8 LE bytes) followed by the payload.
fn record_crc(lsn: Lsn, payload: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&lsn.to_le_bytes());
    buf.extend_from_slice(payload);
    crc32c(&buf)
}

/// Encodes one record (header + payload) into a fresh buffer.
pub fn encode(lsn: Lsn, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&record_crc(lsn, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a suffix of a segment failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`HEADER_LEN`] bytes remain.
    TruncatedHeader,
    /// The header promises more payload bytes than the file holds.
    TruncatedPayload,
    /// The magic bytes do not match (mis-framed or overwritten).
    BadMagic,
    /// Unknown format version (bit flip or a future writer).
    BadVersion,
    /// Payload checksum mismatch (torn or bit-flipped write).
    BadCrc,
}

impl std::fmt::Display for TornReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TornReason::TruncatedHeader => "truncated header",
            TornReason::TruncatedPayload => "truncated payload",
            TornReason::BadMagic => "bad magic",
            TornReason::BadVersion => "unknown format version",
            TornReason::BadCrc => "crc mismatch",
        };
        f.write_str(s)
    }
}

/// Result of decoding the record starting at `offset`.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A valid record; the next record (if any) starts at `next`.
    Record {
        /// The record's log sequence number.
        lsn: Lsn,
        /// Borrowed payload bytes.
        payload: &'a [u8],
        /// Byte offset one past this record.
        next: usize,
    },
    /// Clean end of the segment: `offset == buf.len()`.
    End,
    /// The bytes from `offset` on are not a valid record.
    Torn(TornReason),
}

/// Decodes the record at `offset` in `buf`.
pub fn decode(buf: &[u8], offset: usize) -> Decoded<'_> {
    if offset == buf.len() {
        return Decoded::End;
    }
    let rest = &buf[offset..];
    if rest.len() < HEADER_LEN {
        return Decoded::Torn(TornReason::TruncatedHeader);
    }
    if rest[0..4] != MAGIC {
        return Decoded::Torn(TornReason::BadMagic);
    }
    let version = u16::from_le_bytes([rest[4], rest[5]]);
    if version != FORMAT_VERSION {
        return Decoded::Torn(TornReason::BadVersion);
    }
    let len = u32::from_le_bytes([rest[6], rest[7], rest[8], rest[9]]) as usize;
    let lsn = Lsn::from_le_bytes([
        rest[10], rest[11], rest[12], rest[13], rest[14], rest[15], rest[16], rest[17],
    ]);
    let crc = u32::from_le_bytes([rest[18], rest[19], rest[20], rest[21]]);
    if rest.len() - HEADER_LEN < len {
        return Decoded::Torn(TornReason::TruncatedPayload);
    }
    let payload = &rest[HEADER_LEN..HEADER_LEN + len];
    if record_crc(lsn, payload) != crc {
        return Decoded::Torn(TornReason::BadCrc);
    }
    Decoded::Record {
        lsn,
        payload,
        next: offset + HEADER_LEN + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 / common test vector.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn encode_decode_round_trip() {
        let rec = encode(7, b"hello wal");
        assert_eq!(rec.len(), HEADER_LEN + 9);
        match decode(&rec, 0) {
            Decoded::Record { lsn, payload, next } => {
                assert_eq!(lsn, 7);
                assert_eq!(payload, b"hello wal");
                assert_eq!(next, rec.len());
            }
            other => panic!("expected record, got {other:?}"),
        }
        assert_eq!(decode(&rec, rec.len()), Decoded::End);
    }

    #[test]
    fn empty_payload_round_trips() {
        let rec = encode(1, b"");
        match decode(&rec, 0) {
            Decoded::Record { lsn, payload, .. } => {
                assert_eq!(lsn, 1);
                assert!(payload.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_records_chain() {
        let mut buf = encode(1, b"a");
        buf.extend_from_slice(&encode(2, b"bb"));
        let Decoded::Record { next, .. } = decode(&buf, 0) else {
            panic!()
        };
        match decode(&buf, next) {
            Decoded::Record { lsn, payload, next } => {
                assert_eq!((lsn, payload), (2, &b"bb"[..]));
                assert_eq!(decode(&buf, next), Decoded::End);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn torn_header_and_payload() {
        let rec = encode(3, b"payload");
        assert_eq!(
            decode(&rec[..10], 0),
            Decoded::Torn(TornReason::TruncatedHeader)
        );
        assert_eq!(
            decode(&rec[..HEADER_LEN + 3], 0),
            Decoded::Torn(TornReason::TruncatedPayload)
        );
    }

    #[test]
    fn bit_flips_are_caught() {
        let rec = encode(3, b"payload");
        // Flip one payload bit.
        let mut flipped = rec.clone();
        flipped[HEADER_LEN + 2] ^= 0x10;
        assert_eq!(decode(&flipped, 0), Decoded::Torn(TornReason::BadCrc));
        // Flip one LSN bit — the CRC covers the LSN too.
        let mut flipped = rec.clone();
        flipped[12] ^= 0x01;
        assert_eq!(decode(&flipped, 0), Decoded::Torn(TornReason::BadCrc));
        // Corrupt the magic.
        let mut flipped = rec.clone();
        flipped[0] = b'X';
        assert_eq!(decode(&flipped, 0), Decoded::Torn(TornReason::BadMagic));
        // Corrupt the version.
        let mut flipped = rec;
        flipped[4] = 0xFF;
        assert_eq!(decode(&flipped, 0), Decoded::Torn(TornReason::BadVersion));
    }
}
