//! Crash recovery: scan segments, replay valid records, truncate torn
//! tails.
//!
//! The invariants the reader enforces (and the crash matrix proves):
//!
//! * **No committed record is lost.** Every record that was fully written
//!   and fsynced decodes cleanly and is replayed.
//! * **Torn tails are dropped, not trusted.** A malformed suffix of the
//!   *newest* segment — truncated header, truncated payload, CRC
//!   mismatch — is physically truncated away. Such bytes can only come
//!   from a crash mid-write, so they were never acknowledged.
//! * **Recovery is idempotent.** After truncation the log decodes
//!   cleanly end-to-end; running recovery again replays the same records
//!   and truncates nothing.
//! * **Sealed corruption is loud.** A bad record in any segment *other
//!   than the newest* cannot be a torn tail (later segments prove later
//!   durable writes), so it is surfaced as [`WalError::Corrupt`] instead
//!   of silently shortening history.

use crate::record::{self, Decoded, Lsn};
use crate::wal::{parse_segment_name, SegMeta};
use crate::vfs::Vfs;
use crate::WalError;
use std::path::Path;
use std::sync::Arc;

/// A torn tail the recovery reader truncated away.
#[derive(Debug, Clone)]
pub struct Torn {
    /// Segment file that held the torn bytes.
    pub segment: std::path::PathBuf,
    /// Valid byte length the segment was truncated to.
    pub valid_len: u64,
    /// Number of bytes dropped.
    pub dropped_bytes: u64,
    /// Why the suffix failed to decode.
    pub reason: record::TornReason,
}

/// Everything recovery found: the records to replay and what (if
/// anything) was truncated.
#[derive(Debug)]
pub struct Replay {
    /// Valid records with LSN strictly greater than the caller's
    /// `base_lsn`, in LSN order.
    pub records: Vec<(Lsn, Vec<u8>)>,
    /// Highest valid LSN seen anywhere in the log (0 when empty). May be
    /// below `base_lsn` right after a compaction.
    pub last_lsn: Lsn,
    /// The torn tail, when one was found and truncated.
    pub torn: Option<Torn>,
    /// Per-segment metadata for the writer to resume from.
    pub(crate) segments: Vec<SegMeta>,
}

/// The recovery reader. Stateless; [`Recovery::run`] does the work.
pub struct Recovery;

impl Recovery {
    /// Scans the segments in `dir`, truncates a torn tail in the newest
    /// segment, and returns the records with LSN `> base_lsn`.
    ///
    /// Enforces LSN continuity: records must be dense and ascending
    /// across segment boundaries, and a non-empty segment's first record
    /// must carry the LSN its file name promises. Violations mean
    /// history was lost or reordered and surface as
    /// [`WalError::Corrupt`].
    pub fn run(dir: &Path, vfs: &Arc<dyn Vfs>, base_lsn: Lsn) -> Result<Replay, WalError> {
        let _span = mlake_obs::span("wal.replay");
        let paths: Vec<_> = match vfs.list(dir) {
            Ok(paths) => paths
                .into_iter()
                .filter(|p| parse_segment_name(p).is_some())
                .collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        let mut records = Vec::new();
        let mut segments = Vec::new();
        let mut torn = None;
        let mut last_lsn: Lsn = 0;
        let mut expected_next: Option<Lsn> = None;
        let mut replayed_bytes: u64 = 0;

        let n = paths.len();
        for (i, path) in paths.into_iter().enumerate() {
            let is_last = i + 1 == n;
            let first = parse_segment_name(&path)
                .unwrap_or_default();
            let buf = vfs.read(&path)?;
            replayed_bytes += buf.len() as u64;

            let mut offset = 0usize;
            let mut seg_last: Option<Lsn> = None;
            loop {
                match record::decode(&buf, offset) {
                    Decoded::End => break,
                    Decoded::Record { lsn, payload, next } => {
                        if seg_last.is_none() && lsn != first {
                            return Err(WalError::Corrupt {
                                segment: path.clone(),
                                offset: offset as u64,
                                detail: format!(
                                    "first record has lsn {lsn}, file name promises {first}"
                                ),
                            });
                        }
                        if let Some(expected) = expected_next {
                            if lsn != expected {
                                return Err(WalError::Corrupt {
                                    segment: path.clone(),
                                    offset: offset as u64,
                                    detail: format!(
                                        "lsn gap: expected {expected}, found {lsn}"
                                    ),
                                });
                            }
                        }
                        if lsn > base_lsn {
                            records.push((lsn, payload.to_vec()));
                        }
                        last_lsn = lsn;
                        seg_last = Some(lsn);
                        expected_next = Some(lsn + 1);
                        offset = next;
                    }
                    Decoded::Torn(reason) => {
                        if !is_last {
                            // Later segments exist, so durable writes
                            // happened after these bytes: not a tail.
                            return Err(WalError::Corrupt {
                                segment: path.clone(),
                                offset: offset as u64,
                                detail: format!("{reason} in sealed segment"),
                            });
                        }
                        let dropped = (buf.len() - offset) as u64;
                        vfs.truncate(&path, offset as u64)?;
                        torn = Some(Torn {
                            segment: path.clone(),
                            valid_len: offset as u64,
                            dropped_bytes: dropped,
                            reason,
                        });
                        break;
                    }
                }
            }

            let len = torn
                .as_ref()
                .filter(|t| t.segment == path)
                .map_or(buf.len() as u64, |t| t.valid_len);
            segments.push(SegMeta {
                path,
                first,
                last: seg_last,
                len,
            });
        }

        mlake_obs::histogram!("wal.replay.bytes").record(replayed_bytes);
        Ok(Replay {
            records,
            last_lsn,
            torn,
            segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::FailFs;
    use crate::vfs::RealFs;
    use crate::wal::{segment_name, SyncPolicy, Wal, WalOptions};
    use crate::record::HEADER_LEN;
    use std::path::PathBuf;

    fn fresh(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mlake-recovery-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_log(dir: &Path, n: u64) {
        let (wal, _) = Wal::open(dir, WalOptions::default()).unwrap();
        for i in 1..=n {
            wal.append(format!("record-{i}").as_bytes()).unwrap();
        }
    }

    #[test]
    fn empty_dir_recovers_to_nothing() {
        let dir = fresh("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let replay = Recovery::run(&dir, &RealFs::shared(), 0).unwrap();
        assert_eq!(replay.records.len(), 0);
        assert_eq!(replay.last_lsn, 0);
        assert!(replay.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = fresh("torn");
        write_log(&dir, 3);
        let seg = dir.join(segment_name(1));
        // Tear the last record: chop 4 bytes off its payload.
        FailFs::truncate_tail(&seg, 4).unwrap();
        let before = std::fs::metadata(&seg).unwrap().len();

        let replay = Recovery::run(&dir, &RealFs::shared(), 0).unwrap();
        assert_eq!(replay.records.iter().map(|r| r.0).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(replay.last_lsn, 2);
        let torn = replay.torn.expect("tail must be reported");
        assert_eq!(torn.reason, record::TornReason::TruncatedPayload);
        assert_eq!(torn.valid_len + torn.dropped_bytes, before);

        // Second run: same records, nothing further to truncate.
        let again = Recovery::run(&dir, &RealFs::shared(), 0).unwrap();
        assert_eq!(again.records, replay.records);
        assert!(again.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_tail_drops_the_suffix() {
        let dir = fresh("flip");
        write_log(&dir, 3);
        let seg = dir.join(segment_name(1));
        // Records are 22 + 8 = 30 bytes ("record-N"); flip a payload bit
        // of record 2.
        FailFs::flip_bit(&seg, 30 + HEADER_LEN + 3, 2).unwrap();
        let replay = Recovery::run(&dir, &RealFs::shared(), 0).unwrap();
        // Record 2's CRC fails, so records 2 and 3 are both dropped —
        // the log cannot trust anything past the first bad byte.
        assert_eq!(replay.records.iter().map(|r| r.0).collect::<Vec<_>>(), [1]);
        let torn = replay.torn.expect("flip must be detected");
        assert_eq!(torn.reason, record::TornReason::BadCrc);
        assert_eq!(torn.valid_len, 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_sealed_segment_is_a_hard_error() {
        let dir = fresh("sealed");
        let opts = WalOptions {
            segment_bytes: 64,
            sync: SyncPolicy::Always,
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        for _ in 0..4 {
            wal.append(&[5u8; 10]).unwrap(); // 32-byte records, 2 per segment
        }
        drop(wal);
        // Corrupt the FIRST segment — not the newest.
        FailFs::flip_bit(&dir.join(segment_name(1)), HEADER_LEN + 1, 0).unwrap();
        let err = Recovery::run(&dir, &RealFs::shared(), 0).unwrap_err();
        match err {
            WalError::Corrupt { segment, .. } => {
                assert_eq!(segment, dir.join(segment_name(1)));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lsn_gap_is_detected() {
        let dir = fresh("gap");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-craft a segment whose records skip LSN 2.
        let mut buf = record::encode(1, b"one");
        buf.extend_from_slice(&record::encode(3, b"three"));
        std::fs::write(dir.join(segment_name(1)), &buf).unwrap();
        let err = Recovery::run(&dir, &RealFs::shared(), 0).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn misnamed_segment_is_detected() {
        let dir = fresh("misnamed");
        std::fs::create_dir_all(&dir).unwrap();
        // File says first LSN is 5 but the record inside carries 1.
        std::fs::write(dir.join(segment_name(5)), record::encode(1, b"one")).unwrap();
        let err = Recovery::run(&dir, &RealFs::shared(), 0).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_segment_files_are_ignored() {
        let dir = fresh("ignore");
        write_log(&dir, 2);
        std::fs::write(dir.join("manifest.json"), b"{}").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        let replay = Recovery::run(&dir, &RealFs::shared(), 0).unwrap();
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_at_every_write_offset_never_loses_a_committed_record() {
        // WAL-level crash matrix: drive the same append script, killing
        // at every write offset with a few torn-prefix lengths, and
        // check every acked append survives recovery.
        let script: Vec<Vec<u8>> = (1..=8u64)
            .map(|i| format!("payload-{i}-{}", "x".repeat(i as usize)).into_bytes())
            .collect();
        let opts = WalOptions {
            segment_bytes: 96, // force several roll-overs
            sync: SyncPolicy::Always,
        };

        // Pass 1: count writes.
        let dir = fresh("matrix-count");
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::counting();
        {
            let (wal, _) =
                Wal::open_with(&dir, opts, Arc::new(Arc::clone(&fs)), 0).unwrap();
            for p in &script {
                wal.append(p).unwrap();
            }
        }
        let total_writes = fs.writes();
        assert!(total_writes >= script.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();

        // Pass 2: sweep every kill point × torn prefix length.
        for kill in 1..=total_writes {
            for torn_bytes in [0usize, 1, 7] {
                let dir = fresh(&format!("matrix-{kill}-{torn_bytes}"));
                std::fs::create_dir_all(&dir).unwrap();
                let fs = FailFs::kill_at_write(kill, torn_bytes);
                let mut acked: Vec<(Lsn, Vec<u8>)> = Vec::new();
                {
                    let (wal, _) =
                        Wal::open_with(&dir, opts, Arc::new(Arc::clone(&fs)), 0)
                            .unwrap();
                    for p in &script {
                        match wal.append(p) {
                            Ok(lsn) => acked.push((lsn, p.clone())),
                            Err(_) => break,
                        }
                    }
                }
                assert!(fs.is_dead(), "kill point {kill} never fired");

                let replay = Recovery::run(&dir, &RealFs::shared(), 0).unwrap();
                // Every acknowledged record must be recovered, in order,
                // possibly followed by the unacked torn record's bytes —
                // never fewer. With fsync=always a record is acked only
                // once durable, so recovered >= acked, and the prefix
                // must match acked exactly.
                assert!(
                    replay.records.len() >= acked.len(),
                    "kill {kill}/{torn_bytes}: lost committed records \
                     ({} recovered < {} acked)",
                    replay.records.len(),
                    acked.len()
                );
                assert_eq!(
                    &replay.records[..acked.len()],
                    &acked[..],
                    "kill {kill}/{torn_bytes}: committed prefix differs"
                );
                // At most the one in-flight record can exceed acked.
                assert!(replay.records.len() <= acked.len() + 1);

                // Idempotence: a second recovery is a clean no-op.
                let again = Recovery::run(&dir, &RealFs::shared(), 0).unwrap();
                assert_eq!(again.records, replay.records);
                assert!(again.torn.is_none());
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}
