//! Deterministic fault-injection harness (`FailFs`).
//!
//! [`FailFs`] wraps the real filesystem and kills the process-under-test —
//! in the simulated sense: every subsequent filesystem operation fails —
//! at an exact point in the write stream:
//!
//! * **kill at the Nth write**, optionally letting a *torn prefix* of that
//!   write reach the file first (simulating a partial page flush);
//! * **kill at the Nth fsync**, after the data of preceding writes has
//!   already reached the file (simulating the
//!   written-but-not-acknowledged window group commit exposes).
//!
//! The crash-recovery matrix drives the same mutation script once with a
//! counting-only `FailFs` to learn the total number of writes W, then
//! replays it W times, killing at every write offset in turn and asserting
//! the reopened state equals the committed prefix. Because the plan is a
//! plain counter, every run is bit-deterministic.
//!
//! Post-hoc corruption helpers ([`FailFs::flip_bit`],
//! [`FailFs::truncate_tail`]) mutate files directly for the
//! CRC-detection tests.

use crate::vfs::{RealFs, VFile, Vfs};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Where the injected crash happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillPoint {
    /// Never crash; count operations only.
    None,
    /// Crash at the 1-based Nth `write_all`, persisting only the first
    /// `torn_bytes` bytes of that write.
    Write { nth: u64, torn_bytes: usize },
    /// Crash at the 1-based Nth `sync`, after the data already reached
    /// the file (written but never acknowledged durable).
    Sync { nth: u64 },
    /// Crash at the 1-based Nth `remove_file`, before it deletes anything
    /// (simulating a crash mid-GC: some files already gone, this one not).
    Remove { nth: u64 },
}

/// A [`Vfs`] that injects one deterministic crash, after which every
/// operation fails with an `injected crash` I/O error.
pub struct FailFs {
    inner: RealFs,
    writes: AtomicU64,
    syncs: AtomicU64,
    removes: AtomicU64,
    kill: KillPoint,
    dead: AtomicBool,
}

fn crashed() -> io::Error {
    io::Error::other("injected crash (FailFs)")
}

impl FailFs {
    /// Counting-only mode: behaves exactly like [`RealFs`] while counting
    /// writes and syncs. Used to measure a script's write count before
    /// sweeping kill points over it.
    pub fn counting() -> Arc<FailFs> {
        Arc::new(FailFs {
            inner: RealFs,
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            kill: KillPoint::None,
            dead: AtomicBool::new(false),
        })
    }

    /// Crashes at the `nth` (1-based) `write_all`; the first `torn_bytes`
    /// bytes of that write still reach the file (0 = nothing lands).
    pub fn kill_at_write(nth: u64, torn_bytes: usize) -> Arc<FailFs> {
        Arc::new(FailFs {
            inner: RealFs,
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            kill: KillPoint::Write { nth, torn_bytes },
            dead: AtomicBool::new(false),
        })
    }

    /// Crashes at the `nth` (1-based) `sync`, after the preceding writes'
    /// data already reached the file.
    pub fn kill_at_sync(nth: u64) -> Arc<FailFs> {
        Arc::new(FailFs {
            inner: RealFs,
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            kill: KillPoint::Sync { nth },
            dead: AtomicBool::new(false),
        })
    }

    /// Crashes at the `nth` (1-based) `remove_file`, before that file is
    /// deleted. Earlier removals already happened — the exact window a
    /// crash mid-GC leaves behind.
    pub fn kill_at_remove(nth: u64) -> Arc<FailFs> {
        Arc::new(FailFs {
            inner: RealFs,
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            kill: KillPoint::Remove { nth },
            dead: AtomicBool::new(false),
        })
    }

    /// Number of `write_all` calls observed so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Number of `sync` calls observed so far.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    /// Number of `remove_file` calls observed so far.
    pub fn removes(&self) -> u64 {
        self.removes.load(Ordering::SeqCst)
    }

    /// Whether the injected crash has fired.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.is_dead() {
            Err(crashed())
        } else {
            Ok(())
        }
    }

    /// Flips bit `bit` (0–7) of byte `byte` of the file at `path`.
    pub fn flip_bit(path: &Path, byte: usize, bit: u8) -> io::Result<()> {
        let mut bytes = std::fs::read(path)?;
        if byte >= bytes.len() {
            return Err(io::Error::other(format!(
                "flip_bit: byte {byte} out of range ({} bytes)",
                bytes.len()
            )));
        }
        bytes[byte] ^= 1u8 << (bit & 7);
        std::fs::write(path, bytes)
    }

    /// Removes the last `n` bytes of the file at `path` (physical tail
    /// truncation, as a crashed kernel might leave it).
    pub fn truncate_tail(path: &Path, n: u64) -> io::Result<()> {
        let len = std::fs::metadata(path)?.len();
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len.saturating_sub(n))
    }
}

struct FailFile {
    fs: Arc<FailFs>,
    inner: Box<dyn VFile>,
}

impl VFile for FailFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.fs.check_alive()?;
        let n = self.fs.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if let KillPoint::Write { nth, torn_bytes } = self.fs.kill {
            if n == nth {
                let keep = torn_bytes.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                self.fs.dead.store(true, Ordering::SeqCst);
                return Err(crashed());
            }
        }
        self.inner.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.fs.check_alive()?;
        let n = self.fs.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        if let KillPoint::Sync { nth } = self.fs.kill {
            if n == nth {
                self.fs.dead.store(true, Ordering::SeqCst);
                return Err(crashed());
            }
        }
        self.inner.sync()
    }
}

/// All [`Vfs`] entry points check liveness first, so after the kill point
/// the whole filesystem is inert — the closest in-process equivalent of
/// the process being gone.
impl Vfs for Arc<FailFs> {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.create_dir_all(dir)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VFile>> {
        self.check_alive()?;
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FailFile {
            fs: Arc::clone(self),
            inner,
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VFile>> {
        self.check_alive()?;
        let inner = self.inner.create(path)?;
        Ok(Box::new(FailFile {
            fs: Arc::clone(self),
            inner,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        self.inner.read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.check_alive()?;
        self.inner.list(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        let n = self.removes.fetch_add(1, Ordering::SeqCst) + 1;
        if let KillPoint::Remove { nth } = self.kill {
            if n == nth {
                self.dead.store(true, Ordering::SeqCst);
                return Err(crashed());
            }
        }
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.check_alive()?;
        self.inner.truncate(path, len)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.is_dead() && self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlake-failfs-{tag}-{}", std::process::id()))
    }

    #[test]
    fn counting_mode_is_transparent() {
        let dir = tmp("count");
        let _ = std::fs::remove_dir_all(&dir);
        let fs = FailFs::counting();
        fs.create_dir_all(&dir).unwrap();
        let mut f = fs.open_append(&dir.join("x")).unwrap();
        f.write_all(b"ab").unwrap();
        f.write_all(b"cd").unwrap();
        f.sync().unwrap();
        assert_eq!((fs.writes(), fs.syncs()), (2, 1));
        assert!(!fs.is_dead());
        assert_eq!(fs.read(&dir.join("x")).unwrap(), b"abcd");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_at_write_leaves_torn_prefix_and_kills_everything_after() {
        let dir = tmp("kill");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::kill_at_write(2, 3);
        let mut f = fs.open_append(&dir.join("x")).unwrap();
        f.write_all(b"first|").unwrap();
        let err = f.write_all(b"second").unwrap_err();
        assert!(err.to_string().contains("injected crash"), "{err}");
        assert!(fs.is_dead());
        // First write intact, second torn to its 3-byte prefix.
        assert_eq!(std::fs::read(dir.join("x")).unwrap(), b"first|sec");
        // Every later operation fails, on old and new handles alike.
        assert!(f.write_all(b"more").is_err());
        assert!(f.sync().is_err());
        assert!(fs.open_append(&dir.join("y")).is_err());
        assert!(fs.rename(&dir.join("x"), &dir.join("z")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_at_write_with_zero_torn_bytes_writes_nothing() {
        let dir = tmp("zero");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::kill_at_write(1, 0);
        let mut f = fs.open_append(&dir.join("x")).unwrap();
        assert!(f.write_all(b"gone").is_err());
        assert_eq!(std::fs::read(dir.join("x")).unwrap(), b"");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_at_sync_keeps_written_data() {
        let dir = tmp("sync");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::kill_at_sync(1);
        let mut f = fs.open_append(&dir.join("x")).unwrap();
        f.write_all(b"landed").unwrap();
        assert!(f.sync().is_err());
        assert!(fs.is_dead());
        // The data reached the file even though the sync "crashed".
        assert_eq!(std::fs::read(dir.join("x")).unwrap(), b"landed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_helpers() {
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x");
        std::fs::write(&path, b"\x00\x00\x00").unwrap();
        FailFs::flip_bit(&path, 1, 7).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"\x00\x80\x00");
        FailFs::truncate_tail(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"\x00");
        assert!(FailFs::flip_bit(&path, 9, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
