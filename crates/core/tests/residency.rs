//! Lazy blob residency and refcounting GC (DESIGN.md §15).
//!
//! A v3 lake opens from the superblock and segment chain alone: model
//! blobs stay on disk until first touch, page in through the bounded
//! resident set (`LakeConfig::resident_bytes`), and unreachable files are
//! reclaimed by `ModelLake::gc` — observable via the `store.fault` /
//! `store.evict` / `gc.orphans` counters and the `store.resident.bytes`
//! gauge when `MLAKE_OBS=on`.

use mlake_core::{LakeConfig, ModelLake};
use mlake_fingerprint::FingerprintKind;
use mlake_nn::{Activation, Mlp, Model};
use mlake_tensor::{init::Init, Pcg64};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mlake-residency-{tag}-{}", std::process::id()))
}

fn model(seed: u64) -> Model {
    let mut rng = Pcg64::new(seed);
    Model::Mlp(Mlp::new(vec![8, 4, 3], Activation::Relu, Init::HeNormal, &mut rng).unwrap())
}

fn counter(name: &str) -> u64 {
    mlake_obs::registry().snapshot().counter(name)
}

#[test]
fn lazy_open_pages_blobs_in_on_first_touch() {
    let dir = tmp("lazy");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
        for i in 0..3u64 {
            lake.ingest_model(&format!("r-{i}"), &model(40 + i), None).unwrap();
        }
        lake.persist(&dir).unwrap();
    }

    let lake = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    // The open read superblock + segments only: nothing is resident and
    // the catalogue still answers from segment metadata.
    assert_eq!(lake.resident_bytes(), 0, "open paged blobs in eagerly");
    assert_eq!(lake.len(), 3);
    assert_eq!(lake.model_names().len(), 3);
    assert_eq!(lake.resident_bytes(), 0, "catalogue reads touched blobs");

    // First artifact touch faults exactly that blob in, bit-exact.
    let faults_before = counter("store.fault");
    assert_eq!(lake.model("r-0").unwrap().flat_params(), model(40).flat_params());
    assert!(lake.resident_bytes() > 0, "fault-in left nothing resident");
    if mlake_obs::enabled() {
        assert!(counter("store.fault") > faults_before, "no store.fault recorded");
    }
    // Search still works on the lazily restored indexes.
    let hits = lake
        .similar("r-0", FingerprintKind::Hybrid, 2)
        .unwrap();
    assert!(!hits.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resident_cap_bounds_memory_and_keeps_reads_exact() {
    let dir = tmp("cap");
    let _ = std::fs::remove_dir_all(&dir);
    // A 1-byte cap forces every durable blob straight back out of memory;
    // reads must keep faulting in correctly regardless.
    let config = LakeConfig::builder().resident_bytes(1).build().unwrap();
    let evicts_before = counter("store.evict");
    let lake = ModelLake::create(&dir, config.clone()).unwrap();
    for i in 0..4u64 {
        lake.ingest_model(&format!("c-{i}"), &model(60 + i), None).unwrap();
    }
    assert_eq!(lake.resident_bytes(), 0, "durable blobs not evicted to cap");
    if mlake_obs::enabled() {
        assert!(counter("store.evict") > evicts_before, "no store.evict recorded");
    }
    // Repeated reads re-fault and stay bit-exact.
    for _ in 0..2 {
        for i in 0..4u64 {
            assert_eq!(
                lake.model(format!("c-{i}").as_str()).unwrap().flat_params(),
                model(60 + i).flat_params()
            );
        }
    }
    assert_eq!(lake.resident_bytes(), 0, "reads left blobs resident past the cap");
    drop(lake);
    let reopened = ModelLake::open(&dir, config).unwrap();
    assert_eq!(reopened.model("c-3").unwrap().flat_params(), model(63).flat_params());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_collects_orphan_blobs_and_counts_them() {
    let dir = tmp("orphan");
    let _ = std::fs::remove_dir_all(&dir);
    let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
    lake.ingest_model("kept-a", &model(80), None).unwrap();
    lake.ingest_model("kept-b", &model(81), None).unwrap();
    lake.persist(&dir).unwrap();

    // An orphan blob (valid digest name, referenced by nothing) and a
    // stranded temp file — the leak `gc()` exists to stop.
    let orphan = dir.join("blobs").join(format!("{}.blob", "ef".repeat(32)));
    std::fs::write(&orphan, b"unreferenced").unwrap();
    std::fs::write(dir.join("blobs").join("leftover.tmp"), b"tmp").unwrap();

    let orphans_before = counter("gc.orphans");
    let report = lake.gc().unwrap();
    assert_eq!(report.orphan_blobs, 1, "orphan blob not collected: {report:?}");
    assert_eq!(report.temp_files, 1, "temp file not collected: {report:?}");
    assert!(report.bytes_reclaimed > 0);
    assert!(!orphan.exists(), "orphan blob still on disk after gc");
    if mlake_obs::enabled() {
        assert_eq!(counter("gc.orphans"), orphans_before + 1, "gc.orphans did not advance");
    }

    // Live blobs survived; a second pass finds nothing.
    assert_eq!(lake.model("kept-a").unwrap().flat_params(), model(80).flat_params());
    let idle = lake.gc().unwrap();
    assert_eq!(idle.files_removed(), 0, "idle gc removed files: {idle:?}");
    drop(lake);
    let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    assert_eq!(reopened.len(), 2);
    assert_eq!(reopened.model("kept-b").unwrap().flat_params(), model(81).flat_params());
    std::fs::remove_dir_all(&dir).unwrap();
}
