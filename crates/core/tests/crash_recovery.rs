//! Crash-recovery matrix for the durable lake (DESIGN.md §12).
//!
//! A fixed mutation script drives a durable lake through the
//! fault-injection filesystem (`mlake_wal::testing::FailFs`), killing the
//! process at *every* write (and every fsync) in turn. After each
//! simulated crash the lake is reopened with the real filesystem and must
//! satisfy the durability contract:
//!
//! * **no acknowledged op is lost** — every mutation that returned `Ok`
//!   before the crash is present after recovery;
//! * **at most one in-flight op appears** — a record can become durable
//!   even though the caller saw an error (crash after the write, before
//!   the ack), but never more than the single op that was in flight;
//! * **recovery is idempotent** — reopening twice yields bit-identical
//!   event logs and model artifacts;
//! * **recovered state is bit-identical** to an ephemeral lake replaying
//!   the same op prefix (events, names, digests and parameters).

use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::{LakeError, ModelId};
use mlake_datagen::{Dataset, DatasetId, DatasetKind, Domain};
use mlake_nn::{Activation, Mlp, Model};
use mlake_tensor::{init::Init, Pcg64};
use mlake_wal::testing::FailFs;
use mlake_wal::Vfs;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mlake-crash-{tag}-{}", std::process::id()))
}

fn model(seed: u64) -> Model {
    let mut rng = Pcg64::new(seed);
    Model::Mlp(Mlp::new(vec![8, 4, 3], Activation::Relu, Init::HeNormal, &mut rng).unwrap())
}

fn dataset() -> Dataset {
    Dataset {
        id: DatasetId(0),
        name: "crash-corpus-v1".into(),
        domain: Domain::new("legal"),
        kind: DatasetKind::Corpus(vec![1, 2, 3, 4, 5, 6, 7, 8]),
        parent: None,
        derived_by: None,
    }
}

fn benchmark() -> mlake_benchlab::Benchmark {
    mlake_benchlab::Benchmark::perplexity("crash-bench", vec![1, 2, 3, 4])
}

/// The mutation script: one entry per durable facade op, applied in order.
const N_OPS: usize = 7;

fn apply_op(lake: &ModelLake, i: usize) -> Result<(), LakeError> {
    match i {
        0 => lake.register_dataset(dataset()),
        1 => lake.register_benchmark(benchmark(), Some("legal".into())),
        2 => lake.ingest_model("m-alpha", &model(1), None).map(|_| ()),
        3 => lake.ingest_model("m-beta", &model(2), None).map(|_| ()),
        4 => {
            let mut card = lake.entry(ModelId(0))?.card;
            card.notes = "revised after review".into();
            lake.update_card(ModelId(0), card)
        }
        5 => lake.rebuild_version_graph(None).map(|_| ()),
        6 => lake.ingest_model("m-gamma", &model(3), None).map(|_| ()),
        _ => unreachable!("script has {N_OPS} ops"),
    }
}

/// Reference states: events + (name, params) per model after each op
/// prefix, computed on an ephemeral lake (no WAL, no disk).
fn reference_states() -> Vec<(Vec<mlake_core::event::Event>, Vec<(String, Vec<f32>)>)> {
    let lake = ModelLake::new(LakeConfig::default());
    let mut states = vec![(lake.events(), vec![])];
    for i in 0..N_OPS {
        apply_op(&lake, i).unwrap();
        let models = lake
            .model_names()
            .into_iter()
            .map(|n| {
                let params = lake.model(n.as_str()).unwrap().flat_params();
                (n, params)
            })
            .collect();
        states.push((lake.events(), models));
    }
    states
}

fn lake_state(lake: &ModelLake) -> (Vec<mlake_core::event::Event>, Vec<(String, Vec<f32>)>) {
    let models = lake
        .model_names()
        .into_iter()
        .map(|n| {
            let params = lake.model(n.as_str()).unwrap().flat_params();
            (n, params)
        })
        .collect();
    (lake.events(), models)
}

/// Runs the script against a lake created through `fs` with `config`,
/// returning how many ops were acknowledged (`Ok`) before the injected
/// crash. `None` when the create itself died.
fn drive_with(dir: &PathBuf, fs: &Arc<FailFs>, config: LakeConfig) -> Option<usize> {
    let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(fs));
    let lake = ModelLake::create_with(dir, config, vfs).ok()?;
    let mut acked = 0;
    for i in 0..N_OPS {
        if apply_op(&lake, i).is_err() {
            break;
        }
        acked = i + 1;
    }
    Some(acked)
}

fn drive(dir: &PathBuf, fs: &Arc<FailFs>) -> Option<usize> {
    drive_with(dir, fs, LakeConfig::default())
}

/// After a crash with `acked` acknowledged ops, recovery (under `config`)
/// must land on the reference state for `acked` or `acked + 1` ops (the
/// in-flight op may have become durable), and reopening again must change
/// nothing.
fn check_recovered_with(
    dir: &PathBuf,
    acked: usize,
    refs: &[(Vec<mlake_core::event::Event>, Vec<(String, Vec<f32>)>)],
    label: &str,
    config: &LakeConfig,
) {
    let rec = ModelLake::open(dir, config.clone())
        .unwrap_or_else(|e| panic!("{label}: recovery failed after {acked} acked ops: {e}"));
    let got = lake_state(&rec);
    let matched = (acked..=(acked + 1).min(N_OPS)).find(|&m| refs[m] == got);
    assert!(
        matched.is_some(),
        "{label}: recovered state matches neither {acked} nor {} ops \
         (got {} events, expected {} or {})",
        acked + 1,
        got.0.len(),
        refs[acked].0.len(),
        refs[(acked + 1).min(N_OPS)].0.len(),
    );
    drop(rec);
    // Idempotence: a second recovery run is bit-identical.
    let again = ModelLake::open(dir, config.clone())
        .unwrap_or_else(|e| panic!("{label}: second recovery failed: {e}"));
    assert_eq!(lake_state(&again), got, "{label}: recovery is not idempotent");
}

fn check_recovered(dir: &PathBuf, acked: usize, refs: &[(Vec<mlake_core::event::Event>, Vec<(String, Vec<f32>)>)], label: &str) {
    check_recovered_with(dir, acked, refs, label, &LakeConfig::default());
}

#[test]
fn kill_at_every_write_never_loses_an_acked_op() {
    let refs = reference_states();
    // Counting pass: how many writes does the whole script issue?
    let dir = tmp("count-w");
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FailFs::counting();
    assert_eq!(drive(&dir, &fs), Some(N_OPS));
    let total_writes = fs.writes();
    assert!(total_writes > 5, "script issues only {total_writes} writes");
    std::fs::remove_dir_all(&dir).unwrap();

    // Sweep: crash at every write, with rotating torn-prefix lengths.
    for kill in 1..=total_writes {
        let dir = tmp(&format!("kw-{kill}"));
        let _ = std::fs::remove_dir_all(&dir);
        let torn = [0usize, 1, 7][(kill % 3) as usize];
        let fs = FailFs::kill_at_write(kill, torn);
        let acked = drive(&dir, &fs);
        assert!(fs.is_dead(), "kill point {kill} never reached");
        match acked {
            // The create itself crashed: the directory either has no
            // manifest (open fails) or a valid empty snapshot.
            None => {
                if let Ok(rec) = ModelLake::open(&dir, LakeConfig::default()) {
                    assert_eq!(lake_state(&rec), refs[0], "kill {kill}: partial create");
                }
            }
            Some(acked) => check_recovered(&dir, acked, &refs, &format!("kill-write {kill}")),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn kill_at_every_fsync_never_loses_an_acked_op() {
    let refs = reference_states();
    let dir = tmp("count-s");
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FailFs::counting();
    assert_eq!(drive(&dir, &fs), Some(N_OPS));
    let total_syncs = fs.syncs();
    assert!(total_syncs > 5, "script issues only {total_syncs} syncs");
    std::fs::remove_dir_all(&dir).unwrap();

    for kill in 1..=total_syncs {
        let dir = tmp(&format!("ks-{kill}"));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = FailFs::kill_at_sync(kill);
        let acked = drive(&dir, &fs);
        assert!(fs.is_dead(), "sync kill point {kill} never reached");
        match acked {
            None => {
                if let Ok(rec) = ModelLake::open(&dir, LakeConfig::default()) {
                    assert_eq!(lake_state(&rec), refs[0], "sync kill {kill}: partial create");
                }
            }
            Some(acked) => check_recovered(&dir, acked, &refs, &format!("kill-sync {kill}")),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The sharded + background-compaction configuration exercised by the
/// scatter-gather sweep below: four sub-shards per index and a compaction
/// policy aggressive enough that the background thread persists after
/// essentially every append.
fn sharded_bg_config() -> LakeConfig {
    LakeConfig::builder()
        .shards(4)
        .background_compaction(mlake_core::CompactionPolicy {
            wal_bytes: 1,
            wal_segments: 0,
        })
        .build()
        .unwrap()
}

/// Same sweep as `kill_at_every_write_never_loses_an_acked_op`, but with
/// sharded indexes and the background compactor racing the script for the
/// write budget. The compactor consumes FailFs writes on its own schedule,
/// so which thread hits a given kill point is nondeterministic — some kill
/// points may even go unreached when compaction persists less than in the
/// counting pass — which is why this sweep does **not** assert
/// `fs.is_dead()`. The durability contract is unchanged: every acked op
/// recovers bit-for-bit, at most one in-flight op appears, recovery is
/// idempotent. Reference states are reused verbatim — shard count never
/// affects events or model bytes.
#[test]
fn sharded_bg_compaction_kill_at_every_write_recovers_exactly() {
    let refs = reference_states();
    let dir = tmp("count-sb");
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FailFs::counting();
    assert_eq!(drive_with(&dir, &fs, sharded_bg_config()), Some(N_OPS));
    let total_writes = fs.writes();
    assert!(total_writes > 5, "script issues only {total_writes} writes");
    std::fs::remove_dir_all(&dir).unwrap();

    for kill in 1..=total_writes {
        let dir = tmp(&format!("ksb-{kill}"));
        let _ = std::fs::remove_dir_all(&dir);
        let torn = [0usize, 1, 7][(kill % 3) as usize];
        let fs = FailFs::kill_at_write(kill, torn);
        let acked = drive_with(&dir, &fs, sharded_bg_config());
        match acked {
            None => {
                if let Ok(rec) = ModelLake::open(&dir, sharded_bg_config()) {
                    assert_eq!(lake_state(&rec), refs[0], "sb kill {kill}: partial create");
                }
            }
            Some(acked) => {
                check_recovered_with(
                    &dir,
                    acked,
                    &refs,
                    &format!("sharded-bg kill-write {kill}"),
                    &sharded_bg_config(),
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Recursively copies a lake directory (template → scratch) so each GC
/// sweep iteration starts from the identical garbage-bearing state.
fn copy_tree(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// Builds a lake whose directory carries every kind of garbage GC
/// collects: dead segments (a major fold replaced the first chain), an
/// orphan blob, and stranded temp files. Returns the expected state.
fn build_garbage_template(dir: &PathBuf) -> (Vec<mlake_core::event::Event>, Vec<(String, Vec<f32>)>) {
    let _ = std::fs::remove_dir_all(dir);
    let lake = ModelLake::create(dir, LakeConfig::default()).unwrap();
    // One persist per ingest grows the segment chain past the fold
    // threshold; the fold strands the replaced chain on disk for GC.
    for i in 0..10u64 {
        lake.ingest_model(&format!("g-{i}"), &model(20 + i), None).unwrap();
        lake.persist(dir).unwrap();
    }
    let state = lake_state(&lake);
    drop(lake);
    let orphan = "cd".repeat(32);
    std::fs::write(dir.join("blobs").join(format!("{orphan}.blob")), b"stray").unwrap();
    std::fs::write(dir.join("blobs").join("stranded.tmp"), b"tmp").unwrap();
    std::fs::write(dir.join("segs").join("stranded.tmp"), b"tmp").unwrap();
    state
}

/// GC deletion order: killing the process at *every* `remove_file` in a
/// collection pass must leave the lake fully recoverable — GC deletes
/// only files the live superblock can no longer reach, so no prefix of
/// its deletions can lose state. After a completed GC the reopened lake
/// is bit-identical (events, names, parameters).
#[test]
fn gc_crash_at_every_remove_preserves_full_state() {
    let template = tmp("gc-template");
    let reference = build_garbage_template(&template);

    // Counting pass: how many files does one full GC remove?
    let dir = tmp("gc-count");
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(&template, &dir);
    let fs = FailFs::counting();
    let report = {
        let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fs));
        let lake = ModelLake::open_with(&dir, LakeConfig::default(), vfs).unwrap();
        lake.gc().unwrap()
    };
    let total_removes = fs.removes();
    assert!(report.orphan_blobs >= 1, "orphan blob not collected: {report:?}");
    assert!(report.dead_segments >= 1, "folded-away segments not collected: {report:?}");
    assert!(report.temp_files >= 2, "stranded temp files not collected: {report:?}");
    assert!(total_removes >= 4, "GC removed only {total_removes} files");
    // A completed GC is invisible to readers: bit-identical reopen.
    let clean = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    assert_eq!(lake_state(&clean), reference, "post-GC reopen drifted");
    drop(clean);
    std::fs::remove_dir_all(&dir).unwrap();

    // Sweep: crash at every single deletion in the GC pass.
    for kill in 1..=total_removes {
        let dir = tmp(&format!("gc-k{kill}"));
        let _ = std::fs::remove_dir_all(&dir);
        copy_tree(&template, &dir);
        let fs = FailFs::kill_at_remove(kill);
        {
            let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fs));
            let lake = ModelLake::open_with(&dir, LakeConfig::default(), vfs).unwrap();
            assert!(
                lake.gc().is_err(),
                "gc kill {kill}: collection survived the injected crash"
            );
        }
        assert!(fs.is_dead(), "gc kill point {kill} never reached");
        // Recovery sees the live superblock untouched; a second GC pass
        // finishes the interrupted collection.
        let rec = ModelLake::open(&dir, LakeConfig::default())
            .unwrap_or_else(|e| panic!("gc kill {kill}: recovery failed: {e}"));
        assert_eq!(lake_state(&rec), reference, "gc kill {kill}: state drifted");
        rec.gc().unwrap_or_else(|e| panic!("gc kill {kill}: retry failed: {e}"));
        drop(rec);
        let again = ModelLake::open(&dir, LakeConfig::default()).unwrap();
        assert_eq!(lake_state(&again), reference, "gc kill {kill}: post-retry drifted");
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&template).unwrap();
}

/// `persist()` is temp-file + rename all the way down: a crash at any
/// write or fsync during persist must leave the previous snapshot + WAL
/// fully recoverable — never a torn manifest, never lost ops.
#[test]
fn crash_during_persist_preserves_full_state() {
    let refs = reference_states();
    // Counting pass: writes/syncs before persist vs during persist.
    let dir = tmp("count-p");
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FailFs::counting();
    assert_eq!(drive(&dir, &fs), Some(N_OPS));
    let (w_script, s_script) = (fs.writes(), fs.syncs());
    {
        let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fs));
        let lake = ModelLake::open_with(&dir, LakeConfig::default(), vfs).unwrap();
        lake.persist(&dir).unwrap();
    }
    let (w_persist, s_persist) = (fs.writes() - w_script, fs.syncs() - s_script);
    assert!(w_persist > 0, "persist issued no writes");
    std::fs::remove_dir_all(&dir).unwrap();

    // Crash at every write and every fsync inside the open + persist
    // window (the counting pass above measured exactly that window, on an
    // identical on-disk state).
    let mut cases: Vec<(&str, u64)> = Vec::new();
    for k in 1..=w_persist {
        cases.push(("write", k));
    }
    for k in 1..=s_persist {
        cases.push(("sync", k));
    }
    for (kind, k) in cases {
        let dir = tmp(&format!("kp-{kind}-{k}"));
        let _ = std::fs::remove_dir_all(&dir);
        // Build the lake undisturbed on the real filesystem first.
        {
            let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
            for i in 0..N_OPS {
                apply_op(&lake, i).unwrap();
            }
        }
        // Reopen through FailFs armed to die on the k-th write/fsync, then
        // persist. The open itself may be the victim; either way the crash
        // lands before the new manifest is in place.
        let fs = match kind {
            "write" => FailFs::kill_at_write(k, 0),
            _ => FailFs::kill_at_sync(k),
        };
        let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fs));
        if let Ok(lake) = ModelLake::open_with(&dir, LakeConfig::default(), vfs) {
            assert!(
                lake.persist(&dir).is_err(),
                "{kind} kill {k}: persist survived the injected crash"
            );
        }
        assert!(fs.is_dead(), "{kind} kill point {k} never reached");
        // The previous snapshot + WAL must recover the complete state.
        check_recovered(&dir, N_OPS, &refs, &format!("persist {kind} kill {k}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
