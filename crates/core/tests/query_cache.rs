//! The facade query cache (DESIGN.md §11): repeated queries hit, any lake
//! mutation invalidates, and a disabled cache is inert.

use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, GroundTruth, LakeSpec};
use mlake_fingerprint::FingerprintKind;

fn populated(config: LakeConfig) -> (ModelLake, GroundTruth) {
    let gt = generate_lake(&LakeSpec::tiny(42));
    let lake = ModelLake::new(config);
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
    (lake, gt)
}

fn cache_counters() -> (u64, u64) {
    let snap = mlake_obs::registry().snapshot();
    (snap.counter("cache.hit"), snap.counter("cache.miss"))
}

#[test]
fn similar_repeats_hit_the_cache() {
    let (lake, _gt) = populated(LakeConfig::default());
    let first = lake.similar(ModelId(0), FingerprintKind::Intrinsic, 3).unwrap();
    let (h0, _) = cache_counters();
    let second = lake.similar(ModelId(0), FingerprintKind::Intrinsic, 3).unwrap();
    assert_eq!(first, second);
    if mlake_obs::enabled() {
        let (h1, _) = cache_counters();
        assert!(h1 > h0, "second identical similar() did not count a cache.hit");
    }
    // Different k is a different key: no stale reuse across sizes.
    let narrower = lake.similar(ModelId(0), FingerprintKind::Intrinsic, 1).unwrap();
    assert_eq!(narrower.len(), 1.min(first.len()));
    if !first.is_empty() {
        assert_eq!(narrower[0], first[0]);
    }
}

#[test]
fn ingest_after_cached_query_must_not_serve_stale_hits() {
    let (lake, gt) = populated(LakeConfig::default());
    // Warm the cache for model 0.
    let before = lake.similar(ModelId(0), FingerprintKind::Intrinsic, 3).unwrap();
    let before_again = lake.similar(ModelId(0), FingerprintKind::Intrinsic, 3).unwrap();
    assert_eq!(before, before_again);
    // Ingest a bit-identical clone of model 0: its fingerprint distance to
    // the query is ~0, so a *fresh* search must rank it first. A stale
    // cached answer cannot contain the new id at all.
    let clone_id = lake
        .ingest_model("cache-buster-clone", &gt.models[0].model, None)
        .unwrap();
    let after = lake.similar(ModelId(0), FingerprintKind::Intrinsic, 3).unwrap();
    assert!(
        after.iter().any(|(id, _)| *id == clone_id),
        "post-ingest similar() is missing the just-ingested clone: {after:?}"
    );
    assert_eq!(after[0].0, clone_id, "identical clone should rank first");
}

#[test]
fn mlql_run_caches_and_invalidates_on_mutation() {
    let (lake, gt) = populated(LakeConfig::default());
    let q = lake.prepare("FIND MODELS WHERE domain = 'legal'").unwrap();
    let first = q.run().unwrap();
    let (h0, m0) = cache_counters();
    let second = q.run().unwrap();
    assert_eq!(first, second);
    if mlake_obs::enabled() {
        let (h1, _) = cache_counters();
        assert!(h1 > h0, "repeated run() did not count a cache.hit");
    }
    // Any mutation (here: a card update) bumps the generation, so the next
    // run misses and recomputes against current state.
    let card = lake.entry(ModelId(0)).unwrap().card;
    lake.update_card(ModelId(0), card).unwrap();
    let third = q.run().unwrap();
    assert_eq!(first, third, "card no-op rewrite must not change results");
    if mlake_obs::enabled() {
        let (_, m1) = cache_counters();
        assert!(m1 > m0, "post-mutation run() should have missed the cache");
    }
    let _ = gt;
}

#[test]
fn zero_capacity_disables_caching_without_changing_results() {
    let config = LakeConfig::builder().query_cache(0).build().unwrap();
    assert_eq!(config.query_cache, 0);
    let (lake, _gt) = populated(config);
    let a = lake.similar(ModelId(0), FingerprintKind::Intrinsic, 3).unwrap();
    let b = lake.similar(ModelId(0), FingerprintKind::Intrinsic, 3).unwrap();
    assert_eq!(a, b);
    // And a cached lake returns the same answers as an uncached one.
    let (cached, _gt2) = populated(LakeConfig::default());
    assert_eq!(a, cached.similar(ModelId(0), FingerprintKind::Intrinsic, 3).unwrap());
}

/// Shard count is part of both cache keys (`similar` and MLQL): cached
/// answers from a sharded layout are only ever served back to that exact
/// layout. At an exhaustive beam (ef ≥ lake size) the sharded and
/// unsharded answers are bit-identical, so serving each layout from its
/// own warm cache must reproduce the same results — and the hits must
/// come from the cache, not a recompute.
#[test]
fn shard_count_partitions_the_cache_key_space() {
    let exhaustive = mlake_index::HnswConfig {
        ef_search: 4096,
        ef_construction: 4096,
        ..mlake_index::HnswConfig::default()
    };
    let sharded_cfg = LakeConfig::builder()
        .shards(4)
        .hnsw(exhaustive)
        .build()
        .unwrap();
    let flat_cfg = LakeConfig::builder().hnsw(exhaustive).build().unwrap();
    let (sharded, _gt) = populated(sharded_cfg);
    let (flat, _gt2) = populated(flat_cfg);

    let a = sharded.similar(ModelId(0), FingerprintKind::Hybrid, 5).unwrap();
    let b = flat.similar(ModelId(0), FingerprintKind::Hybrid, 5).unwrap();
    assert_eq!(a.len(), b.len());
    for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
        assert_eq!(ia, ib, "sharded vs flat id order at exhaustive beam");
        assert_eq!(sa.to_bits(), sb.to_bits(), "similarity bits");
    }

    // Warm-cache repeats on the sharded lake are counted hits and stay
    // bit-identical.
    let (h0, _) = cache_counters();
    let again = sharded.similar(ModelId(0), FingerprintKind::Hybrid, 5).unwrap();
    assert_eq!(a, again);
    if mlake_obs::enabled() {
        let (h1, _) = cache_counters();
        assert!(h1 > h0, "sharded repeat did not count a cache.hit");
    }

    // Same for MLQL: both layouts agree, and the sharded lake's repeat is
    // a cache hit under its shard-qualified key.
    let q = "FIND MODELS WHERE task = 'classification' ORDER BY name ASC";
    let qa = sharded.prepare(q).unwrap().run().unwrap();
    let qb = flat.prepare(q).unwrap().run().unwrap();
    assert_eq!(qa, qb);
    let (h2, _) = cache_counters();
    let qa2 = sharded.prepare(q).unwrap().run().unwrap();
    assert_eq!(qa, qa2);
    if mlake_obs::enabled() {
        let (h3, _) = cache_counters();
        assert!(h3 > h2, "sharded MLQL repeat did not count a cache.hit");
    }
}
