//! Full-text retrieval through the facade (DESIGN.md §16): BM25 results
//! are deterministic, survive persist → reopen and WAL-only replay
//! bit-identically, and card updates move text rankings without touching
//! the citation contract pinned in PR 2.

use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, GroundTruth, LakeSpec};
use mlake_fingerprint::FingerprintKind;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mlake-textsearch-{tag}-{}", std::process::id()))
}

fn vocab_query(gt: &GroundTruth, family: usize) -> String {
    gt.family_vocab(family).join(" ")
}

/// Results as raw bits so "identical" means bit-identical, not
/// approximately-equal.
fn bits(hits: &[(ModelId, f32)]) -> Vec<(u64, u32)> {
    hits.iter().map(|(id, s)| (id.0, s.to_bits())).collect()
}

#[test]
fn text_search_finds_family_vocabulary() {
    let gt = generate_lake(&LakeSpec::tiny(42));
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();

    // Every honest card seeds its notes with the family's controlled
    // vocabulary, so a vocab query's relevant set is exactly the family.
    let family = gt.models[0].family;
    let members = gt.family_members(family);
    let hits = lake.text_search(&vocab_query(&gt, family), gt.models.len()).unwrap();
    let got: Vec<u64> = hits.iter().map(|(id, _)| id.0).collect();
    for m in &members {
        assert!(
            got.contains(&(*m as u64)),
            "family member {m} missing from text hits {got:?}"
        );
    }
    // Family members outrank everything else: the top |members| hits are
    // exactly the family (vocab words appear nowhere else).
    for (id, _) in hits.iter().take(members.len()) {
        assert!(members.contains(&(id.0 as usize)), "non-member {id:?} in top hits");
    }
    // Scores are sorted descending with deterministic tie-break.
    for w in hits.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}

#[test]
fn text_search_survives_persist_reopen_bit_identically() {
    let dir = tmp("persist");
    let _ = std::fs::remove_dir_all(&dir);
    let gt = generate_lake(&LakeSpec::tiny(7));
    let family = gt.models[0].family;
    let query = vocab_query(&gt, family);

    let (live_text, live_hybrid) = {
        let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
        populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
        let text = lake.text_search(&query, 10).unwrap();
        let hybrid = lake
            .hybrid_search(&query, ModelId(0), FingerprintKind::Hybrid, 5)
            .unwrap();
        lake.persist(&dir).unwrap();
        (text, hybrid)
    };
    assert!(!live_text.is_empty());

    // Reopen restores the index from its `Block::TextIndex` snapshot —
    // same postings, same lengths, bit-identical BM25 and RRF output.
    let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    let re_text = reopened.text_search(&query, 10).unwrap();
    assert_eq!(bits(&live_text), bits(&re_text), "persisted text index diverged");
    let re_hybrid = reopened
        .hybrid_search(&query, ModelId(0), FingerprintKind::Hybrid, 5)
        .unwrap();
    assert_eq!(bits(&live_hybrid), bits(&re_hybrid), "persisted hybrid diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn text_search_rebuilds_from_wal_replay_bit_identically() {
    let dir = tmp("wal");
    let _ = std::fs::remove_dir_all(&dir);
    let gt = generate_lake(&LakeSpec::tiny(9));
    let family = gt.models[1].family;
    let query = vocab_query(&gt, family);

    let live = {
        let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
        populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
        // Mutate a card too, so replay exercises the update path.
        let mut card = lake.entry(ModelId(0)).unwrap().card;
        card.notes = format!("{} replayed annotation", card.notes);
        lake.update_card(ModelId(0), card).unwrap();
        // No persist(): everything after `create` lives only in the WAL.
        lake.text_search(&query, 10).unwrap()
    };

    let replayed = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    let re = replayed.text_search(&query, 10).unwrap();
    assert_eq!(bits(&live), bits(&re), "WAL-replayed text index diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn card_update_moves_bm25_but_not_citations() {
    // Regression guard for the PR 2 citation contract: a `CardUpdated`
    // event must re-rank text search (the card text changed) while
    // leaving `graph_timestamp` and citation keys untouched
    // (`EventKind::affects_graph` excludes card edits).
    let gt = generate_lake(&LakeSpec::tiny(13));
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
    lake.rebuild_version_graph(None).unwrap();

    let query = "glassblowing quarterly";
    assert!(lake.text_search(query, 5).unwrap().is_empty());

    let cite_before = lake.cite(ModelId(2)).unwrap();
    let ts_before = lake.graph_timestamp();

    let mut card = lake.entry(ModelId(2)).unwrap().card;
    card.notes = "glassblowing quarterly report".into();
    lake.update_card(ModelId(2), card).unwrap();

    // The edit is visible to BM25 immediately (and through the cache,
    // whose keys are generation-stamped)...
    let hits = lake.text_search(query, 5).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].0, ModelId(2));

    // ...but the citation contract is untouched.
    assert_eq!(lake.graph_timestamp(), ts_before);
    let cite_after = lake.cite(ModelId(2)).unwrap();
    assert_eq!(cite_before.graph_timestamp, cite_after.graph_timestamp);
    assert_eq!(cite_before.key(), cite_after.key());

    // Updating again removes the old terms: the index replaces a doc's
    // postings wholesale rather than accumulating stale ones.
    let mut card = lake.entry(ModelId(2)).unwrap().card;
    card.notes = "back to ordinary notes".into();
    lake.update_card(ModelId(2), card).unwrap();
    assert!(lake.text_search(query, 5).unwrap().is_empty());
}

#[test]
fn hybrid_ranks_fuse_text_and_vector_evidence() {
    let gt = generate_lake(&LakeSpec::tiny(21));
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();

    let family = gt.models[0].family;
    let query = vocab_query(&gt, family);
    let hits = lake
        .hybrid_search(&query, ModelId(0), FingerprintKind::Hybrid, 5)
        .unwrap();
    assert!(!hits.is_empty());
    // The anchor never appears in its own results.
    assert!(hits.iter().all(|(id, _)| *id != ModelId(0)));
    // RRF scores are descending and positive.
    for w in hits.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
    assert!(hits.iter().all(|(_, s)| *s > 0.0));
}
