//! Concurrency hammer: one `ModelLake` under parallel ingest + search +
//! query on the shared mlake-par pool.
//!
//! This is deliberately the only test in this binary: the final assertions
//! read the process-global observability registry, which Rust's threaded
//! test harness would otherwise share between unrelated tests.

use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_fingerprint::FingerprintKind;

#[test]
fn parallel_ingest_search_query_is_consistent() {
    let gt = generate_lake(&LakeSpec::tiny(42));
    let lake = ModelLake::new(LakeConfig::builder().name("hammer").build().unwrap());
    mlake_obs::registry().reset();

    // Seed one model serially so every search/query has a target.
    lake.ingest_model(&gt.models[0].name, &gt.models[0].model, None)
        .unwrap();

    // Each parallel unit ingests one model, then immediately searches and
    // queries the lake while other units are still mutating it.
    let rest = &gt.models[1..];
    let n = rest.len();
    mlake_par::par_for(n, 1, |range| {
        for i in range {
            let m = &rest[i];
            lake.ingest_model(&m.name, &m.model, None).unwrap();
            let sims = lake
                .similar(ModelId(0), FingerprintKind::Intrinsic, 3)
                .unwrap();
            assert!(sims.iter().all(|(id, _)| id.0 < gt.models.len() as u64));
            let q = lake.prepare("FIND MODELS WHERE params > 0").unwrap();
            assert!(!q.run().unwrap().is_empty());
        }
    });

    assert_eq!(lake.len(), gt.models.len());
    // Event sequence numbers are gap-free under concurrent appends.
    for (i, e) in lake.events().iter().enumerate() {
        assert_eq!(e.seq, i as u64 + 1, "event seq gap at position {i}");
    }

    // Facade-span histograms count exactly one record per operation.
    // Skipped when observability is disabled (MLAKE_OBS=off CI leg).
    if mlake_obs::enabled() {
        let snap = mlake_obs::registry().snapshot();
        let count = |name: &str| snap.histogram(name).map(|h| h.count).unwrap_or(0);
        assert_eq!(count("lake.ingest"), n as u64 + 1);
        assert_eq!(count("lake.similar"), n as u64);
        assert_eq!(count("lake.query.prepare"), n as u64);
        assert_eq!(count("lake.query.run"), n as u64);
    }
}
