//! Background compaction (DESIGN.md §13): under sustained ingest with a
//! [`CompactionPolicy`], the WAL compacts *without* any explicit
//! `persist()` call, the work is observable (`compact.bg` spans /
//! `compact.bg.runs` counter), and recovery after the fact is exact.

use mlake_core::{CompactionPolicy, LakeConfig, ModelId, ModelLake};
use mlake_datagen::{generate_lake, LakeSpec};

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mlake-bgcompact-{tag}-{}", std::process::id()))
}

fn aggressive_policy() -> LakeConfig {
    LakeConfig::builder()
        .shards(4)
        .background_compaction(CompactionPolicy {
            wal_bytes: 1, // every append crosses the threshold
            wal_segments: 0,
        })
        .build()
        .unwrap()
}

#[test]
fn sustained_ingest_compacts_without_explicit_persist() {
    let dir = tmp("ingest");
    let _ = std::fs::remove_dir_all(&dir);
    let gt = generate_lake(&LakeSpec::tiny(5));
    let runs_before = mlake_obs::registry().snapshot().counter("compact.bg.runs");
    {
        let lake = ModelLake::create(&dir, aggressive_policy()).unwrap();
        for (i, gm) in gt.models.iter().enumerate() {
            lake.ingest_model(&format!("m{i}"), &gm.model, None).unwrap();
        }
        // No explicit persist() anywhere: the trigger alone must have
        // scheduled compactions. Quiesce so the last one is finished.
        lake.quiesce();
        if mlake_obs::enabled() {
            let runs_after = mlake_obs::registry().snapshot().counter("compact.bg.runs");
            assert!(
                runs_after > runs_before,
                "background compactor never ran ({runs_before} -> {runs_after})"
            );
        }
        // The snapshot the compactor wrote covers every acked ingest, so
        // the manifest's high-water mark is positive and the covered WAL
        // prefix is gone.
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(
            manifest.contains("\"last_lsn\""),
            "compactor must write a versioned manifest"
        );
    }
    // Recovery after background compaction is exact.
    let reopened = ModelLake::open(&dir, aggressive_policy()).unwrap();
    assert_eq!(reopened.len(), gt.models.len());
    for (i, gm) in gt.models.iter().enumerate() {
        assert_eq!(
            reopened.model(format!("m{i}").as_str()).unwrap().flat_params(),
            gm.model.flat_params(),
            "artifact {i} must survive bit-for-bit"
        );
    }
    // Sharded search still answers on the recovered indexes.
    let hits = reopened
        .similar(ModelId(0), mlake_fingerprint::FingerprintKind::Hybrid, 3)
        .unwrap();
    assert!(!hits.is_empty());
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segment_count_trigger_fires() {
    let dir = tmp("segs");
    let _ = std::fs::remove_dir_all(&dir);
    let config = LakeConfig::builder()
        .background_compaction(CompactionPolicy {
            wal_bytes: 0,
            wal_segments: 1, // any sealed segment backlog triggers
        })
        .build()
        .unwrap();
    let gt = generate_lake(&LakeSpec::tiny(4));
    let lake = ModelLake::create(&dir, config.clone()).unwrap();
    for (i, gm) in gt.models.iter().enumerate() {
        lake.ingest_model(&format!("m{i}"), &gm.model, None).unwrap();
    }
    lake.quiesce();
    drop(lake);
    let reopened = ModelLake::open(&dir, config).unwrap();
    assert_eq!(reopened.len(), gt.models.len());
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn policy_is_inert_on_ephemeral_lakes() {
    // An in-memory lake with a policy configured has no WAL and spawns no
    // compactor; everything still works and quiesce() is a no-op.
    let lake = ModelLake::new(aggressive_policy());
    let gt = generate_lake(&LakeSpec::tiny(3));
    for (i, gm) in gt.models.iter().enumerate() {
        lake.ingest_model(&format!("m{i}"), &gm.model, None).unwrap();
    }
    lake.quiesce();
    assert_eq!(lake.len(), gt.models.len());
    assert!(!lake.is_durable());
}

#[test]
fn builder_rejects_vacuous_policy() {
    assert!(LakeConfig::builder()
        .background_compaction(CompactionPolicy {
            wal_bytes: 0,
            wal_segments: 0,
        })
        .build()
        .is_err());
    assert!(LakeConfig::builder().shards(3).build().is_err());
    assert!(LakeConfig::builder().shards(512).build().is_err());
    assert!(LakeConfig::builder().shards(8).build().is_ok());
}
