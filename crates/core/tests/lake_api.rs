//! End-to-end tests of the `ModelLake` public API on a tiny benchmark lake —
//! Figure 2's full pipeline: ingest → index → version graph → generated
//! card → verification → audit → citation → MLQL.

use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::{LakeError, ModelId};
use mlake_datagen::{generate_lake, GroundTruth, LakeSpec};
use mlake_fingerprint::FingerprintKind;

fn populated(policy: CardPolicy) -> (ModelLake, GroundTruth) {
    let gt = generate_lake(&LakeSpec::tiny(42));
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, policy).unwrap();
    (lake, gt)
}

#[test]
fn ingest_round_trips_artifacts() {
    let (lake, gt) = populated(CardPolicy::Honest);
    for i in 0..gt.models.len() {
        let model = lake.model(ModelId(i as u64)).unwrap();
        assert_eq!(model.flat_params(), gt.models[i].model.flat_params());
    }
    // Duplicate names rejected.
    let err = lake.ingest_model(&gt.models[0].name, &gt.models[0].model, None);
    assert!(matches!(err, Err(LakeError::Duplicate { .. })));
    // Unknown lookups fail cleanly.
    assert!(lake.model(ModelId(999)).is_err());
    assert!(lake.resolve("ghost").is_err());
}

#[test]
fn model_refs_resolve_by_id_name_and_digest() {
    let (lake, gt) = populated(CardPolicy::Honest);
    let name = gt.models[1].name.clone();
    let by_name = lake.resolve(name.as_str()).unwrap();
    assert_eq!(by_name, ModelId(1));
    // Digest round-trip: the entry's digest resolves back to the same id.
    let digest = lake.entry(ModelId(1)).unwrap().digest;
    assert_eq!(lake.resolve(&digest).unwrap(), ModelId(1));
    // Every read accepts any identity interchangeably.
    assert_eq!(
        lake.model(name.as_str()).unwrap().flat_params(),
        lake.model(ModelId(1)).unwrap().flat_params()
    );
    assert_eq!(lake.entry(&digest).unwrap().name, name);
    assert_eq!(
        lake.cite(name.as_str()).unwrap().model_name,
        lake.cite(ModelId(1)).unwrap().model_name
    );
}

#[test]
fn config_builder_validates() {
    let ok = LakeConfig::builder()
        .name("validated")
        .seed(7)
        .sketch_dim(32)
        .build()
        .unwrap();
    assert_eq!(ok.name, "validated");
    assert_eq!(ok.sketch_dim, 32);
    assert!(matches!(
        LakeConfig::builder().name("  ").build(),
        Err(LakeError::Config(_))
    ));
    assert!(matches!(
        LakeConfig::builder().sketch_dim(0).build(),
        Err(LakeError::Config(_))
    ));
    assert!(matches!(
        LakeConfig::builder().probes(0, 8, 2.5).build(),
        Err(LakeError::Config(_))
    ));
    assert!(matches!(
        LakeConfig::builder().probes(32, 8, f32::NAN).build(),
        Err(LakeError::Config(_))
    ));
    assert!(matches!(
        LakeConfig::builder().lm_probes(16, 2, 0).build(),
        Err(LakeError::Config(_))
    ));
}

#[test]
fn similarity_search_surfaces_relatives() {
    let (lake, gt) = populated(CardPolicy::Honest);
    // Find a model with a weight-continuous child.
    let edge = gt
        .edges
        .iter()
        .find(|e| e.kind.preserves_weights()
            && gt.models[e.parent].model.architecture() == gt.models[e.child].model.architecture())
        .expect("tiny lake has weight-preserving edges");
    let hits = lake
        .similar(ModelId(edge.parent as u64), FingerprintKind::Intrinsic, 5)
        .unwrap();
    assert!(!hits.is_empty());
    let hit_ids: Vec<u64> = hits.iter().map(|(m, _)| m.0).collect();
    assert!(
        hit_ids.contains(&(edge.child as u64)),
        "child {} missing from neighbours {hit_ids:?} of {}",
        edge.child,
        edge.parent
    );
    // Self excluded, similarities descending.
    assert!(!hit_ids.contains(&(edge.parent as u64)));
    for w in hits.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}

#[test]
fn version_graph_and_lineage_paths() {
    let (lake, gt) = populated(CardPolicy::Honest);
    let known: Vec<ModelId> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    let graph = lake.rebuild_version_graph(Some(known)).unwrap();
    assert_eq!(graph.num_models, gt.models.len());
    // Lineage path starts at a root and ends at the model.
    let derived = gt.edges[0].child;
    let path = lake.lineage_path(ModelId(derived as u64)).unwrap();
    assert!(path.len() >= 2);
    assert_eq!(path.last().unwrap(), &gt.models[derived].name);
}

#[test]
fn benchmarking_and_outperform() {
    let (lake, _gt) = populated(CardPolicy::Honest);
    let lb = lake.leaderboard("legal-holdout").unwrap();
    assert!(!lb.rows.is_empty());
    // Scores cached: a second call must agree.
    let top = lb.best().unwrap();
    let s = lake.score_of(ModelId(top.model_id), "legal-holdout").unwrap();
    assert_eq!(s.value, top.score.value);
    assert!(lake.leaderboard("no-such-bench").is_err());
}

#[test]
fn generated_cards_are_complete_and_verifiable() {
    let (lake, gt) = populated(CardPolicy::Skeleton);
    lake.rebuild_version_graph(Some(
        (0..gt.models.len())
            .filter(|&i| gt.models[i].depth == 0)
            .map(|i| ModelId(i as u64))
            .collect(),
    ))
    .unwrap();
    let id = ModelId(0);
    let skeleton_completeness = lake.entry(id).unwrap().card.completeness();
    let generated = lake.generate_card(id).unwrap();
    assert!(generated.completeness() > skeleton_completeness);
    assert!(!generated.metrics.is_empty());
    // Install the generated card; it must then verify cleanly.
    lake.update_card(id, generated).unwrap();
    let report = lake.verify_model_card(id).unwrap();
    assert!(report.passes(), "{:#?}", report.findings);
}

#[test]
fn honest_cards_pass_audit_better_than_skeletons() {
    let (honest, _) = populated(CardPolicy::Honest);
    let (skeleton, _) = populated(CardPolicy::Skeleton);
    let a = honest.audit_model(ModelId(0)).unwrap();
    let b = skeleton.audit_model(ModelId(0)).unwrap();
    assert!(a.coverage() > b.coverage());
}

#[test]
fn citations_track_graph_changes() {
    let (lake, gt) = populated(CardPolicy::Honest);
    lake.rebuild_version_graph(None).unwrap();
    let c1 = lake.cite(ModelId(1)).unwrap();
    assert!(c1.graph_timestamp > 0);
    assert!(c1.key().contains(&gt.models[1].name));
    // Ingesting a new model invalidates; rebuilding bumps the timestamp.
    let clone_of_zero = gt.models[0].model.clone();
    lake.ingest_model("newcomer", &clone_of_zero, None).unwrap();
    lake.rebuild_version_graph(None).unwrap();
    let c2 = lake.cite(ModelId(1)).unwrap();
    assert!(c2.graph_timestamp > c1.graph_timestamp);
    assert_ne!(c1.key(), c2.key());
}

#[test]
fn citations_are_stable_across_card_updates() {
    // Contract pinned here (see DESIGN.md §5): a citation timestamps the
    // *version graph*, not the documentation. `EventKind::affects_graph`
    // therefore deliberately excludes `CardUpdated` — editing a card must
    // neither bump `graph_timestamp` nor change the citation key, while
    // the edit itself stays auditable through the event log.
    let (lake, _gt) = populated(CardPolicy::Honest);
    lake.rebuild_version_graph(None).unwrap();
    let before = lake.cite(ModelId(1)).unwrap();
    let ts_before = lake.graph_timestamp();
    let mut card = lake.entry(ModelId(1)).unwrap().card;
    card.notes = "revised documentation".into();
    lake.update_card(ModelId(1), card).unwrap();
    let after = lake.cite(ModelId(1)).unwrap();
    assert_eq!(lake.graph_timestamp(), ts_before);
    assert_eq!(before.graph_timestamp, after.graph_timestamp);
    assert_eq!(before.key(), after.key());
    // The card edit is still on the record.
    let events = lake.events();
    assert!(events
        .iter()
        .any(|e| e.subject == after.model_name
            && matches!(e.kind, mlake_core::event::EventKind::CardUpdated)));
}

#[test]
fn mlql_queries_run_end_to_end() {
    let (lake, gt) = populated(CardPolicy::Honest);
    // Metadata filter.
    let legal = lake
        .prepare("FIND MODELS WHERE domain = 'legal'")
        .unwrap()
        .run()
        .unwrap();
    let expected = gt
        .models
        .iter()
        .filter(|m| m.domain.name() == "legal")
        .count();
    assert_eq!(legal.len(), expected);
    // Trained-on with versions.
    let ds_name = &gt.datasets[0].name;
    let trained = lake
        .prepare(&format!(
            "FIND MODELS TRAINED ON DATASET '{ds_name}' INCLUDING VERSIONS"
        ))
        .unwrap()
        .run()
        .unwrap();
    assert!(!trained.is_empty());
    // Similarity query: prepare once, reuse the handle for run and explain.
    let q = format!(
        "FIND MODELS SIMILAR TO MODEL '{}' USING weights TOP 3",
        gt.models[0].name
    );
    let prepared = lake.prepare(&q).unwrap();
    assert_eq!(prepared.text(), q);
    let sim = prepared.run().unwrap();
    assert!(sim.len() <= 3);
    assert!(sim.iter().all(|h| h.similarity.is_some()));
    // Repeated runs of one handle agree (parse once, execute many).
    assert_eq!(prepared.run().unwrap(), sim);
    // Order by benchmark score.
    let ranked = lake
        .prepare("FIND MODELS ORDER BY score('legal-holdout') DESC LIMIT 3")
        .unwrap()
        .run()
        .unwrap();
    assert!(ranked.len() <= 3);
    // Plan narration from the same prepared handle.
    let plan = prepared.explain();
    assert!(plan[0].contains("ANN-INDEX SCAN"));
    // Unknown model in clause errors at run time, not prepare time.
    let ghost = lake.prepare("FIND MODELS SIMILAR TO MODEL 'ghost'").unwrap();
    assert!(ghost.run().is_err());
    // Syntax errors surface at prepare time.
    assert!(lake.prepare("FIND GARBAGE WAT").is_err());
}

#[test]
fn events_record_full_history() {
    let (lake, gt) = populated(CardPolicy::Honest);
    let events = lake.events();
    // datasets + benchmarks + 2 per model (ingest + card).
    assert!(events.len() >= gt.models.len() * 2);
    let first_model_history: Vec<_> = events
        .iter()
        .filter(|e| e.subject == gt.models[0].name)
        .collect();
    assert!(first_model_history.len() >= 2);
}

#[test]
fn non_finite_models_are_rejected_at_ingest() {
    use mlake_nn::{Activation, Mlp, Model};
    use mlake_tensor::{init::Init, Pcg64};
    let lake = ModelLake::new(LakeConfig::default());
    let mut rng = Pcg64::new(1);
    let mut m = Mlp::new(vec![8, 4, 3], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
    let mut params = m.flat_params();
    params[0] = f32::NAN;
    m.set_flat_params(&params).unwrap();
    let err = lake.ingest_model("diverged", &Model::Mlp(m), None);
    assert!(matches!(err, Err(LakeError::CorruptArtifact(_))));
    assert!(lake.is_empty());
}

#[test]
fn count_queries() {
    let (lake, gt) = populated(CardPolicy::Honest);
    let legal = gt
        .models
        .iter()
        .filter(|m| m.domain.name() == "legal")
        .count();
    assert_eq!(
        lake.prepare("COUNT MODELS WHERE domain = 'legal'")
            .unwrap()
            .count()
            .unwrap(),
        legal
    );
    assert_eq!(
        lake.prepare("COUNT MODELS").unwrap().count().unwrap(),
        gt.models.len()
    );
    assert_eq!(
        lake.prepare("FIND MODELS WHERE domain = 'legal'")
            .unwrap()
            .count()
            .unwrap(),
        legal
    );
}
