//! Manifest format back-compatibility (DESIGN.md §12).
//!
//! `tests/fixtures/v1-lake/` is a checked-in lake persisted by the v1
//! (pre-WAL) format: `manifest.json` has `"version": 1`, no `last_lsn`
//! field and no `wal/` directory. Opening it must keep working forever —
//! the manifest version only advances with a replay path for every
//! version we ever shipped — while unknown *future* versions must be
//! rejected with the typed [`LakeError::UnsupportedManifest`], never a
//! panic or a misleading corruption report.

use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::LakeError;
use mlake_nn::{Activation, Mlp, Model};
use mlake_tensor::{init::Init, Pcg64};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1-lake")
}

fn v2_fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v2-lake")
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mlake-compat-{tag}-{}", std::process::id()))
}

fn model(seed: u64) -> Model {
    let mut rng = Pcg64::new(seed);
    Model::Mlp(Mlp::new(vec![8, 4, 3], Activation::Relu, Init::HeNormal, &mut rng).unwrap())
}

/// Copies a read-only fixture into a scratch dir (opening a lake
/// attaches a WAL, i.e. writes into the directory).
fn copy_fixture_from(from: &Path, to: &Path) {
    std::fs::create_dir_all(to.join("blobs")).unwrap();
    std::fs::copy(from.join("manifest.json"), to.join("manifest.json")).unwrap();
    for entry in std::fs::read_dir(from.join("blobs")).unwrap() {
        let path = entry.unwrap().path();
        std::fs::copy(&path, to.join("blobs").join(path.file_name().unwrap())).unwrap();
    }
}

fn copy_fixture(to: &Path) {
    copy_fixture_from(&fixture_dir(), to);
}

#[test]
fn v1_fixture_opens_and_upgrades_on_persist() {
    let fixture = std::fs::read_to_string(fixture_dir().join("manifest.json")).unwrap();
    assert!(
        fixture.contains("\"version\": 1"),
        "fixture must stay at manifest v1 — regenerate_v1_fixture changed?"
    );
    assert!(!fixture.contains("last_lsn"), "v1 predates the WAL");

    let dir = tmp("v1");
    let _ = std::fs::remove_dir_all(&dir);
    copy_fixture(&dir);
    let lake = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    assert_eq!(lake.len(), 2);
    assert!(lake.is_durable(), "opened lakes attach a WAL even from v1");
    assert!(lake.resolve("v1-alpha").is_ok());
    assert!(lake.resolve("v1-beta").is_ok());
    // Artifacts decode bit-for-bit: the fixture froze the v1 blob bytes.
    assert_eq!(
        lake.model("v1-alpha").unwrap().flat_params(),
        model(1).flat_params()
    );
    // The v1 lake is live: it takes new durable mutations, and persisting
    // upgrades the manifest to the current superblock format.
    lake.ingest_model("v3-native", &model(3), None).unwrap();
    lake.persist(&dir).unwrap();
    let upgraded = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(upgraded.contains("\"version\": 3"));
    assert!(upgraded.contains("segments"));
    assert!(upgraded.contains("last_lsn"));
    assert!(dir.join("segs").exists(), "the upgrade wrote a segment chain");
    let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    assert_eq!(reopened.len(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v2_fixture_opens_and_upgrades_on_persist() {
    let fixture = std::fs::read_to_string(v2_fixture_dir().join("manifest.json")).unwrap();
    assert!(
        fixture.contains("\"version\": 2"),
        "fixture must stay at manifest v2 — regenerate_v2_fixture changed?"
    );
    assert!(fixture.contains("last_lsn"), "v2 records the WAL high-water mark");

    let dir = tmp("v2");
    let _ = std::fs::remove_dir_all(&dir);
    copy_fixture_from(&v2_fixture_dir(), &dir);
    let lake = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    assert_eq!(lake.len(), 2);
    assert!(lake.is_durable());
    // Artifacts decode bit-for-bit from the frozen v2 blobs.
    assert_eq!(
        lake.model("v2-alpha").unwrap().flat_params(),
        model(11).flat_params()
    );
    assert_eq!(
        lake.model("v2-beta").unwrap().flat_params(),
        model(12).flat_params()
    );
    // Persisting upgrades to the v3 superblock; the lake reopens lazily.
    lake.persist(&dir).unwrap();
    let upgraded = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(upgraded.contains("\"version\": 3"));
    drop(lake);
    let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
    assert_eq!(reopened.len(), 2);
    assert_eq!(
        reopened.model("v2-alpha").unwrap().flat_params(),
        model(11).flat_params()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn future_manifest_version_is_rejected_with_typed_error() {
    let dir = tmp("future");
    let _ = std::fs::remove_dir_all(&dir);
    copy_fixture(&dir);
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    std::fs::write(
        dir.join("manifest.json"),
        manifest.replace("\"version\": 1", "\"version\": 7"),
    )
    .unwrap();
    let err = match ModelLake::open(&dir, LakeConfig::default()) {
        Ok(_) => panic!("a future-version manifest must not open"),
        Err(e) => e,
    };
    assert!(
        matches!(err, LakeError::UnsupportedManifest { found: 7, .. }),
        "expected UnsupportedManifest, got: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regenerates the checked-in fixture. Run manually after an intentional
/// blob/card format change:
/// `cargo test -p mlake-core --test manifest_compat -- --ignored`
#[test]
#[ignore = "rewrites tests/fixtures/v1-lake; run manually"]
fn regenerate_v1_fixture() {
    let dir = fixture_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let lake = ModelLake::new(LakeConfig::default());
    lake.ingest_model("v1-alpha", &model(1), None).unwrap();
    lake.ingest_model("v1-beta", &model(2), None).unwrap();
    lake.export_v2(&dir).unwrap();
    // Downgrade the manifest to the v1 shape: version 1, no last_lsn.
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    let v1: String = manifest
        .replace("\"version\": 2", "\"version\": 1")
        .lines()
        .filter(|l| !l.contains("last_lsn"))
        .collect::<Vec<_>>()
        .join("\n");
    // The last_lsn line was last in the object: drop the now-trailing
    // comma on the line before it.
    let v1 = fix_trailing_comma(&v1);
    std::fs::write(dir.join("manifest.json"), v1).unwrap();
    let _ = std::fs::remove_dir_all(dir.join("wal"));
}

/// Regenerates the checked-in v2 fixture: a full-manifest snapshot in the
/// pre-segment format (`"version": 2`, `last_lsn`, no `segs/`). Pinned so
/// the eager v2 open path keeps working forever.
#[test]
#[ignore = "rewrites tests/fixtures/v2-lake; run manually"]
fn regenerate_v2_fixture() {
    let dir = v2_fixture_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let lake = ModelLake::new(LakeConfig::default());
    lake.ingest_model("v2-alpha", &model(11), None).unwrap();
    lake.ingest_model("v2-beta", &model(12), None).unwrap();
    lake.export_v2(&dir).unwrap();
    let _ = std::fs::remove_dir_all(dir.join("wal"));
    let _ = std::fs::remove_dir_all(dir.join("segs"));
}

/// Removes a comma left dangling before a closing brace/bracket after a
/// line was filtered out (enough JSON surgery for the fixture downgrade).
fn fix_trailing_comma(json: &str) -> String {
    let lines: Vec<&str> = json.lines().collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        let next_closes = lines
            .get(i + 1)
            .map(|n| {
                let t = n.trim_start();
                t.starts_with('}') || t.starts_with(']')
            })
            .unwrap_or(false);
        if next_closes && line.trim_end().ends_with(',') {
            let trimmed = line.trim_end().trim_end_matches(',');
            out.push(trimmed.to_string());
        } else {
            out.push((*line).to_string());
        }
    }
    out.join("\n")
}
