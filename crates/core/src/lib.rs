//! # mlake-core
//!
//! The **Model Lake** — the paper's primary contribution realised as a
//! system (Figure 2): a store of heterogeneous models plus the machinery
//! that makes them findable, comparable and auditable.
//!
//! Components (paper ↔ module):
//! * content-addressed artifact **storage** with a from-scratch SHA-256 —
//!   [`hash`], [`store`];
//! * the **registry**: models, datasets, benchmarks and their metadata —
//!   [`registry`];
//! * an append-only **event log** whose sequence numbers are the logical
//!   timestamps citations pin (§6 Data and Model Citation) — [`event`];
//! * the **indexer** (§5): fingerprint computation at ingest + HNSW indexes
//!   per viewpoint — wired inside [`lake`];
//! * the unified [`lake::ModelLake`] API: ingest, search, version-graph
//!   recovery, benchmarking, document generation, verification, auditing,
//!   citation, and MLQL querying ([`lake::ModelLake::prepare`]).
//!
//! ```no_run
//! use mlake_core::lake::{LakeConfig, ModelLake};
//!
//! let lake = ModelLake::new(LakeConfig::builder().name("demo").build().unwrap());
//! // ... ingest models, then parse once and execute as often as needed:
//! let q = lake.prepare("FIND MODELS WHERE domain = 'legal' LIMIT 5").unwrap();
//! let hits = q.run().unwrap();
//! # let _ = hits;
//! ```

mod blockstore;
mod cache;
mod compact;
mod durable;
mod gc;

pub mod error;
pub mod event;
pub mod hash;
pub mod lake;
pub mod persist;
pub mod populate;
pub mod registry;
pub mod store;

pub use error::{ErrorKind, LakeError};
pub use gc::GcReport;
pub use lake::{CompactionPolicy, LakeConfig, LakeConfigBuilder, ModelLake, PreparedQuery};
pub use registry::{ModelId, ModelRef};
