//! Reference-counting garbage collection (DESIGN.md §15).
//!
//! A durable lake accretes unreachable files in three ways: **orphan
//! blobs** (an ingest crashed between the atomic blob write and the WAL
//! record that would reference it), **dead segments** (superseded by a
//! major compaction, or written just before a crash that prevented the
//! superblock swap), and **stray temp files** (a `write_atomic` that died
//! between creating `<path>.tmp` and the rename). None of them are ever
//! read again — the superblock and the registry are the only roots — so
//! collecting them is pure reclamation.
//!
//! Reachability rules:
//! * a blob is live iff some registry entry's digest names it;
//! * a segment is live iff its sequence number is in the in-memory live
//!   set (which mirrors the last superblock written — both are updated
//!   under the `op_lock`);
//! * `*.tmp` files under `blobs/` or `segs/` are never live (a completed
//!   `write_atomic` always renames its temp file away).
//!
//! The collector runs under the `op_lock`, so no ingest or persist can
//! add a reference concurrently; deletion order is therefore free, and a
//! crash at *any* point during GC only leaves some garbage uncollected —
//! the next run (explicit [`ModelLake::gc`] or the opportunistic pass the
//! `mlake-compact` thread makes after each background compaction) picks
//! it up. GC never deletes a reachable file.

use crate::blockstore;
use crate::error::Result;
use crate::lake::{LakeShared, ModelLake};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What one garbage-collection pass reclaimed.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcReport {
    /// Content-addressed blobs no registry entry references.
    pub orphan_blobs: usize,
    /// Segment files outside the live superblock chain.
    pub dead_segments: usize,
    /// Stray `*.tmp` files from interrupted atomic writes.
    pub temp_files: usize,
    /// Total bytes reclaimed.
    pub bytes_reclaimed: u64,
}

impl GcReport {
    /// Total files removed.
    pub fn files_removed(&self) -> usize {
        self.orphan_blobs + self.dead_segments + self.temp_files
    }
}

/// The GC body, shared by the explicit facade call and the opportunistic
/// background pass. A no-op (empty report) on ephemeral lakes — nothing
/// is on disk to collect.
pub(crate) fn gc_shared(shared: &LakeShared) -> Result<GcReport> {
    let Some(link) = &shared.wal else {
        return Ok(GcReport::default());
    };
    // Exclude all mutators: no new blob or segment can become reachable
    // while the sweep runs.
    let _op = shared.op_lock.lock();
    let mut report = GcReport::default();

    // Live roots.
    let live_blobs: BTreeSet<String> = {
        let reg = shared.registry.read();
        reg.models.iter().map(|m| m.digest.to_hex()).collect()
    };
    let live_segs: BTreeSet<u64> = {
        // lock-order: 46 (core.segstate)
        shared.seg.lock().live.iter().copied().collect()
    };

    // Sweep blobs/: unreferenced blobs and stray temp files.
    let blob_dir = link.dir.join("blobs");
    if link.vfs.exists(&blob_dir) {
        for path in link.vfs.list(&blob_dir)? {
            let ext = path.extension().and_then(|e| e.to_str());
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            let dead = match ext {
                Some("tmp") => {
                    report.temp_files += 1;
                    true
                }
                Some("blob") if !live_blobs.contains(stem) => {
                    report.orphan_blobs += 1;
                    true
                }
                _ => false,
            };
            if dead {
                report.bytes_reclaimed += link.vfs.read(&path).map(|b| b.len() as u64).unwrap_or(0);
                link.vfs.remove_file(&path)?;
            }
        }
    }

    // Sweep segs/: segments the superblock no longer references.
    let seg_dir = blockstore::seg_dir(&link.dir);
    if link.vfs.exists(&seg_dir) {
        for path in link.vfs.list(&seg_dir)? {
            let dead = match path.extension().and_then(|e| e.to_str()) {
                Some("tmp") => {
                    report.temp_files += 1;
                    true
                }
                Some("seg") => match blockstore::parse_seg_name(&path) {
                    Some(seq) if !live_segs.contains(&seq) => {
                        report.dead_segments += 1;
                        true
                    }
                    _ => false,
                },
                _ => false,
            };
            if dead {
                report.bytes_reclaimed += link.vfs.read(&path).map(|b| b.len() as u64).unwrap_or(0);
                link.vfs.remove_file(&path)?;
            }
        }
    }

    if mlake_obs::enabled() {
        mlake_obs::counter!("gc.runs").inc();
        mlake_obs::counter!("gc.orphans").add(report.orphan_blobs as u64);
        mlake_obs::counter!("gc.dead_segments").add(report.dead_segments as u64);
        mlake_obs::counter!("gc.bytes_reclaimed").add(report.bytes_reclaimed);
    }
    Ok(report)
}

impl ModelLake {
    /// Collects unreachable on-disk state: orphan blobs from crashed
    /// ingests, segments superseded by compaction, and stray temp files
    /// (DESIGN.md §15). Ephemeral lakes return an empty report. Safe to
    /// call at any time; a crash mid-GC leaves the lake fully
    /// recoverable (only garbage is ever deleted).
    pub fn gc(&self) -> Result<GcReport> {
        let _span = mlake_obs::span("lake.gc");
        gc_shared(&self.shared)
    }
}
