//! SHA-256 (FIPS 180-4), implemented from scratch for content addressing.
//!
//! Model artifacts are addressed by the SHA-256 of their bytes, so identical
//! re-uploads deduplicate and any corruption is detectable — the storage
//! substrate a real hub relies on. Validated against the FIPS test vectors
//! in this module's tests.

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lower-case hex encoding.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-character hex string.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// First 8 hex characters, for display.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Shard routing key: the first 8 digest bytes as a little-endian u64.
    /// SHA-256 output is uniform, so masking the low bits spreads models
    /// evenly over power-of-two shard counts, and the key is a pure
    /// function of artifact content — replay and reopen route identically.
    pub fn route_key(&self) -> u64 {
        u64::from_le_bytes([
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5], self.0[6], self.0[7],
        ])
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Computes the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = H0;
    let bit_len = (data.len() as u64).wrapping_mul(8);
    // Padded message: data ++ 0x80 ++ zeros ++ 8-byte big-endian bit length.
    let mut padded = Vec::with_capacity(data.len() + 72);
    padded.extend_from_slice(data);
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in padded.chunks_exact(64) {
        for (t, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[t * 4],
                block[t * 4 + 1],
                block[t * 4 + 2],
                block[t * 4 + 3],
            ]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVS reference vectors.
    #[test]
    fn fips_vectors() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths that straddle the 55/56/64-byte padding edge cases must
        // all produce distinct, stable digests.
        let d55 = sha256(&[0u8; 55]);
        let d56 = sha256(&[0u8; 56]);
        let d64 = sha256(&[0u8; 64]);
        assert_ne!(d55, d56);
        assert_ne!(d56, d64);
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"model lake");
        let hex = d.to_hex();
        assert_eq!(Digest::from_hex(&hex), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
        assert_eq!(d.short().len(), 8);
        assert_eq!(format!("{d}"), hex);
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    #[test]
    fn route_key_is_le_prefix_and_stable() {
        let d = sha256(b"model lake");
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&d.0[..8]);
        assert_eq!(d.route_key(), u64::from_le_bytes(prefix));
        // Stable across calls and round trips (routing must be replayable).
        assert_eq!(
            Digest::from_hex(&d.to_hex()).map(|x| x.route_key()),
            Some(d.route_key())
        );
    }

    #[test]
    fn avalanche() {
        let a = sha256(b"model lake 1");
        let b = sha256(b"model lake 2");
        let differing_bytes = a.0.iter().zip(&b.0).filter(|(x, y)| x != y).count();
        assert!(differing_bytes > 24, "only {differing_bytes} bytes differ");
    }
}
