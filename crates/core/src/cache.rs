//! Generation-keyed LRU cache for facade query results (DESIGN.md §11).
//!
//! Repeated `similar`/MLQL queries against an unchanged lake are common —
//! interactive exploration, audit sweeps, MLQL sub-queries — and each one
//! re-runs fingerprinting plus an index search. [`QueryCache`] memoises the
//! final result, keyed by `(query digest, k, index generation)`.
//!
//! **Invalidation is by key, not by flush**: the generation component is the
//! event-log head, which advances on *every* lake mutation (ingest, card
//! update, registration, graph rebuild). A mutation therefore never has to
//! touch the cache — post-mutation lookups simply miss because their key
//! carries the new generation, and the stale entries age out of the LRU (or
//! are pruned when a newer-generation value is inserted). Over-invalidation
//! (e.g. a card update invalidating `similar` results) is deliberate: the
//! cache must never serve a result the current lake would not produce.

use crate::hash::Digest;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: content digest of the query, result size, lake generation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// SHA-256 of the canonicalised query text/parameters.
    pub digest: Digest,
    /// Requested result size `k` (0 when not applicable).
    pub k: u64,
    /// Event-log head at lookup time.
    pub generation: u64,
}

struct Entry<V> {
    /// Logical clock of the last touch (monotone per cache).
    stamp: u64,
    value: V,
}

struct Inner<V> {
    map: HashMap<CacheKey, Entry<V>>,
    tick: u64,
}

/// A small LRU map from [`CacheKey`] to a cloneable query result.
///
/// Capacity 0 disables the cache entirely (no storage, no `cache.*`
/// counters). Eviction scans for the least-recently-used entry — O(n) on
/// insert, which at the facade's default capacity (≤ a few hundred) is
/// noise next to the query it spares.
pub(crate) struct QueryCache<V> {
    capacity: usize,
    inner: Mutex<Inner<V>>,
}

impl<V: Clone> QueryCache<V> {
    pub(crate) fn new(capacity: usize) -> QueryCache<V> {
        QueryCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// `true` when caching is turned off (capacity 0).
    pub(crate) fn disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Looks up `key`, refreshing its LRU stamp; counts `cache.hit` /
    /// `cache.miss`.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<V> {
        if self.disabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let obs = mlake_obs::enabled();
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = tick;
                if obs {
                    mlake_obs::counter!("cache.hit").inc();
                }
                Some(entry.value.clone())
            }
            None => {
                if obs {
                    mlake_obs::counter!("cache.miss").inc();
                }
                None
            }
        }
    }

    /// Inserts a value, pruning dead generations and evicting the LRU
    /// entry when full.
    pub(crate) fn put(&self, key: CacheKey, value: V) {
        if self.disabled() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Entries from older generations can never hit again (the head
        // only advances); drop them rather than letting them squat in the
        // LRU.
        let generation = key.generation;
        inner.map.retain(|k, _| k.generation >= generation);
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, Entry { stamp: tick, value });
    }

    /// Number of live entries (test/introspection hook).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;

    fn key(text: &str, k: u64, generation: u64) -> CacheKey {
        CacheKey {
            digest: sha256(text.as_bytes()),
            k,
            generation,
        }
    }

    #[test]
    fn hit_after_put_miss_after_generation_bump() {
        let cache: QueryCache<Vec<u32>> = QueryCache::new(8);
        let k0 = key("q", 5, 1);
        assert_eq!(cache.get(&k0), None);
        cache.put(k0.clone(), vec![1, 2, 3]);
        assert_eq!(cache.get(&k0), Some(vec![1, 2, 3]));
        // Same query, newer generation: structurally a different key.
        assert_eq!(cache.get(&key("q", 5, 2)), None);
        // Different k: different key.
        assert_eq!(cache.get(&key("q", 6, 1)), None);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: QueryCache<u32> = QueryCache::new(2);
        cache.put(key("a", 1, 1), 1);
        cache.put(key("b", 1, 1), 2);
        // Touch "a" so "b" is the LRU victim.
        assert_eq!(cache.get(&key("a", 1, 1)), Some(1));
        cache.put(key("c", 1, 1), 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key("a", 1, 1)), Some(1));
        assert_eq!(cache.get(&key("b", 1, 1)), None);
        assert_eq!(cache.get(&key("c", 1, 1)), Some(3));
    }

    #[test]
    fn newer_generation_prunes_older_entries() {
        let cache: QueryCache<u32> = QueryCache::new(8);
        cache.put(key("a", 1, 1), 1);
        cache.put(key("b", 1, 1), 2);
        cache.put(key("c", 1, 2), 3);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key("c", 1, 2)), Some(3));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache: QueryCache<u32> = QueryCache::new(0);
        assert!(cache.disabled());
        cache.put(key("a", 1, 1), 1);
        assert_eq!(cache.get(&key("a", 1, 1)), None);
    }
}
