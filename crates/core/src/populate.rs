//! Populating a lake from the benchmark ground truth.
//!
//! Bridges `mlake-datagen`'s [`GroundTruth`] into a live [`ModelLake`]:
//! datasets are registered, per-domain holdout benchmarks created, and every
//! model ingested with either an **honest** card (built from the recorded
//! provenance) or a bare **skeleton** (the undocumented-lake condition the
//! documentation-generation experiment starts from).

use crate::error::Result;
use crate::lake::ModelLake;
use crate::registry::ModelId;
use mlake_benchlab::Benchmark;
use mlake_cards::{Lineage, ModelCard, TrainingDataRef};
use mlake_datagen::{corpus, tabular, Domain, GroundTruth};
use mlake_nn::Model;
use mlake_tensor::Seed;

/// How much documentation uploaded models carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardPolicy {
    /// Truthful cards generated from the recorded ground truth.
    Honest,
    /// Bare skeleton cards (name + architecture only).
    Skeleton,
}

/// Builds the truthful card of ground-truth model `i`.
pub fn honest_card(gt: &GroundTruth, i: usize) -> ModelCard {
    let m = &gt.models[i];
    let mut card = ModelCard::skeleton(&m.name, m.model.architecture().signature());
    card.training_algorithm = Some(m.algorithm.clone());
    card.task_tags = vec![match m.model {
        Model::Mlp(_) => "classification".to_string(),
        Model::Lm(_) => "language-modeling".to_string(),
    }];
    card.domains = vec![m.domain.name().to_string()];
    card.training_data = m
        .trained_on
        .iter()
        .filter_map(|id| {
            gt.dataset(*id).map(|d| TrainingDataRef {
                dataset_name: d.name.clone(),
                dataset_id: Some(id.0),
            })
        })
        .collect();
    let edge = gt.edges.iter().find(|e| e.child == i);
    card.lineage = Lineage {
        base_model: edge.map(|e| gt.models[e.parent].name.clone()),
        transform: m.transform.map(|t| t.name().to_string()),
        second_parent: edge
            .and_then(|e| e.second_parent)
            .map(|p| gt.models[p].name.clone()),
    };
    // Seed the free text with the family's controlled vocabulary
    // (DESIGN.md §16): a text search for these pseudo-words has
    // `gt.family_members(m.family)` as its exact relevant set, which is
    // what the retrieval experiment scores recall against.
    card.notes = format!(
        "family {} depth {} {}",
        m.family,
        m.depth,
        gt.family_vocab(m.family).join(" ")
    );
    card
}

/// Registers the standard per-domain holdout benchmarks: one classification
/// benchmark and one perplexity benchmark per built-in domain, drawn from
/// held-out seeds so no lake model trained on them.
pub fn register_domain_benchmarks(lake: &ModelLake, gt: &GroundTruth) -> Result<Vec<String>> {
    let root = Seed::new(gt.seed);
    let holdout = Seed::new(gt.seed ^ 0x5eed_1e55).derive("holdout");
    let mut names = Vec::new();
    let spec = tabular::TabularSpec::default();
    for domain in Domain::builtin() {
        let cls_name = format!("{domain}-holdout");
        let data = tabular::sample_tabular(
            &domain,
            &spec,
            90,
            root,
            holdout.derive(&cls_name),
        );
        lake.register_benchmark(
            Benchmark::classification(&cls_name, data),
            Some(domain.name().to_string()),
        )?;
        names.push(cls_name);

        let ppl_name = format!("{domain}-ppl");
        let text = corpus::sample_corpus(&domain, 600, root, holdout.derive(&ppl_name));
        lake.register_benchmark(
            Benchmark::perplexity(&ppl_name, text),
            Some(domain.name().to_string()),
        )?;
        names.push(ppl_name);
    }
    Ok(names)
}

/// Populates `lake` from `gt`: registers all datasets and domain benchmarks,
/// ingests every model under `policy`, and returns the ids in ground-truth
/// order (so `gt` indices and lake ids coincide).
pub fn populate_from_ground_truth(
    lake: &ModelLake,
    gt: &GroundTruth,
    policy: CardPolicy,
) -> Result<Vec<ModelId>> {
    for ds in &gt.datasets {
        lake.register_dataset(ds.clone())?;
    }
    register_domain_benchmarks(lake, gt)?;
    let mut ids = Vec::with_capacity(gt.models.len());
    for (i, m) in gt.models.iter().enumerate() {
        let card = match policy {
            CardPolicy::Honest => Some(honest_card(gt, i)),
            CardPolicy::Skeleton => None,
        };
        ids.push(lake.ingest_model(&m.name, &m.model, card)?);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lake::LakeConfig;
    use mlake_datagen::{generate_lake, LakeSpec};

    fn setup() -> (ModelLake, GroundTruth) {
        let gt = generate_lake(&LakeSpec::tiny(5));
        let lake = ModelLake::new(LakeConfig::default());
        (lake, gt)
    }

    #[test]
    fn populate_honest_preserves_order_and_counts() {
        let (lake, gt) = setup();
        let ids = populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
        assert_eq!(ids.len(), gt.models.len());
        assert_eq!(lake.len(), gt.models.len());
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.0 as usize, i);
            let entry = lake.entry(*id).unwrap();
            assert_eq!(entry.name, gt.models[i].name);
            assert!(entry.card.completeness() > 0.5);
        }
        // Benchmarks registered: 2 per builtin domain.
        assert_eq!(lake.benchmark_names().len(), 16);
    }

    #[test]
    fn skeleton_policy_yields_empty_cards() {
        let (lake, gt) = setup();
        populate_from_ground_truth(&lake, &gt, CardPolicy::Skeleton).unwrap();
        let entry = lake.entry(ModelId(0)).unwrap();
        assert_eq!(entry.card.completeness(), 0.0);
    }

    #[test]
    fn honest_cards_record_lineage() {
        let (_, gt) = setup();
        // Some derived model exists in the tiny lake.
        let derived = gt
            .models
            .iter()
            .position(|m| m.transform.is_some())
            .expect("tiny lake has derivations");
        let card = honest_card(&gt, derived);
        assert!(card.lineage.base_model.is_some());
        assert!(card.lineage.transform.is_some());
        assert!(!card.training_data.is_empty());
        // Bases carry no lineage.
        let base_card = honest_card(&gt, 0);
        assert!(base_card.lineage.base_model.is_none());
    }
}
