//! Immutable, checksummed block segments (DESIGN.md §15).
//!
//! A persisted lake is a **superblock** (`manifest.json`, format v3)
//! naming an ordered chain of immutable segment files under
//! `<dir>/segs/<seq>.seg`. Each segment holds the *delta* of catalogue
//! state since the previous one: model registrations (with their
//! fingerprints, so reopening never recomputes them), card overrides,
//! dataset/benchmark registrations, and the event-log slice. Folding the
//! chain in sequence order reproduces the catalogue exactly; later blocks
//! override earlier ones (a `CardOverride` replaces the card a `Model`
//! block carried).
//!
//! On-disk segment layout:
//!
//! ```text
//! "MLSG" | version u16 LE | block*
//! block := len u32 LE | crc32c u32 LE | payload (JSON-encoded Block)
//! ```
//!
//! Per-block CRC32C reuses `mlake-wal`'s Castagnoli table, so segment
//! corruption is detected block-precise and surfaces as the typed
//! [`LakeError::CorruptArtifact`]. Segments land via temp-file + rename
//! (`Vfs::write_atomic`) and are never modified afterwards: a crash
//! mid-write leaves either no segment or a whole one, and a crash after a
//! segment write but before the superblock swap leaves an unreachable
//! segment the garbage collector removes ([`crate::gc`]).

use crate::error::{LakeError, Result};
use crate::event::Event;
use mlake_benchlab::Benchmark;
use mlake_cards::ModelCard;
use mlake_wal::{crc32c, Vfs};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Segment file magic.
pub(crate) const SEGMENT_MAGIC: [u8; 4] = *b"MLSG";
/// Segment format version.
pub(crate) const SEGMENT_VERSION: u16 = 1;

/// One catalogue delta record inside a segment, in fold order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Block {
    /// A model registration: everything the registry needs, plus the
    /// three fingerprints so reopening never touches the blob.
    Model(ModelBlock),
    /// A card replacement for an already-persisted model.
    CardOverride {
        /// Lake-local model id (its position in the folded model list).
        id: u64,
        /// The replacement card.
        card: ModelCard,
    },
    /// A dataset registration.
    Dataset {
        /// The dataset.
        dataset: mlake_datagen::Dataset,
    },
    /// A benchmark registration.
    Benchmark {
        /// The benchmark.
        benchmark: Benchmark,
        /// Its domain label.
        domain: Option<String>,
    },
    /// The event-log slice this segment's delta covers.
    Events {
        /// Events, oldest first.
        events: Vec<Event>,
    },
    /// The full-text inverted index as of this segment (DESIGN.md §16).
    /// A whole-index snapshot — O(lake) — so only full exports write it;
    /// delta segments never do (persist must stay O(ops since last
    /// persist)). Folding keeps it only while no later `Model` /
    /// `CardOverride` block supersedes it: any later doc change, or a
    /// chain persisted before this kind existed, folds to `None` and the
    /// open path rebuilds from the folded cards instead (still metadata
    /// only — no blob reads).
    TextIndex {
        /// The serialized index.
        index: mlake_text::TextIndex,
    },
}

/// The model payload of a [`Block::Model`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ModelBlock {
    /// Unique model name.
    pub name: String,
    /// Hex content digest of the artifact blob.
    pub digest: String,
    /// Architecture signature.
    pub arch: String,
    /// Parameter count.
    pub params: u64,
    /// The model card (as of this segment; later overrides replace it).
    pub card: ModelCard,
    /// Intrinsic / extrinsic / hybrid fingerprints as f32 *bit patterns*
    /// (`f32::to_bits`), so the round trip is exact — JSON float
    /// formatting never touches them.
    pub fps: [Vec<u32>; 3],
}

/// Fingerprints → exact bit-pattern encoding.
pub(crate) fn fp_bits(fps: &[Vec<f32>; 3]) -> [Vec<u32>; 3] {
    [0, 1, 2].map(|i| fps[i].iter().map(|v| v.to_bits()).collect())
}

/// Bit-pattern encoding → fingerprints.
pub(crate) fn fp_floats(bits: &[Vec<u32>; 3]) -> [Vec<f32>; 3] {
    [0, 1, 2].map(|i| bits[i].iter().map(|b| f32::from_bits(*b)).collect())
}

/// The segment directory under a lake root.
pub(crate) fn seg_dir(dir: &Path) -> PathBuf {
    dir.join("segs")
}

/// Path of segment `seq` under a lake root.
pub(crate) fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    seg_dir(dir).join(format!("{seq:020}.seg"))
}

/// Parses a segment file name back to its sequence number.
pub(crate) fn parse_seg_name(path: &Path) -> Option<u64> {
    if path.extension().and_then(|e| e.to_str()) != Some("seg") {
        return None;
    }
    path.file_stem()?.to_str()?.parse().ok()
}

/// Encodes blocks into the on-disk segment byte layout.
pub(crate) fn encode_segment(blocks: &[Block]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    for block in blocks {
        let payload = serde_json::to_vec(block)
            .map_err(|e| LakeError::Internal(format!("segment block encode: {e}")))?;
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32c(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    Ok(out)
}

/// Decodes and CRC-checks a segment file's bytes.
pub(crate) fn decode_segment(bytes: &[u8], origin: &Path) -> Result<Vec<Block>> {
    let corrupt = |detail: String| {
        LakeError::CorruptArtifact(format!("segment {}: {detail}", origin.display()))
    };
    if bytes.len() < 6 || bytes[..4] != SEGMENT_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEGMENT_VERSION {
        return Err(corrupt(format!("unsupported segment version {version}")));
    }
    let mut blocks = Vec::new();
    let mut at = 6usize;
    while at < bytes.len() {
        if at + 8 > bytes.len() {
            return Err(corrupt(format!("truncated block header at byte {at}")));
        }
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let crc =
            u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        at += 8;
        if at + len > bytes.len() {
            return Err(corrupt(format!("truncated block payload at byte {at}")));
        }
        let payload = &bytes[at..at + len];
        if crc32c(payload) != crc {
            return Err(corrupt(format!("block CRC mismatch at byte {at}")));
        }
        let block: Block = serde_json::from_slice(payload)
            .map_err(|e| corrupt(format!("block decode at byte {at}: {e}")))?;
        blocks.push(block);
        at += len;
    }
    Ok(blocks)
}

/// Writes segment `seq` atomically (temp + rename). Returns the encoded
/// size in bytes.
pub(crate) fn write_segment(
    dir: &Path,
    vfs: &std::sync::Arc<dyn Vfs>,
    seq: u64,
    blocks: &[Block],
) -> Result<u64> {
    let bytes = encode_segment(blocks)?;
    vfs.create_dir_all(&seg_dir(dir))?;
    vfs.write_atomic(&seg_path(dir, seq), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Reads and decodes segment `seq`.
pub(crate) fn read_segment(
    dir: &Path,
    vfs: &std::sync::Arc<dyn Vfs>,
    seq: u64,
) -> Result<Vec<Block>> {
    let path = seg_path(dir, seq);
    let bytes = vfs.read(&path)?;
    decode_segment(&bytes, &path)
}

/// The catalogue state a folded segment chain reproduces.
#[derive(Debug, Default)]
pub(crate) struct Folded {
    /// Models in id order, cards already override-applied.
    pub models: Vec<ModelBlock>,
    /// Datasets in registration order.
    pub datasets: Vec<mlake_datagen::Dataset>,
    /// Benchmarks in registration order.
    pub benchmarks: Vec<(Benchmark, Option<String>)>,
    /// The full event log as of the last persisted segment.
    pub events: Vec<Event>,
    /// The text index snapshot, if one exists and no later model/card
    /// block superseded it (`None` also on chains persisted before the
    /// block kind existed — open rebuilds from the folded cards).
    pub text: Option<mlake_text::TextIndex>,
}

/// Folds a live segment chain, applying blocks in sequence order.
pub(crate) fn fold_segments(
    dir: &Path,
    vfs: &std::sync::Arc<dyn Vfs>,
    seqs: &[u64],
) -> Result<Folded> {
    let mut folded = Folded::default();
    for &seq in seqs {
        for block in read_segment(dir, vfs, seq)? {
            match block {
                Block::Model(m) => {
                    folded.models.push(m);
                    // Any doc change after a text snapshot makes the
                    // snapshot stale; drop it so open rebuilds instead.
                    folded.text = None;
                }
                Block::CardOverride { id, card } => {
                    let m = folded.models.get_mut(id as usize).ok_or_else(|| {
                        LakeError::CorruptArtifact(format!(
                            "segment {seq}: card override for unknown model id {id}"
                        ))
                    })?;
                    m.card = card;
                    folded.text = None;
                }
                Block::Dataset { dataset } => folded.datasets.push(dataset),
                Block::Benchmark { benchmark, domain } => {
                    folded.benchmarks.push((benchmark, domain));
                }
                Block::Events { events } => folded.events.extend(events),
                Block::TextIndex { index } => folded.text = Some(index),
            }
        }
    }
    Ok(folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_wal::RealFs;

    fn card(name: &str) -> ModelCard {
        ModelCard::skeleton(name, "mlp:2-2:relu")
    }

    fn model_block(name: &str, digest_seed: u8) -> ModelBlock {
        ModelBlock {
            name: name.into(),
            digest: format!("{:02x}", digest_seed).repeat(32),
            arch: "mlp:2-2:relu".into(),
            params: 8,
            card: card(name),
            fps: [vec![1.0f32.to_bits()], vec![2.5f32.to_bits()], vec![
                (-0.0f32).to_bits(),
            ]],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let blocks = vec![
            Block::Model(model_block("a", 1)),
            Block::CardOverride {
                id: 0,
                card: card("a-v2"),
            },
            Block::Events { events: vec![] },
        ];
        let bytes = encode_segment(&blocks).unwrap();
        let back = decode_segment(&bytes, Path::new("test.seg")).unwrap();
        assert_eq!(back.len(), 3);
        match &back[0] {
            Block::Model(m) => assert_eq!(m.name, "a"),
            other => panic!("expected model block, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_bits_round_trip_exactly() {
        let fps = [
            vec![0.1f32, -3.25, f32::MIN_POSITIVE],
            vec![1e-38, 2.0],
            vec![-0.0, 123.456],
        ];
        let back = fp_floats(&fp_bits(&fps));
        for (a, b) in fps.iter().zip(&back) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact round trip");
            }
        }
    }

    #[test]
    fn corruption_is_detected_block_precise() {
        let blocks = vec![Block::Model(model_block("a", 1))];
        let mut bytes = encode_segment(&blocks).unwrap();
        // Flip one payload bit.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_segment(&bytes, Path::new("x.seg")),
            Err(LakeError::CorruptArtifact(_))
        ));
        // Truncated tail.
        let blocks = vec![Block::Events { events: vec![] }];
        let bytes = encode_segment(&blocks).unwrap();
        assert!(decode_segment(&bytes[..bytes.len() - 2], Path::new("x.seg")).is_err());
        // Bad magic.
        assert!(decode_segment(b"NOPE\x01\x00", Path::new("x.seg")).is_err());
    }

    #[test]
    fn fold_applies_overrides_in_order() {
        let dir = std::env::temp_dir().join(format!("mlake-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = RealFs::shared();
        write_segment(&dir, &vfs, 1, &[Block::Model(model_block("a", 1))]).unwrap();
        let mut new_card = card("a");
        new_card.notes = "updated".into();
        write_segment(
            &dir,
            &vfs,
            2,
            &[
                Block::CardOverride {
                    id: 0,
                    card: new_card,
                },
                Block::Model(model_block("b", 2)),
            ],
        )
        .unwrap();
        let folded = fold_segments(&dir, &vfs, &[1, 2]).unwrap();
        assert_eq!(folded.models.len(), 2);
        assert_eq!(folded.models[0].card.notes, "updated");
        assert_eq!(folded.models[1].name, "b");
        // An override for a model the chain never registered is corruption.
        write_segment(
            &dir,
            &vfs,
            3,
            &[Block::CardOverride {
                id: 9,
                card: card("ghost"),
            }],
        )
        .unwrap();
        assert!(fold_segments(&dir, &vfs, &[1, 2, 3]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seg_names_parse_back() {
        assert_eq!(parse_seg_name(Path::new("00000000000000000042.seg")), Some(42));
        assert_eq!(parse_seg_name(Path::new("x.blob")), None);
        assert_eq!(parse_seg_name(Path::new("junk.seg")), None);
    }
}
