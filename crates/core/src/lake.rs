//! The [`ModelLake`]: the unified system of Figure 2.
//!
//! One object owns storage, registry, fingerprinting, indexing, the event
//! log and the cached version graph, and exposes every model-lake task the
//! paper formalises: ingestion, content-based search, version-graph
//! recovery, benchmarking, document generation, card verification, auditing,
//! citation and declarative MLQL querying.

use crate::cache::{CacheKey, QueryCache};
use crate::error::{LakeError, Result};
use crate::event::{EventKind, EventLog};
use crate::hash::sha256;
use crate::registry::{BenchmarkEntry, ModelEntry, ModelId, ModelRef, Registry};
use crate::store::{BlobStore, ResidentStore};
use mlake_benchlab::{Benchmark, Leaderboard, Score};
use mlake_cards::{
    audit::{run_audit, standard_questionnaire, AuditReport},
    Citation, ModelCard, ReportedMetric,
    {verify_card, CardEvidence, VerificationReport},
};
use mlake_fingerprint::{extrinsic::ProbeSet, FingerprintKind, Fingerprinter};
use mlake_index::{HnswConfig, HnswIndex, ShardedIndex, VectorIndex};
use mlake_nn::Model;
use mlake_query::{execute, parse, FieldValue, QueryError, QueryHit, QueryTarget};
use mlake_versioning::{recover_graph, RecoveredGraph, RecoveryOptions};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// When background compaction runs (DESIGN.md §13). Attached to a durable
/// lake via [`LakeConfigBuilder::background_compaction`]; after every WAL
/// append the lake checks these thresholds and, when either is crossed,
/// schedules a snapshot + WAL compaction on the background compactor
/// thread instead of the caller's. A threshold of 0 disables that trigger;
/// at least one must be positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CompactionPolicy {
    /// Compact once the WAL's live on-disk footprint reaches this many
    /// bytes (0 = never trigger on size).
    pub wal_bytes: u64,
    /// Compact once this many sealed WAL segments await collection
    /// (0 = never trigger on segment count).
    pub wal_segments: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            wal_bytes: 4 * 1024 * 1024,
            wal_segments: 4,
        }
    }
}

/// Lake configuration. Probe parameters must match the model population
/// (feature dimension, vocabulary) — defaults align with
/// `mlake_datagen::LakeSpec::default()`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LakeConfig {
    /// Lake name (appears in citations).
    pub name: String,
    /// Root seed for probes and sketches.
    pub seed: u64,
    /// Fingerprint sketch width.
    pub sketch_dim: usize,
    /// Classifier probe count / feature dimension / scale.
    pub probes: (usize, usize, f32),
    /// LM probe context count / context length / vocabulary.
    pub lm_probes: (usize, usize, usize),
    /// HNSW parameters for the three fingerprint indexes.
    pub hnsw: HnswConfig,
    /// Capacity of the facade query-result caches (`similar` and MLQL
    /// execution), in entries per cache. Results are keyed by
    /// `(query digest, k, event-log generation)`, so any lake mutation
    /// invalidates by construction. 0 disables caching.
    pub query_cache: usize,
    /// Commit durability of the write-ahead log on durable lakes
    /// ([`ModelLake::create`] / [`ModelLake::open`]); ignored by
    /// ephemeral in-memory lakes. [`mlake_wal::SyncPolicy::Always`]
    /// fsyncs every mutation; [`mlake_wal::SyncPolicy::Batch`] group-
    /// commits every N mutations.
    pub wal_sync: mlake_wal::SyncPolicy,
    /// Number of sub-shards each fingerprint index is partitioned into
    /// (power of two, 1..=256). The default 1 is exactly the unsharded
    /// behavior; with N > 1 vectors route by model digest and searches
    /// scatter-gather over the shards (DESIGN.md §13).
    pub shards: usize,
    /// Background compaction trigger policy for durable lakes (`None`
    /// keeps compaction explicit via [`ModelLake::persist`]). Ignored by
    /// ephemeral in-memory lakes, which have nothing to compact.
    pub compaction: Option<CompactionPolicy>,
    /// Resident-set cap in bytes for the blob store's in-memory cache
    /// (DESIGN.md §15). `0` — the default — is unbounded, the pre-v3
    /// behavior. On a durable lake with a cap, least-recently-used blobs
    /// whose bytes are safely on disk are evicted once the cap is
    /// exceeded and page back in on demand; ephemeral lakes never evict
    /// (memory is their only copy).
    #[serde(default)]
    pub resident_bytes: u64,
}

impl Default for LakeConfig {
    fn default() -> Self {
        LakeConfig {
            name: "model-lake".into(),
            seed: 0,
            sketch_dim: 64,
            probes: (32, 8, 2.5),
            lm_probes: (16, 2, 24),
            hnsw: HnswConfig::default(),
            query_cache: 128,
            wal_sync: mlake_wal::SyncPolicy::Always,
            shards: 1,
            compaction: None,
            resident_bytes: 0,
        }
    }
}

impl LakeConfig {
    /// Starts a validated builder seeded with the defaults.
    pub fn builder() -> LakeConfigBuilder {
        LakeConfigBuilder {
            config: LakeConfig::default(),
        }
    }

    /// Re-runs the builder's validation on an already-constructed config.
    ///
    /// `LakeConfig` derives `Deserialize` so it can travel over the wire
    /// (`mlake-proto`), which bypasses the builder; deserializers must call
    /// this before using the value so every `LakeConfig` in a running lake
    /// is builder-validated regardless of where it came from.
    pub fn validated(self) -> Result<LakeConfig> {
        LakeConfigBuilder { config: self }.build()
    }
}

/// Builder for [`LakeConfig`]. Field setters accept anything; invalid
/// combinations are rejected with [`LakeError::Config`] at
/// [`LakeConfigBuilder::build`], so a `LakeConfig` obtained through the
/// builder is always usable.
#[derive(Debug, Clone)]
pub struct LakeConfigBuilder {
    config: LakeConfig,
}

impl LakeConfigBuilder {
    /// Lake name (appears in citations).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    /// Root seed for probes and sketches.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Fingerprint sketch width.
    pub fn sketch_dim(mut self, dim: usize) -> Self {
        self.config.sketch_dim = dim;
        self
    }

    /// Classifier probe count / feature dimension / scale.
    pub fn probes(mut self, count: usize, dim: usize, scale: f32) -> Self {
        self.config.probes = (count, dim, scale);
        self
    }

    /// LM probe context count / context length / vocabulary size.
    pub fn lm_probes(mut self, contexts: usize, ctx_len: usize, vocab: usize) -> Self {
        self.config.lm_probes = (contexts, ctx_len, vocab);
        self
    }

    /// HNSW parameters for the three fingerprint indexes.
    pub fn hnsw(mut self, hnsw: HnswConfig) -> Self {
        self.config.hnsw = hnsw;
        self
    }

    /// Query-result cache capacity in entries per cache (0 disables).
    pub fn query_cache(mut self, capacity: usize) -> Self {
        self.config.query_cache = capacity;
        self
    }

    /// WAL commit durability for durable lakes (fsync every mutation vs
    /// count-based group commit).
    pub fn wal_sync(mut self, sync: mlake_wal::SyncPolicy) -> Self {
        self.config.wal_sync = sync;
        self
    }

    /// Number of sub-shards per fingerprint index (power of two,
    /// 1..=256). 1 — the default — is exactly the unsharded path.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Enables background WAL compaction under `policy` on durable lakes
    /// (DESIGN.md §13).
    pub fn background_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.config.compaction = Some(policy);
        self
    }

    /// Caps the blob store's resident set at `bytes` (0 = unbounded).
    /// Cold blobs page back in from disk on first touch (DESIGN.md §15).
    pub fn resident_bytes(mut self, bytes: u64) -> Self {
        self.config.resident_bytes = bytes;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<LakeConfig> {
        let c = &self.config;
        if c.name.trim().is_empty() {
            return Err(LakeError::Config("lake name must not be empty".into()));
        }
        if c.sketch_dim == 0 {
            return Err(LakeError::Config("sketch_dim must be positive".into()));
        }
        let (n_probe, probe_dim, probe_scale) = c.probes;
        if n_probe == 0 || probe_dim == 0 {
            return Err(LakeError::Config(format!(
                "classifier probes need positive count and dimension, got {n_probe}x{probe_dim}"
            )));
        }
        if !probe_scale.is_finite() || probe_scale <= 0.0 {
            return Err(LakeError::Config(format!(
                "probe scale must be finite and positive, got {probe_scale}"
            )));
        }
        let (n_ctx, ctx_len, vocab) = c.lm_probes;
        if n_ctx == 0 || ctx_len == 0 || vocab == 0 {
            return Err(LakeError::Config(format!(
                "LM probes need positive contexts/length/vocab, got {n_ctx}/{ctx_len}/{vocab}"
            )));
        }
        if c.hnsw.m < 2 {
            return Err(LakeError::Config(format!(
                "hnsw.m must be at least 2, got {}",
                c.hnsw.m
            )));
        }
        if c.hnsw.ef_construction == 0 || c.hnsw.ef_search == 0 {
            return Err(LakeError::Config(
                "hnsw ef_construction and ef_search must be positive".into(),
            ));
        }
        if c.shards == 0 || !c.shards.is_power_of_two() || c.shards > 256 {
            return Err(LakeError::Config(format!(
                "shards must be a power of two in 1..=256, got {}",
                c.shards
            )));
        }
        if let Some(p) = &c.compaction {
            if p.wal_bytes == 0 && p.wal_segments == 0 {
                return Err(LakeError::Config(
                    "background compaction needs a positive wal_bytes or \
                     wal_segments threshold"
                        .into(),
                ));
            }
        }
        Ok(self.config)
    }
}

/// Segment bookkeeping for incremental persistence (DESIGN.md §15): the
/// live segment chain plus high-water marks recording how much of the
/// catalogue the chain already covers, so `persist()` writes only the
/// delta. Guarded by its own mutex — rank **46 (core.segstate)** in the
/// §10 hierarchy — held only for in-memory bookkeeping, never across
/// file I/O.
#[derive(Debug, Default)]
pub(crate) struct SegState {
    /// Sequence numbers of the live segments, in fold order.
    pub(crate) live: Vec<u64>,
    /// Next segment sequence number to allocate (`max(live) + 1`;
    /// defaults such that the first persist writes segment 1).
    pub(crate) next_seq: u64,
    /// Models already covered by `live` (registry prefix length).
    pub(crate) models: usize,
    /// Datasets already covered by `live` (registry prefix length).
    pub(crate) datasets: usize,
    /// Benchmark names already covered by `live`.
    pub(crate) benchmarks: std::collections::BTreeSet<String>,
    /// Events already covered by `live` (log prefix length).
    pub(crate) events: usize,
    /// Ids whose card changed after their covering segment was written;
    /// the next delta emits `CardOverride` blocks for them.
    pub(crate) dirty_cards: std::collections::BTreeSet<u64>,
    /// Fingerprints of models ingested in this process (id → fps), so
    /// persisting them into Model blocks never recomputes probes.
    /// Cleared once a persist folds them into a segment.
    pub(crate) fresh_fps: HashMap<u64, [Vec<f32>; 3]>,
}

impl SegState {
    /// `next_seq` floor: sequence numbers start at 1.
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq.max(1)
    }
}

/// State shared between the lake facade and the background compactor
/// thread (DESIGN.md §13): exactly what a snapshot cut needs — the
/// configuration, the blob store, the registry, the event log, the
/// durability link and the op lock that makes the cut consistent.
/// Derived state (fingerprint indexes, version graph, caches) stays on
/// [`ModelLake`]: compaction never touches it.
pub(crate) struct LakeShared {
    pub(crate) config: LakeConfig,
    pub(crate) store: ResidentStore,
    pub(crate) registry: RwLock<Registry>,
    pub(crate) events: RwLock<EventLog>,
    /// Durability link (`None` for ephemeral in-memory lakes): the WAL
    /// every mutating facade op appends to before touching state above.
    /// See `crate::durable` and DESIGN.md §12.
    pub(crate) wal: Option<crate::durable::WalLink>,
    /// Full-text inverted index over card sections and model metadata
    /// (DESIGN.md §16). Lives on the shared state — unlike the other
    /// derived indexes — because persist snapshots it into a
    /// `Block::TextIndex`, and the background compactor only sees
    /// [`LakeShared`]. Rank **27 (core.text)**: leaf — never held across
    /// another ranked acquisition.
    pub(crate) text: RwLock<mlake_text::TextIndex>,
    /// Incremental-persist bookkeeping (DESIGN.md §15).
    pub(crate) seg: parking_lot::Mutex<SegState>,
    /// Serializes mutating facade ops so WAL append order always equals
    /// in-memory apply order (replay must reproduce state exactly).
    /// Read paths never take it. Lock order: `op_lock` is taken strictly
    /// before the compactor's state lock (DESIGN.md §10).
    pub(crate) op_lock: parking_lot::Mutex<()>,
}

/// How far past `k` each branch of [`ModelLake::hybrid_search`] fetches
/// before reciprocal-rank fusion: deeper pools let RRF reward mid-list
/// agreement between the text and vector rankings.
pub(crate) const HYBRID_POOL_FACTOR: usize = 3;

/// The fielded text document of one model (DESIGN.md §16): every card
/// section plus the identity metadata, each under its own [`TextField`]
/// so BM25 can weight a name hit above a notes hit. Pure function of
/// `(name, arch, card)` — ingest, card update, WAL replay and open-time
/// rebuild all produce the identical document, which is what keeps text
/// search bit-identical across restarts.
pub(crate) fn text_document(
    name: &str,
    arch: &str,
    card: &ModelCard,
) -> Vec<(mlake_text::Field, String)> {
    use mlake_text::Field;
    let mut doc = vec![
        (Field::Name, name.to_string()),
        (Field::Arch, arch.to_string()),
        (Field::Tags, card.task_tags.join(" ")),
        (Field::Domains, card.domains.join(" ")),
        (Field::Notes, card.notes.clone()),
    ];
    if let Some(alg) = &card.training_algorithm {
        doc.push((Field::Algorithm, alg.clone()));
    }
    let lineage: Vec<&str> = [
        card.lineage.base_model.as_deref(),
        card.lineage.transform.as_deref(),
        card.lineage.second_parent.as_deref(),
    ]
    .into_iter()
    .flatten()
    .collect();
    if !lineage.is_empty() {
        doc.push((Field::Lineage, lineage.join(" ")));
    }
    if !card.training_data.is_empty() {
        let names: Vec<&str> = card
            .training_data
            .iter()
            .map(|t| t.dataset_name.as_str())
            .collect();
        doc.push((Field::Datasets, names.join(" ")));
    }
    if !card.metrics.is_empty() {
        let names: Vec<&str> = card.metrics.iter().map(|m| m.benchmark.as_str()).collect();
        doc.push((Field::Benchmarks, names.join(" ")));
    }
    doc
}

/// One deferred fingerprint-index insert (lazy v3 open, DESIGN.md §15):
/// everything [`ModelLake::finish_ingest`] would have handed the HNSW
/// indexes, queued until the first search drains it.
pub(crate) struct PendingInsert {
    pub(crate) route: u64,
    pub(crate) id: u64,
    pub(crate) fps: [Vec<f32>; 3],
}

/// The model lake.
pub struct ModelLake {
    /// Snapshot-relevant state, shared with the compactor thread.
    pub(crate) shared: Arc<LakeShared>,
    fingerprinter: Fingerprinter,
    indexes: RwLock<HashMap<FingerprintKind, ShardedIndex<HnswIndex>>>,
    /// `Some` while index builds are deferred (lazy v3 open): queued
    /// inserts, drained by [`ModelLake::ensure_indexes`] on first search.
    /// `None` on the eager path — inserts go straight to the indexes.
    /// Rank **25 (core.index.pending)**: taken strictly before the HNSW
    /// entry/node locks (30/40) during the drain.
    pending_index: parking_lot::Mutex<Option<Vec<PendingInsert>>>,
    graph: RwLock<Option<RecoveredGraph>>,
    score_cache: RwLock<HashMap<(u64, String), Score>>,
    /// `similar()` results keyed by (query digest, k, event generation).
    similar_cache: QueryCache<Vec<(ModelId, f32)>>,
    /// MLQL execution results keyed the same way (k = 0).
    mlql_cache: QueryCache<Vec<QueryHit>>,
    /// `text_search` / `hybrid_search` results keyed the same way.
    text_cache: QueryCache<Vec<(ModelId, f32)>>,
    /// Background compaction thread, when the lake is durable and the
    /// config carries a [`CompactionPolicy`]. Spawned last during
    /// create/open; joined on drop.
    pub(crate) compactor: Option<crate::compact::Compactor>,
}

impl ModelLake {
    /// Creates an empty lake.
    // lint: no-span — constructor; observability may not be enabled yet
    pub fn new(config: LakeConfig) -> ModelLake {
        let (n_probe, probe_dim, probe_scale) = config.probes;
        let (n_ctx, ctx_len, vocab) = config.lm_probes;
        let probes = ProbeSet::standard(
            probe_dim,
            n_probe,
            probe_scale,
            vocab,
            n_ctx,
            ctx_len,
            mlake_tensor::Seed::new(config.seed).derive("lake-probes"),
        );
        let fingerprinter = Fingerprinter::new(config.sketch_dim, config.seed, probes);
        let mut indexes = HashMap::new();
        for kind in FingerprintKind::ALL {
            indexes.insert(
                kind,
                ShardedIndex::new(config.shards, || HnswIndex::new(config.hnsw))
                    .with_rescore_factor(config.hnsw.rescore_factor),
            );
        }
        let config_cache = config.query_cache;
        let resident_cap = config.resident_bytes;
        ModelLake {
            shared: Arc::new(LakeShared {
                config,
                store: ResidentStore::with_cap(resident_cap),
                registry: RwLock::new(Registry::default()),
                events: RwLock::new(EventLog::new()),
                text: RwLock::new(mlake_text::TextIndex::new(
                    mlake_text::Bm25Params::default(),
                )),
                wal: None,
                seg: parking_lot::Mutex::new(SegState::default()),
                op_lock: parking_lot::Mutex::new(()),
            }),
            fingerprinter,
            indexes: RwLock::new(indexes),
            pending_index: parking_lot::Mutex::new(None),
            graph: RwLock::new(None),
            score_cache: RwLock::new(HashMap::new()),
            similar_cache: QueryCache::new(config_cache),
            mlql_cache: QueryCache::new(config_cache),
            text_cache: QueryCache::new(config_cache),
            compactor: None,
        }
    }

    /// Exclusive access to the shared state during setup (create/open),
    /// before any clone of the `Arc` exists. Fails — instead of blocking
    /// or panicking — if called after the compactor thread holds a clone.
    pub(crate) fn shared_mut(&mut self) -> Result<&mut LakeShared> {
        Arc::get_mut(&mut self.shared).ok_or_else(|| {
            LakeError::Internal("lake shared state is aliased; setup mutation refused".into())
        })
    }

    /// Starts the background compactor when the configuration asks for
    /// one. Called at the end of durable create/open, after the WAL link
    /// is installed — the compactor clones the shared `Arc`, so no
    /// [`ModelLake::shared_mut`] setup mutation may follow.
    pub(crate) fn spawn_compactor(&mut self) -> Result<()> {
        if self.shared.config.compaction.is_some() && self.shared.wal.is_some() {
            self.compactor = Some(crate::compact::Compactor::spawn(Arc::clone(&self.shared))?);
        }
        Ok(())
    }

    /// Whether mutations are backed by a write-ahead log on disk.
    // lint: no-span — trivial accessor
    pub fn is_durable(&self) -> bool {
        self.shared.wal.is_some()
    }

    /// The lake's configuration.
    // lint: no-span — trivial accessor
    pub fn config(&self) -> &LakeConfig {
        &self.shared.config
    }

    /// The shared probe set / fingerprinter.
    // lint: no-span — trivial accessor
    pub fn fingerprinter(&self) -> &Fingerprinter {
        &self.fingerprinter
    }

    /// Number of models in the lake.
    // lint: no-span — trivial accessor
    pub fn len(&self) -> usize {
        self.shared.registry.read().models.len()
    }

    /// `true` when no models are stored.
    // lint: no-span — trivial accessor
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of blob payload currently resident in memory (the live value
    /// behind the `store.resident.bytes` gauge). On a lazily opened lake
    /// this starts at zero and grows as artifacts are touched.
    // lint: no-span — trivial accessor
    pub fn resident_bytes(&self) -> u64 {
        self.shared.store.resident_bytes()
    }

    // ------------------------------------------------------------------
    // Ingestion & catalogue
    // ------------------------------------------------------------------

    /// Ingests a model: stores the artifact content-addressed, computes and
    /// indexes all three fingerprints, installs the supplied card (or a
    /// skeleton), and logs the events. Names must be unique. On a durable
    /// lake the artifact blob and a WAL record hit disk before any
    /// in-memory state changes.
    pub fn ingest_model(
        &self,
        name: &str,
        model: &Model,
        card: Option<ModelCard>,
    ) -> Result<ModelId> {
        let _span = mlake_obs::span("lake.ingest");
        let _op = self.shared.op_lock.lock();
        {
            let reg = self.shared.registry.read();
            if reg.by_name.contains_key(name) {
                return Err(LakeError::Duplicate {
                    kind: "model",
                    name: name.into(),
                });
            }
        }
        if !model.is_finite() {
            return Err(LakeError::CorruptArtifact(format!(
                "model '{name}' contains non-finite parameters"
            )));
        }
        let bytes = model.to_bytes()?;
        let digest = self.shared.store.put(&bytes);
        let card =
            card.unwrap_or_else(|| ModelCard::skeleton(name, model.architecture().signature()));
        // Everything fallible runs before the WAL append so a logged op
        // is one that replay can always re-apply.
        let fps = self.compute_fingerprints(model)?;
        self.durable_ingest(name, &digest, &bytes, &card)?;
        self.finish_ingest(name, model, digest, card, fps)
    }

    /// All three fingerprints of a model, in [`FingerprintKind::ALL`] order.
    pub(crate) fn compute_fingerprints(&self, model: &Model) -> Result<[Vec<f32>; 3]> {
        Ok([
            self.fingerprinter.intrinsic(model),
            self.fingerprinter.extrinsic(model)?,
            self.fingerprinter.hybrid(model)?,
        ])
    }

    /// Pure in-memory half of ingestion, shared by the live path and WAL
    /// replay: registry entry, index inserts, events, graph invalidation.
    pub(crate) fn finish_ingest(
        &self,
        name: &str,
        model: &Model,
        digest: crate::hash::Digest,
        card: ModelCard,
        fps: [Vec<f32>; 3],
    ) -> Result<ModelId> {
        let arch = model.architecture().signature();
        let mut reg = self.shared.registry.write();
        let id = ModelId(reg.models.len() as u64);
        {
            // Vectors route to sub-shards by artifact digest, not by the
            // lake-local id: the digest is a pure function of content, so
            // WAL replay and snapshot reload route every model to the same
            // shard and searches stay bit-identical across restarts.
            let route = digest.route_key();
            // lock-order: 25 (core.index.pending)
            let mut pending = self.pending_index.lock();
            if let Some(queue) = pending.as_mut() {
                // Deferred-build mode (lazy v3 open): queue the insert;
                // ensure_indexes drains the queue — in this same id
                // order, so the HNSW build stays deterministic — on
                // first search.
                queue.push(PendingInsert {
                    route,
                    id: id.0,
                    fps: fps.clone(),
                });
            } else {
                drop(pending);
                let [intrinsic, extrinsic, hybrid] = &fps;
                let mut idx = self.indexes.write();
                for (kind, fp) in [
                    (FingerprintKind::Intrinsic, intrinsic),
                    (FingerprintKind::Extrinsic, extrinsic),
                    (FingerprintKind::Hybrid, hybrid),
                ] {
                    idx.get_mut(&kind)
                        .ok_or_else(|| {
                            LakeError::Internal(format!("fingerprint index {kind:?} missing"))
                        })?
                        .insert_by_key(route, id.0, fp)?;
                }
            }
        }
        let text_doc = text_document(name, &arch, &card);
        let tags = card.task_tags.clone();
        reg.models.push(ModelEntry {
            id,
            name: name.into(),
            arch,
            digest,
            params: model.num_params() as u64,
            card,
            tags,
        });
        reg.by_name.insert(name.into(), id);
        drop(reg);
        {
            // lock-order: 27 (core.text)
            self.shared.text.write().insert(id.0, &text_doc);
        }
        {
            // Stash the fingerprints for the next persist's Model block
            // (cleared once a segment covers this model).
            // lock-order: 46 (core.segstate)
            self.shared.seg.lock().fresh_fps.insert(id.0, fps);
        }
        {
            let mut ev = self.shared.events.write();
            ev.append(EventKind::ModelIngested, name);
            ev.append(EventKind::CardUpdated, name);
        }
        // The version graph is stale now.
        *self.graph.write() = None;
        Ok(id)
    }

    /// Resolves any model identity — id, name or content digest — to the
    /// lake-local [`ModelId`]. All facade reads funnel through here, so the
    /// three identities are interchangeable everywhere.
    // lint: no-span — identity funnel on every read path; a span here
    // would dominate the recorder with noise
    pub fn resolve<'a>(&self, model: impl Into<ModelRef<'a>>) -> Result<ModelId> {
        let r = model.into();
        let reg = self.shared.registry.read();
        let found = match r {
            ModelRef::Id(id) => reg.model(id).map(|e| e.id),
            ModelRef::Name(name) => reg.id_of(name),
            ModelRef::Digest(d) => reg.models.iter().find(|e| &e.digest == d).map(|e| e.id),
        };
        found.ok_or_else(|| LakeError::NotFound {
            kind: "model",
            name: r.to_string(),
        })
    }

    /// Decodes a model artifact from the store.
    pub fn model<'a>(&self, model: impl Into<ModelRef<'a>>) -> Result<Model> {
        let _span = mlake_obs::span("lake.model.decode");
        let id = self.resolve(model)?;
        let digest = {
            let reg = self.shared.registry.read();
            reg.model(id)
                .ok_or_else(|| LakeError::NotFound {
                    kind: "model",
                    name: id.to_string(),
                })?
                .digest
        };
        let bytes = self.shared.store.get(&digest)?;
        Model::from_bytes(&bytes).map_err(|e| LakeError::CorruptArtifact(e.to_string()))
    }

    /// Registry entry snapshot of a model.
    // lint: no-span — cheap registry clone on every read path
    pub fn entry<'a>(&self, model: impl Into<ModelRef<'a>>) -> Result<ModelEntry> {
        let id = self.resolve(model)?;
        self.shared.registry
            .read()
            .model(id)
            .cloned()
            .ok_or_else(|| LakeError::NotFound {
                kind: "model",
                name: id.to_string(),
            })
    }

    /// All model names in id order.
    // lint: no-span — trivial accessor
    pub fn model_names(&self) -> Vec<String> {
        self.shared.registry
            .read()
            .models
            .iter()
            .map(|m| m.name.clone())
            .collect()
    }

    /// Replaces a model's card. Accepts any model identity
    /// (id / name / digest), like every other facade entry point.
    pub fn update_card<'a>(&self, model: impl Into<ModelRef<'a>>, card: ModelCard) -> Result<()> {
        let _span = mlake_obs::span("lake.card.update");
        let _op = self.shared.op_lock.lock();
        let id = self.resolve(model)?;
        self.wal_update_card(id, &card)?;
        self.apply_update_card(id, card)
    }

    /// In-memory half of [`ModelLake::update_card`] (shared with replay).
    pub(crate) fn apply_update_card(&self, id: ModelId, card: ModelCard) -> Result<()> {
        let mut reg = self.shared.registry.write();
        let entry = reg.model_mut(id).ok_or_else(|| LakeError::NotFound {
            kind: "model",
            name: id.to_string(),
        })?;
        entry.tags = card.task_tags.clone();
        let name = entry.name.clone();
        entry.card = card;
        let text_doc = text_document(&name, &entry.arch, &entry.card);
        drop(reg);
        {
            // lock-order: 27 (core.text)
            self.shared.text.write().insert(id.0, &text_doc);
        }
        {
            // The next delta segment must carry a CardOverride for this
            // model (persist skips ids its fresh Model blocks cover).
            // lock-order: 46 (core.segstate)
            self.shared.seg.lock().dirty_cards.insert(id.0);
        }
        self.shared.events.write().append(EventKind::CardUpdated, name);
        Ok(())
    }

    /// Registers a dataset (names unique).
    pub fn register_dataset(&self, dataset: mlake_datagen::Dataset) -> Result<()> {
        let _span = mlake_obs::span("lake.register.dataset");
        let _op = self.shared.op_lock.lock();
        if self
            .shared
            .registry
            .read()
            .datasets
            .iter()
            .any(|d| d.name == dataset.name)
        {
            return Err(LakeError::Duplicate {
                kind: "dataset",
                name: dataset.name,
            });
        }
        self.wal_register_dataset(&dataset)?;
        self.apply_register_dataset(dataset)
    }

    /// In-memory half of [`ModelLake::register_dataset`] (shared with
    /// replay and snapshot load).
    pub(crate) fn apply_register_dataset(&self, dataset: mlake_datagen::Dataset) -> Result<()> {
        let mut reg = self.shared.registry.write();
        let name = dataset.name.clone();
        reg.datasets.push(dataset);
        drop(reg);
        self.shared.events
            .write()
            .append(EventKind::DatasetRegistered, name);
        Ok(())
    }

    /// Registers a benchmark with an optional domain label (names unique).
    pub fn register_benchmark(&self, benchmark: Benchmark, domain: Option<String>) -> Result<()> {
        let _span = mlake_obs::span("lake.register.benchmark");
        let _op = self.shared.op_lock.lock();
        if self.shared.registry.read().benchmarks.contains_key(&benchmark.name) {
            return Err(LakeError::Duplicate {
                kind: "benchmark",
                name: benchmark.name,
            });
        }
        self.wal_register_benchmark(&benchmark, &domain)?;
        self.apply_register_benchmark(benchmark, domain)
    }

    /// In-memory half of [`ModelLake::register_benchmark`] (shared with
    /// replay and snapshot load).
    pub(crate) fn apply_register_benchmark(
        &self,
        benchmark: Benchmark,
        domain: Option<String>,
    ) -> Result<()> {
        let mut reg = self.shared.registry.write();
        let name = benchmark.name.clone();
        reg.benchmarks
            .insert(name.clone(), BenchmarkEntry { benchmark, domain });
        drop(reg);
        self.shared.events
            .write()
            .append(EventKind::BenchmarkRegistered, name);
        Ok(())
    }

    /// Names of registered benchmarks.
    // lint: no-span — trivial accessor
    pub fn benchmark_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.registry.read().benchmarks.keys().cloned().collect();
        names.sort();
        names
    }

    // ------------------------------------------------------------------
    // Search (§3 Model Search)
    // ------------------------------------------------------------------

    /// Content-based related-model search ("model as query", Lu et al.):
    /// the `k` models most similar to `id` under fingerprint `kind`.
    /// Similarity is `1 − cosine distance ∈ [0, 1]`-ish; self is excluded.
    pub fn similar<'a>(
        &self,
        model: impl Into<ModelRef<'a>>,
        kind: FingerprintKind,
        k: usize,
    ) -> Result<Vec<(ModelId, f32)>> {
        let _span = mlake_obs::span("lake.similar");
        let id = self.resolve(model)?;
        self.ensure_indexes()?;
        // Cache key: canonical query text digested, k, and the event-log
        // head as generation — any lake mutation bumps the head, so stale
        // results are unreachable by construction (see `crate::cache`).
        // The shard count is part of the text: results from differently-
        // sharded layouts are never interchangeable, even at identical
        // generations (approximate inner indexes partition their beams
        // differently per shard count).
        let key = CacheKey {
            digest: sha256(
                format!(
                    "similar|{kind:?}|{}|shards={}",
                    id.0, self.shared.config.shards
                )
                .as_bytes(),
            ),
            k: k as u64,
            generation: self.shared.events.read().head(),
        };
        if let Some(hits) = self.similar_cache.get(&key) {
            return Ok(hits);
        }
        let model = self.model(id)?;
        let fp = self.fingerprinter.compute(kind, &model)?;
        let idx = self.indexes.read();
        let index = idx
            .get(&kind)
            .ok_or_else(|| LakeError::Internal(format!("fingerprint index {kind:?} missing")))?;
        let hits = index.search(&fp, k + 1)?;
        let out: Vec<(ModelId, f32)> = hits
            .into_iter()
            .filter(|h| h.id != id.0)
            .take(k)
            .map(|h| (ModelId(h.id), 1.0 - h.distance))
            .collect();
        self.similar_cache.put(key, out.clone());
        Ok(out)
    }

    /// Full-text search over card sections and model metadata
    /// (DESIGN.md §16): the `k` models ranked by Okapi BM25 against
    /// `query`. Results are deterministic — bit-identical across thread
    /// counts, restarts and WAL replay — and invalidate on any lake
    /// mutation via the generation-keyed cache.
    pub fn text_search(&self, query: &str, k: usize) -> Result<Vec<(ModelId, f32)>> {
        let _span = mlake_obs::span("lake.text");
        let key = CacheKey {
            digest: sha256(format!("text|{query}").as_bytes()),
            k: k as u64,
            generation: self.shared.events.read().head(),
        };
        if let Some(hits) = self.text_cache.get(&key) {
            return Ok(hits);
        }
        let out: Vec<(ModelId, f32)> = {
            // lock-order: 27 (core.text)
            self.shared.text.read().search(query, k)
        }
        .into_iter()
        .map(|(doc, score)| (ModelId(doc), score))
        .collect();
        self.text_cache.put(key, out.clone());
        Ok(out)
    }

    /// Hybrid retrieval (DESIGN.md §16): reciprocal-rank fusion of the
    /// BM25 text ranking for `query` with the `kind`-fingerprint vector
    /// ranking around `model`. Each branch over-fetches
    /// [`HYBRID_POOL_FACTOR`]`·k` candidates so fusion has mid-list
    /// agreement to reward; the anchor model itself is excluded from
    /// both lists. Scores are RRF mass, not BM25 or cosine values.
    pub fn hybrid_search<'a>(
        &self,
        query: &str,
        model: impl Into<ModelRef<'a>>,
        kind: FingerprintKind,
        k: usize,
    ) -> Result<Vec<(ModelId, f32)>> {
        let _span = mlake_obs::span("lake.hybrid");
        let id = self.resolve(model)?;
        let key = CacheKey {
            digest: sha256(
                format!(
                    "hybrid|{kind:?}|{}|shards={}|{query}",
                    id.0, self.shared.config.shards
                )
                .as_bytes(),
            ),
            k: k as u64,
            generation: self.shared.events.read().head(),
        };
        if let Some(hits) = self.text_cache.get(&key) {
            return Ok(hits);
        }
        let pool = k.max(1) * HYBRID_POOL_FACTOR;
        let text_ranks: Vec<u64> = {
            // lock-order: 27 (core.text)
            self.shared.text.read().search(query, pool + 1)
        }
        .into_iter()
        .map(|(doc, _)| doc)
        .filter(|doc| *doc != id.0)
        .take(pool)
        .collect();
        let vec_ranks: Vec<u64> = self
            .similar(id, kind, pool)?
            .into_iter()
            .map(|(m, _)| m.0)
            .collect();
        let out: Vec<(ModelId, f32)> =
            mlake_text::rrf_fuse(&[text_ranks, vec_ranks], mlake_text::RRF_C, k)
                .into_iter()
                .map(|(doc, score)| (ModelId(doc), score))
                .collect();
        self.text_cache.put(key, out.clone());
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Versioning (§3 Model Versioning)
    // ------------------------------------------------------------------

    /// Rebuilds the version graph. `known_roots` follows hub practice where
    /// foundation models are known; pass `None` for blind recovery.
    pub fn rebuild_version_graph(
        &self,
        known_roots: Option<Vec<ModelId>>,
    ) -> Result<RecoveredGraph> {
        let _span = mlake_obs::span("lake.graph.rebuild");
        let _op = self.shared.op_lock.lock();
        let n = self.len();
        let mut models = Vec::with_capacity(n);
        for i in 0..n {
            models.push(self.model(ModelId(i as u64))?);
        }
        let opts = RecoveryOptions {
            known_roots: known_roots.map(|ids| ids.into_iter().map(|i| i.0 as usize).collect()),
            ..RecoveryOptions::default()
        };
        let graph = recover_graph(&models, Some(&self.fingerprinter.probes), &opts);
        self.wal_graph_rebuilt()?;
        *self.graph.write() = Some(graph.clone());
        self.shared.events.write().append(EventKind::GraphRebuilt, "*");
        Ok(graph)
    }

    /// Replay half of [`ModelLake::rebuild_version_graph`]: records the
    /// event and invalidates the cached graph; the graph itself is
    /// derived state and recomputes deterministically on next use.
    pub(crate) fn apply_graph_rebuilt(&self) {
        *self.graph.write() = None;
        self.shared.events.write().append(EventKind::GraphRebuilt, "*");
    }

    /// The current version graph (rebuilding blind if stale/absent).
    // lint: no-span — cache hit is a clone; the rebuild path spans itself
    pub fn version_graph(&self) -> Result<RecoveredGraph> {
        if let Some(g) = self.graph.read().clone() {
            return Ok(g);
        }
        self.rebuild_version_graph(None)
    }

    /// Lineage path of a model from its recovered root, root first, as names.
    pub fn lineage_path<'a>(&self, model: impl Into<ModelRef<'a>>) -> Result<Vec<String>> {
        let _span = mlake_obs::span("lake.lineage");
        let id = self.resolve(model)?;
        let graph = self.version_graph()?;
        let mut path = vec![id.0 as usize];
        let mut cur = id.0 as usize;
        while let Some(p) = graph.parent_of(cur) {
            path.push(p);
            cur = p;
            if path.len() > graph.num_models {
                break;
            }
        }
        path.reverse();
        let reg = self.shared.registry.read();
        Ok(path
            .into_iter()
            .filter_map(|i| reg.model(ModelId(i as u64)).map(|m| m.name.clone()))
            .collect())
    }

    // ------------------------------------------------------------------
    // Benchmarking (§3 Benchmarking)
    // ------------------------------------------------------------------

    /// `S(M, B)` with caching.
    pub fn score_of<'a>(&self, model: impl Into<ModelRef<'a>>, benchmark: &str) -> Result<Score> {
        let _span = mlake_obs::span("lake.score");
        let id = self.resolve(model)?;
        if let Some(s) = self.score_cache.read().get(&(id.0, benchmark.to_string())) {
            return Ok(s.clone());
        }
        let bench = {
            let reg = self.shared.registry.read();
            reg.benchmarks
                .get(benchmark)
                .ok_or_else(|| LakeError::NotFound {
                    kind: "benchmark",
                    name: benchmark.into(),
                })?
                .benchmark
                .clone()
        };
        let model = self.model(id)?;
        let score = bench.score(&model)?;
        self.score_cache
            .write()
            .insert((id.0, benchmark.to_string()), score.clone());
        Ok(score)
    }

    /// Full leaderboard of a registered benchmark over the lake.
    pub fn leaderboard(&self, benchmark: &str) -> Result<Leaderboard> {
        let _span = mlake_obs::span("lake.leaderboard");
        let bench = {
            let reg = self.shared.registry.read();
            reg.benchmarks
                .get(benchmark)
                .ok_or_else(|| LakeError::NotFound {
                    kind: "benchmark",
                    name: benchmark.into(),
                })?
                .benchmark
                .clone()
        };
        let n = self.len();
        let mut models = Vec::with_capacity(n);
        for i in 0..n {
            models.push((i as u64, self.model(ModelId(i as u64))?));
        }
        let lb = Leaderboard::run(&bench, models.iter().map(|(id, m)| (*id, m)))?;
        // Warm the score cache from the leaderboard run.
        let mut cache = self.score_cache.write();
        for row in &lb.rows {
            cache.insert((row.model_id, benchmark.to_string()), row.score.clone());
        }
        Ok(lb)
    }

    // ------------------------------------------------------------------
    // Documentation generation, verification, audit (§6)
    // ------------------------------------------------------------------

    /// Measured evidence about a model: re-scored benchmarks, recovered
    /// lineage, predicted domain. This is what verification trusts instead
    /// of the card.
    pub fn evidence_for<'a>(&self, model: impl Into<ModelRef<'a>>) -> Result<CardEvidence> {
        let _span = mlake_obs::span("lake.evidence");
        let id = self.resolve(model)?;
        let model = self.model(id)?;
        let bench_names = self.benchmark_names();
        let mut measured = Vec::new();
        let mut best_domain: Option<(String, f32)> = None;
        for name in &bench_names {
            let (applicable, domain) = {
                let reg = self.shared.registry.read();
                let e = &reg.benchmarks[name];
                (e.benchmark.applicable(&model), e.domain.clone())
            };
            if !applicable {
                continue;
            }
            let score = self.score_of(id, name)?;
            if let Some(d) = domain {
                let goodness = score.goodness();
                if best_domain.as_ref().is_none_or(|(_, g)| goodness > *g) {
                    best_domain = Some((d, goodness));
                }
            }
            measured.push(ReportedMetric {
                benchmark: score.benchmark.clone(),
                metric: score.metric.clone(),
                value: score.value,
            });
        }
        let graph = self.version_graph()?;
        let (recovered_base, recovered_transform) = {
            let reg = self.shared.registry.read();
            match graph.edges.iter().find(|e| e.child == id.0 as usize) {
                Some(e) => (
                    reg.model(ModelId(e.parent as u64)).map(|m| m.name.clone()),
                    Some(e.kind.name().to_string()),
                ),
                None => (None, None),
            }
        };
        Ok(CardEvidence {
            measured_metrics: measured,
            recovered_base,
            recovered_transform,
            predicted_domain: best_domain.map(|(d, _)| d),
        })
    }

    /// Auto-generates a model card from lake evidence — the §6 document-
    /// generation application. The result reflects what the lake can
    /// *measure*, independent of any uploaded documentation.
    pub fn generate_card<'a>(&self, model: impl Into<ModelRef<'a>>) -> Result<ModelCard> {
        let _span = mlake_obs::span("lake.card.generate");
        let id = self.resolve(model)?;
        let entry = self.entry(id)?;
        let model = self.model(id)?;
        let evidence = self.evidence_for(id)?;
        let mut card = ModelCard::skeleton(&entry.name, &entry.arch);
        card.task_tags = vec![match model {
            Model::Mlp(_) => "classification".to_string(),
            Model::Lm(_) => "language-modeling".to_string(),
        }];
        if let Some(d) = &evidence.predicted_domain {
            card.domains = vec![d.clone()];
        }
        card.metrics = evidence.measured_metrics.clone();
        card.lineage.base_model = evidence.recovered_base.clone();
        card.lineage.transform = evidence.recovered_transform.clone();
        card.quantitative = Some(mlake_cards::NutritionalLabel {
            demographic_parity_gap: None,
            group_accuracies: None,
            calibration_ece: None,
            parameter_count: Some(entry.params),
        });
        card.notes = format!(
            "Auto-generated by {} from measured evidence; artifact {}.",
            self.shared.config.name,
            entry.digest.short()
        );
        card.created_at = self.shared.events.read().head();
        Ok(card)
    }

    /// Verifies a model's *uploaded* card against measured evidence.
    pub fn verify_model_card<'a>(
        &self,
        model: impl Into<ModelRef<'a>>,
    ) -> Result<VerificationReport> {
        let _span = mlake_obs::span("lake.verify");
        let id = self.resolve(model)?;
        let entry = self.entry(id)?;
        let evidence = self.evidence_for(id)?;
        Ok(verify_card(&entry.card, &evidence))
    }

    /// Runs the standard audit questionnaire against a model.
    pub fn audit_model<'a>(&self, model: impl Into<ModelRef<'a>>) -> Result<AuditReport> {
        let _span = mlake_obs::span("lake.audit");
        let id = self.resolve(model)?;
        let entry = self.entry(id)?;
        let evidence = self.evidence_for(id)?;
        Ok(run_audit(&entry.card, &evidence, &standard_questionnaire()))
    }

    /// Generates a graph-timestamped citation (§6 Data and Model Citation).
    pub fn cite<'a>(&self, model: impl Into<ModelRef<'a>>) -> Result<Citation> {
        let _span = mlake_obs::span("lake.cite");
        let id = self.resolve(model)?;
        let entry = self.entry(id)?;
        let version_path = self.lineage_path(id)?;
        Ok(Citation {
            model_name: entry.name,
            version_path,
            graph_timestamp: self.shared.events.read().graph_timestamp(),
            lake_name: self.shared.config.name.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Declarative queries (§6 Model Search)
    // ------------------------------------------------------------------

    /// Parses an MLQL query once into a typed handle that can be executed,
    /// explained or counted any number of times without re-parsing:
    ///
    /// ```ignore
    /// let q = lake.prepare("FIND MODELS WHERE domain = 'legal'")?;
    /// let hits = q.run()?;       // execute
    /// let plan = q.explain();    // access plan, no execution
    /// let n = q.count()?;        // cardinality
    /// ```
    pub fn prepare(&self, mlql: &str) -> Result<PreparedQuery<'_>> {
        let _span = mlake_obs::span("lake.query.prepare");
        let query = parse(mlql)?;
        Ok(PreparedQuery {
            lake: self,
            query,
            text: mlql.to_string(),
        })
    }

    /// Current graph timestamp (for citation stability tests).
    // lint: no-span — trivial accessor
    pub fn graph_timestamp(&self) -> u64 {
        self.shared.events.read().graph_timestamp()
    }

    /// Event-log snapshot.
    // lint: no-span — trivial accessor
    pub fn events(&self) -> Vec<crate::event::Event> {
        self.shared.events.read().events().to_vec()
    }

    // ------------------------------------------------------------------
    // Persistence plumbing (crate-internal; see `persist` module)
    // ------------------------------------------------------------------

    pub(crate) fn restore_event_log(&self, log: EventLog) {
        *self.shared.events.write() = log;
    }

    /// Installs a persisted text-index snapshot (segment-fold open path,
    /// DESIGN.md §16). No card is re-tokenized, so lazy open stays lazy.
    pub(crate) fn restore_text_index(&self, index: mlake_text::TextIndex) {
        // lock-order: 27 (core.text)
        *self.shared.text.write() = index;
    }

    /// Rebuilds the text index from every registry entry's card — the
    /// open fallback for chains persisted before `Block::TextIndex`
    /// existed. Insertion order is id order, exactly what incremental
    /// ingestion produced, so the rebuilt index (and every search over
    /// it) is bit-identical to the live lake's.
    pub(crate) fn rebuild_text_index(&self) {
        let mut text = mlake_text::TextIndex::new(mlake_text::Bm25Params::default());
        {
            let reg = self.shared.registry.read();
            for entry in &reg.models {
                text.insert(
                    entry.id.0,
                    &text_document(&entry.name, &entry.arch, &entry.card),
                );
            }
        }
        // lock-order: 27 (core.text)
        *self.shared.text.write() = text;
    }

    /// Switches the lake into deferred index-build mode (lazy v3 open):
    /// subsequent [`ModelLake::finish_ingest`] calls queue their HNSW
    /// inserts instead of applying them. [`ModelLake::ensure_indexes`]
    /// drains the queue on first search.
    pub(crate) fn defer_index_builds(&self) {
        // lock-order: 25 (core.index.pending)
        let mut pending = self.pending_index.lock();
        if pending.is_none() {
            *pending = Some(Vec::new());
        }
    }

    /// Queues one deferred index insert (the segment-fold open path,
    /// which carries persisted fingerprints instead of recomputing).
    /// Implies deferred mode.
    pub(crate) fn queue_index_insert(&self, route: u64, id: u64, fps: [Vec<f32>; 3]) {
        // lock-order: 25 (core.index.pending)
        let mut pending = self.pending_index.lock();
        pending
            .get_or_insert_with(Vec::new)
            .push(PendingInsert { route, id, fps });
    }

    /// Drains deferred fingerprint-index inserts, if any (DESIGN.md §15).
    /// A lazily opened lake pays the HNSW build here — on the first
    /// search — instead of inside `open()`; drain order equals id order,
    /// so the built graph is identical to an eager build.
    // lint: no-span — the drain opens lake.index.build itself; the no-op
    // fast path is one uncontended lock probe on every search
    pub(crate) fn ensure_indexes(&self) -> Result<()> {
        // lock-order: 25 (core.index.pending)
        let mut pending = self.pending_index.lock();
        let Some(queue) = pending.take() else {
            return Ok(());
        };
        let _span = mlake_obs::span("lake.index.build");
        let mut idx = self.indexes.write();
        for ins in queue {
            let [intrinsic, extrinsic, hybrid] = &ins.fps;
            for (kind, fp) in [
                (FingerprintKind::Intrinsic, intrinsic),
                (FingerprintKind::Extrinsic, extrinsic),
                (FingerprintKind::Hybrid, hybrid),
            ] {
                idx.get_mut(&kind)
                    .ok_or_else(|| {
                        LakeError::Internal(format!("fingerprint index {kind:?} missing"))
                    })?
                    .insert_by_key(ins.route, ins.id, fp)?;
            }
        }
        Ok(())
    }

    /// Blocks until any scheduled background compaction has finished.
    /// A no-op on lakes without a [`CompactionPolicy`]. Tests and
    /// orderly shutdown paths call this to make `compact.bg` effects
    /// observable at a deterministic point; normal operation never needs
    /// to.
    // lint: no-span — pure synchronization wait; the compaction being
    // waited on opens its own compact.bg span
    pub fn quiesce(&self) {
        if let Some(c) = &self.compactor {
            c.wait_idle();
        }
    }
}

impl Drop for ModelLake {
    // lint: no-span — teardown; the recorder may already be gone
    fn drop(&mut self) {
        // Stop the compactor before the lake's own state unwinds; its
        // Arc<LakeShared> clone keeps the shared state alive until the
        // thread joins.
        if let Some(c) = self.compactor.take() {
            c.shutdown();
        }
    }
}

impl LakeShared {
    pub(crate) fn datasets_snapshot(&self) -> Vec<mlake_datagen::Dataset> {
        self.registry.read().datasets.clone()
    }

    pub(crate) fn benchmarks_snapshot(&self) -> Vec<(Benchmark, Option<String>)> {
        let reg = self.registry.read();
        let mut out: Vec<(Benchmark, Option<String>)> = reg
            .benchmarks
            .values()
            .map(|e| (e.benchmark.clone(), e.domain.clone()))
            .collect();
        out.sort_by(|a, b| a.0.name.cmp(&b.0.name));
        out
    }

    pub(crate) fn event_log_snapshot(&self) -> EventLog {
        self.events.read().clone()
    }

    pub(crate) fn text_index_snapshot(&self) -> mlake_text::TextIndex {
        // lock-order: 27 (core.text)
        self.text.read().clone()
    }
}

/// An MLQL query parsed once against a lake, executable many times.
///
/// Obtained from [`ModelLake::prepare`]; borrows the lake, so handles are
/// cheap and cannot outlive it. Repeated [`PreparedQuery::run`] calls skip
/// lexing/parsing entirely and execute the cached AST.
#[derive(Clone)]
pub struct PreparedQuery<'l> {
    lake: &'l ModelLake,
    query: mlake_query::Query,
    text: String,
}

impl PreparedQuery<'_> {
    /// The original MLQL source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed query AST.
    pub fn ast(&self) -> &mlake_query::Query {
        &self.query
    }

    /// Executes the query, returning ranked hits. Results are served from
    /// the lake's generation-keyed cache when the lake has not mutated
    /// since an identical query last ran (see `crate::cache`).
    pub fn run(&self) -> Result<Vec<QueryHit>> {
        let _span = mlake_obs::span("lake.query.run");
        let key = CacheKey {
            // Shard count in the key for the same reason as `similar()`:
            // scan stages fan out per shard, so layouts are not
            // interchangeable cache-wise.
            digest: sha256(
                format!("mlql|shards={}|{}", self.lake.shared.config.shards, self.text).as_bytes(),
            ),
            k: 0,
            generation: self.lake.shared.events.read().head(),
        };
        if let Some(hits) = self.lake.mlql_cache.get(&key) {
            return Ok(hits);
        }
        let hits = execute(&self.query, self.lake)?;
        self.lake.mlql_cache.put(key, hits.clone());
        Ok(hits)
    }

    /// The access plan, without executing.
    pub fn explain(&self) -> Vec<String> {
        mlake_query::explain(&self.query)
    }

    /// Result-set cardinality (`COUNT MODELS …` or any `FIND`).
    pub fn count(&self) -> Result<usize> {
        Ok(self.run()?.len())
    }
}

impl std::fmt::Debug for PreparedQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("text", &self.text)
            .finish_non_exhaustive()
    }
}

impl QueryTarget for ModelLake {
    fn all_models(&self) -> Vec<u64> {
        (0..self.len() as u64).collect()
    }

    fn field(&self, id: u64, field: &str) -> Option<FieldValue> {
        let reg = self.shared.registry.read();
        let entry = reg.model(ModelId(id))?;
        if let Some(bench) = field.strip_prefix("score:") {
            // Benchmarks may be expensive; rely on the cache, computing on
            // demand when the benchmark exists.
            drop(reg);
            return match self.score_of(ModelId(id), bench) {
                Ok(s) => Some(FieldValue::Num(f64::from(s.value))),
                Err(_) => None,
            };
        }
        match field {
            "name" => Some(FieldValue::Str(entry.name.clone())),
            "arch" => Some(FieldValue::Str(entry.arch.clone())),
            "params" => Some(FieldValue::Num(entry.params as f64)),
            "domain" => entry
                .card
                .domains
                .first()
                .map(|d| FieldValue::Str(d.clone())),
            "domains" => Some(FieldValue::StrList(entry.card.domains.clone())),
            "task" | "tags" => Some(FieldValue::StrList(entry.card.task_tags.clone())),
            "transform" => entry
                .card
                .lineage
                .transform
                .clone()
                .map(FieldValue::Str),
            "base_model" => entry
                .card
                .lineage
                .base_model
                .clone()
                .map(FieldValue::Str),
            "completeness" => Some(FieldValue::Num(f64::from(entry.card.completeness()))),
            "depth" => {
                drop(reg);
                let graph = self.graph.read().clone()?;
                Some(FieldValue::Num(graph.depth_of(id as usize) as f64))
            }
            _ => None,
        }
    }

    fn similar_models(
        &self,
        model: &str,
        using: &str,
        k: usize,
    ) -> std::result::Result<Vec<(u64, f32)>, QueryError> {
        let id = self.resolve(model).map_err(|_| QueryError::UnknownEntity {
            kind: "model",
            name: model.into(),
        })?;
        let kind = match using {
            "weights" | "intrinsic" => FingerprintKind::Intrinsic,
            "behavior" | "behaviour" | "extrinsic" => FingerprintKind::Extrinsic,
            "hybrid" => FingerprintKind::Hybrid,
            other => {
                return Err(QueryError::UnknownEntity {
                    kind: "field",
                    name: other.into(),
                })
            }
        };
        self.similar(id, kind, k)
            .map(|v| v.into_iter().map(|(m, s)| (m.0, s)).collect())
            .map_err(|e| QueryError::Execution(e.to_string()))
    }

    fn text_search(&self, query: &str, k: usize) -> std::result::Result<Vec<(u64, f32)>, QueryError> {
        ModelLake::text_search(self, query, k)
            .map(|v| v.into_iter().map(|(m, s)| (m.0, s)).collect())
            .map_err(|e| QueryError::Execution(e.to_string()))
    }

    fn trained_on(
        &self,
        dataset: &str,
        include_versions: bool,
    ) -> std::result::Result<Vec<u64>, QueryError> {
        let reg = self.shared.registry.read();
        let names: Vec<String> = if include_versions {
            reg.dataset_version_closure(dataset)
                .iter()
                .map(|d| d.name.clone())
                .collect()
        } else {
            reg.dataset_by_name(dataset)
                .map(|d| vec![d.name.clone()])
                .unwrap_or_default()
        };
        if names.is_empty() {
            return Err(QueryError::UnknownEntity {
                kind: "dataset",
                name: dataset.into(),
            });
        }
        Ok(reg
            .models
            .iter()
            .filter(|m| {
                m.card
                    .training_data
                    .iter()
                    .any(|t| names.contains(&t.dataset_name))
            })
            .map(|m| m.id.0)
            .collect())
    }

    fn outperformers(
        &self,
        model: &str,
        benchmark: &str,
    ) -> std::result::Result<Vec<u64>, QueryError> {
        let id = self.resolve(model).map_err(|_| QueryError::UnknownEntity {
            kind: "model",
            name: model.into(),
        })?;
        let lb = self
            .leaderboard(benchmark)
            .map_err(|e| QueryError::Execution(e.to_string()))?;
        Ok(lb.outperformers(id.0))
    }
}
