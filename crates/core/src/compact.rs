//! Background WAL compaction (DESIGN.md §13).
//!
//! A durable lake configured with a [`crate::lake::CompactionPolicy`]
//! owns one `mlake-compact` thread. After every WAL append the facade
//! checks the policy thresholds ([`ModelLake::maybe_request_compaction`],
//! called from `durable::wal_append_op`); when the live WAL footprint or
//! the sealed-segment count crosses a threshold, the facade *schedules*
//! a compaction and returns — the caller never pays the snapshot cost.
//! The thread then runs exactly what an explicit `persist()` into the
//! lake's own directory would: a consistent snapshot cut under the
//! `op_lock`, followed by dropping the covered WAL segments
//! ([`crate::persist::persist_shared`]).
//!
//! Correctness does not depend on the thread at all: the WAL already
//! holds every acknowledged mutation, so a crash before (or during) a
//! background compaction recovers identically — the snapshot is only a
//! replay accelerator and a segment-space reclaimer. That is why a
//! failed background compaction is recorded (`compact.bg.errors`) and
//! otherwise dropped: the next trigger or explicit persist retries from
//! scratch.
//!
//! Lock order (DESIGN.md §10): `op_lock` → compactor state. The facade
//! calls [`Compactor::request`] while holding `op_lock`; the thread
//! takes `op_lock` (inside `persist_shared`) only while *not* holding
//! its state lock, so the two never nest in reverse.

use crate::error::{LakeError, Result};
use crate::lake::LakeShared;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Compactor state, guarded by the leaf-rank mutex in the pair.
struct State {
    /// A compaction has been scheduled but not yet picked up.
    pending: bool,
    /// The thread is inside a compaction run right now.
    running: bool,
    /// The owning lake is dropping; exit the loop.
    shutdown: bool,
}

/// Handle to the background compaction thread. Owned by `ModelLake`;
/// dropped (via [`Compactor::shutdown`]) before the lake's own state.
pub(crate) struct Compactor {
    state: Arc<(Mutex<State>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawns the compaction thread over a clone of the lake's shared
    /// state. Called once, at the end of durable create/open, after the
    /// WAL link is installed.
    pub(crate) fn spawn(shared: Arc<LakeShared>) -> Result<Compactor> {
        let state = Arc::new((
            Mutex::new(State {
                pending: false,
                running: false,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("mlake-compact".into())
            .spawn(move || run(shared, thread_state))
            .map_err(|e| LakeError::Internal(format!("compactor thread spawn: {e}")))?;
        Ok(Compactor {
            state,
            handle: Some(handle),
        })
    }

    /// Schedules a compaction (idempotent while one is already pending).
    /// Safe to call under the `op_lock`; only the leaf state lock is
    /// taken. Never blocks on the compaction itself.
    pub(crate) fn request(&self) {
        let (lock, cvar) = &*self.state;
        // lock-order: 60 (compact.state)
        let mut s = lock.lock();
        if !s.pending {
            s.pending = true;
            if mlake_obs::enabled() {
                mlake_obs::gauge!("compact.pending").set(1);
            }
        }
        cvar.notify_all();
    }

    /// Blocks until no compaction is pending or running. Test/shutdown
    /// synchronization only — the data path never waits on the thread.
    pub(crate) fn wait_idle(&self) {
        let (lock, cvar) = &*self.state;
        // lock-order: 60 (compact.state)
        let mut s = lock.lock();
        while s.pending || s.running {
            cvar.wait(&mut s);
        }
    }

    /// Signals shutdown and joins the thread. A pending-but-unstarted
    /// compaction is dropped — the WAL still holds everything it would
    /// have folded in, so recovery is unaffected.
    pub(crate) fn shutdown(mut self) {
        {
            let (lock, cvar) = &*self.state;
            // lock-order: 60 (compact.state)
            let mut s = lock.lock();
            s.shutdown = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            // A panicked compactor thread has nothing left to corrupt
            // (its snapshot writes are atomic); swallow the join error.
            let _ = handle.join();
        }
    }
}

/// Thread body: wait for a request, run one compaction, repeat.
fn run(shared: Arc<LakeShared>, state: Arc<(Mutex<State>, Condvar)>) {
    loop {
        {
            let (lock, cvar) = &*state;
            // lock-order: 60 (compact.state)
            let mut s = lock.lock();
            while !s.pending && !s.shutdown {
                cvar.wait(&mut s);
            }
            if s.shutdown {
                return;
            }
            s.pending = false;
            s.running = true;
        }
        if mlake_obs::enabled() {
            mlake_obs::gauge!("compact.pending").set(0);
        }
        let outcome = {
            let _span = mlake_obs::span("compact.bg");
            match &shared.wal {
                Some(link) => crate::persist::persist_shared(&shared, &link.dir, &link.vfs),
                None => Ok(()),
            }
        };
        if mlake_obs::enabled() {
            match &outcome {
                Ok(()) => mlake_obs::counter!("compact.bg.runs").inc(),
                Err(_) => mlake_obs::counter!("compact.bg.errors").inc(),
            }
        }
        // Opportunistic GC after a successful compaction: the superblock
        // swap just made the previous chain (and any crash orphans)
        // unreachable. Failure is recorded and dropped — the next pass
        // retries from scratch (DESIGN.md §15).
        if outcome.is_ok() {
            if let Err(_e) = crate::gc::gc_shared(&shared) {
                if mlake_obs::enabled() {
                    mlake_obs::counter!("gc.bg.errors").inc();
                }
            }
        }
        {
            let (lock, cvar) = &*state;
            // lock-order: 60 (compact.state)
            let mut s = lock.lock();
            s.running = false;
            cvar.notify_all();
        }
    }
}
