//! The lake registry: models, datasets and benchmarks with their metadata.

use crate::hash::Digest;
use mlake_benchlab::Benchmark;
use mlake_cards::ModelCard;
use mlake_datagen::Dataset;
use std::collections::HashMap;

/// Stable model identifier within a lake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub u64);

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model-{:04}", self.0)
    }
}

/// A reference to a model by any of its three identities: lake-local id,
/// unique name, or content digest. Every read on the
/// [`crate::ModelLake`] facade accepts `impl Into<ModelRef>`, so call
/// sites pass whichever identity they hold:
///
/// ```ignore
/// lake.model(id)?;                  // ModelId
/// lake.model("legal-mlp16-base")?;  // &str name
/// lake.model(&digest)?;             // &Digest content hash
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelRef<'a> {
    /// Lake-local identifier.
    Id(ModelId),
    /// Unique registered name.
    Name(&'a str),
    /// Content digest of the stored artifact.
    Digest(&'a Digest),
}

impl From<ModelId> for ModelRef<'static> {
    fn from(id: ModelId) -> Self {
        ModelRef::Id(id)
    }
}

impl<'a> From<&'a str> for ModelRef<'a> {
    fn from(name: &'a str) -> Self {
        ModelRef::Name(name)
    }
}

impl<'a> From<&'a String> for ModelRef<'a> {
    fn from(name: &'a String) -> Self {
        ModelRef::Name(name)
    }
}

impl<'a> From<&'a Digest> for ModelRef<'a> {
    fn from(digest: &'a Digest) -> Self {
        ModelRef::Digest(digest)
    }
}

impl std::fmt::Display for ModelRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelRef::Id(id) => write!(f, "{id}"),
            ModelRef::Name(n) => write!(f, "{n}"),
            ModelRef::Digest(d) => write!(f, "sha256:{}", d.short()),
        }
    }
}

/// Registry record of one model.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Identifier.
    pub id: ModelId,
    /// Unique name.
    pub name: String,
    /// Architecture signature.
    pub arch: String,
    /// Artifact digest in the blob store.
    pub digest: Digest,
    /// Parameter count.
    pub params: u64,
    /// Current model card.
    pub card: ModelCard,
    /// Free-form tags (task tags, hub labels).
    pub tags: Vec<String>,
}

/// Registry record of one benchmark (with optional domain label used by
/// domain prediction).
#[derive(Debug, Clone)]
pub struct BenchmarkEntry {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Domain it probes, when domain-specific.
    pub domain: Option<String>,
}

/// The mutable registry state.
#[derive(Debug, Default)]
pub struct Registry {
    /// Models by id.
    pub models: Vec<ModelEntry>,
    /// Name → id.
    pub by_name: HashMap<String, ModelId>,
    /// Registered datasets.
    pub datasets: Vec<Dataset>,
    /// Registered benchmarks by name.
    pub benchmarks: HashMap<String, BenchmarkEntry>,
}

impl Registry {
    /// Looks up a model entry by id.
    pub fn model(&self, id: ModelId) -> Option<&ModelEntry> {
        self.models.get(id.0 as usize)
    }

    /// Mutable lookup.
    pub fn model_mut(&mut self, id: ModelId) -> Option<&mut ModelEntry> {
        self.models.get_mut(id.0 as usize)
    }

    /// Resolves a model name.
    pub fn id_of(&self, name: &str) -> Option<ModelId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a dataset by name.
    pub fn dataset_by_name(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// Datasets derived (transitively) from the named dataset, including it.
    pub fn dataset_version_closure(&self, name: &str) -> Vec<&Dataset> {
        let Some(root) = self.dataset_by_name(name) else {
            return Vec::new();
        };
        let mut ids = vec![root.id];
        loop {
            let before = ids.len();
            for d in &self.datasets {
                if let Some(p) = d.parent {
                    if ids.contains(&p) && !ids.contains(&d.id) {
                        ids.push(d.id);
                    }
                }
            }
            if ids.len() == before {
                break;
            }
        }
        self.datasets.iter().filter(|d| ids.contains(&d.id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_datagen::{DatasetId, DatasetKind, Domain};

    fn ds(id: u64, name: &str, parent: Option<u64>) -> Dataset {
        Dataset {
            id: DatasetId(id),
            name: name.into(),
            domain: Domain::new("legal"),
            kind: DatasetKind::Corpus(vec![0, 1, 2]),
            parent: parent.map(DatasetId),
            derived_by: None,
        }
    }

    #[test]
    fn version_closure_walks_chains() {
        let mut reg = Registry::default();
        reg.datasets.push(ds(0, "v1", None));
        reg.datasets.push(ds(1, "v2", Some(0)));
        reg.datasets.push(ds(2, "v3", Some(1)));
        reg.datasets.push(ds(3, "other", None));
        let closure = reg.dataset_version_closure("v1");
        let names: Vec<&str> = closure.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["v1", "v2", "v3"]);
        assert!(reg.dataset_version_closure("ghost").is_empty());
        assert_eq!(reg.dataset_version_closure("other").len(), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(ModelId(3).to_string(), "model-0003");
    }
}
