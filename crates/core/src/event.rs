//! Append-only event log: the lake's logical clock.
//!
//! Every mutation appends an event; the sequence number of the latest
//! version-graph-affecting event is the "timestamp of the graph" that
//! citations embed (§6: "upon any updates of the graph, a new citation would
//! be generated with the updated version and timestamp").

use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A model artifact was ingested.
    ModelIngested,
    /// A model card was created or replaced.
    CardUpdated,
    /// A dataset was registered.
    DatasetRegistered,
    /// A benchmark was registered.
    BenchmarkRegistered,
    /// The version graph was (re)built.
    GraphRebuilt,
}

impl EventKind {
    /// Whether this event invalidates previously issued citations.
    ///
    /// **Contract** (pinned by `citations_are_stable_across_card_updates`
    /// and experiment E8): a citation timestamps the *version graph* — the
    /// lineage a reader relies on when crediting a model — so only events
    /// that can change that graph count: [`EventKind::ModelIngested`] and
    /// [`EventKind::GraphRebuilt`]. [`EventKind::CardUpdated`] is
    /// deliberately excluded: documentation edits must not invalidate
    /// outstanding citations, and they stay independently auditable via
    /// [`EventLog::history_of`] and card verification. Dataset/benchmark
    /// registrations likewise leave the model graph untouched.
    pub fn affects_graph(&self) -> bool {
        matches!(self, EventKind::ModelIngested | EventKind::GraphRebuilt)
    }
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotone sequence number (1-based).
    pub seq: u64,
    /// Kind.
    pub kind: EventKind,
    /// Affected entity name.
    pub subject: String,
}

/// The append-only log.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Reconstructs a log from persisted events (the segment-fold open
    /// path); `events` must be the full history, oldest first.
    pub fn from_events(events: Vec<Event>) -> EventLog {
        EventLog { events }
    }

    /// Appends an event, returning its sequence number.
    pub fn append(&mut self, kind: EventKind, subject: impl Into<String>) -> u64 {
        let seq = self.events.len() as u64 + 1;
        self.events.push(Event {
            seq,
            kind,
            subject: subject.into(),
        });
        seq
    }

    /// Latest sequence number (0 when empty).
    pub fn head(&self) -> u64 {
        self.events.len() as u64
    }

    /// Sequence number of the latest graph-affecting event (0 when none).
    pub fn graph_timestamp(&self) -> u64 {
        self.events
            .iter()
            .rev()
            .find(|e| e.kind.affects_graph())
            .map(|e| e.seq)
            .unwrap_or(0)
    }

    /// All events, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events concerning a subject (audit trail of one model).
    pub fn history_of(&self, subject: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.subject == subject).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_monotone() {
        let mut log = EventLog::new();
        assert_eq!(log.head(), 0);
        let a = log.append(EventKind::ModelIngested, "m1");
        let b = log.append(EventKind::CardUpdated, "m1");
        assert_eq!((a, b), (1, 2));
        assert_eq!(log.head(), 2);
    }

    #[test]
    fn graph_timestamp_tracks_graph_events_only() {
        let mut log = EventLog::new();
        assert_eq!(log.graph_timestamp(), 0);
        log.append(EventKind::DatasetRegistered, "d");
        assert_eq!(log.graph_timestamp(), 0);
        log.append(EventKind::ModelIngested, "m1");
        assert_eq!(log.graph_timestamp(), 2);
        log.append(EventKind::CardUpdated, "m1");
        assert_eq!(log.graph_timestamp(), 2);
        log.append(EventKind::GraphRebuilt, "*");
        assert_eq!(log.graph_timestamp(), 4);
    }

    #[test]
    fn card_updates_never_affect_graph() {
        // Regression pin for the citation contract: any number of card
        // edits (or dataset/benchmark registrations) leaves the graph
        // timestamp — and hence every outstanding citation — unchanged.
        let mut log = EventLog::new();
        log.append(EventKind::ModelIngested, "m1");
        log.append(EventKind::GraphRebuilt, "*");
        let pinned = log.graph_timestamp();
        for _ in 0..5 {
            log.append(EventKind::CardUpdated, "m1");
            log.append(EventKind::DatasetRegistered, "d");
            log.append(EventKind::BenchmarkRegistered, "b");
            assert_eq!(log.graph_timestamp(), pinned);
        }
        assert!(!EventKind::CardUpdated.affects_graph());
        assert!(!EventKind::DatasetRegistered.affects_graph());
        assert!(!EventKind::BenchmarkRegistered.affects_graph());
    }

    #[test]
    fn history_filters_by_subject() {
        let mut log = EventLog::new();
        log.append(EventKind::ModelIngested, "m1");
        log.append(EventKind::ModelIngested, "m2");
        log.append(EventKind::CardUpdated, "m1");
        let h = log.history_of("m1");
        assert_eq!(h.len(), 2);
        assert!(h.iter().all(|e| e.subject == "m1"));
        assert_eq!(log.events().len(), 3);
    }
}
