//! Content-addressed blob store with a bounded residency layer
//! (DESIGN.md §15).
//!
//! Blobs are keyed by the SHA-256 of their contents: identical artifacts
//! deduplicate for free and reads verify integrity. The store holds a
//! *resident* subset of the lake's blobs in memory; on a durable lake the
//! rest live as `<hex-digest>.blob` files and page in lazily on first
//! touch ([`ResidentStore::get`] faults the file in, verifies its digest,
//! and caches it). `LakeConfig::builder().resident_bytes(n)` bounds the
//! resident set: once the cap is exceeded the least-recently-used
//! *evictable* blobs are dropped — a blob is evictable only after its
//! bytes are known durable on disk (either faulted in from a file or
//! explicitly marked via [`ResidentStore::mark_durable`] after the
//! durable-ingest blob write), so eviction can never lose data.
//!
//! Observability: `store.fault` / `store.evict` counters and the
//! `store.resident.bytes` gauge. The resident map's mutex is rank
//! **45 (store.resident)** in the §10 hierarchy — above the index locks,
//! below `wal.inner` — and is never held across file I/O (fault-in reads
//! happen between two separate acquisitions).

use crate::error::{LakeError, Result};
use crate::hash::{sha256, Digest};
use mlake_wal::Vfs;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Storage interface the lake uses.
pub trait BlobStore: Send + Sync {
    /// Stores `bytes`, returning their digest. Idempotent.
    fn put(&self, bytes: &[u8]) -> Digest;

    /// Retrieves and integrity-checks a blob.
    fn get(&self, digest: &Digest) -> Result<Vec<u8>>;

    /// Whether the digest is resident or available from backing files.
    fn contains(&self, digest: &Digest) -> bool;

    /// Number of *resident* blobs.
    fn len(&self) -> usize;

    /// `true` when nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One resident blob.
struct Entry {
    bytes: Vec<u8>,
    /// Logical access clock value at last touch (LRU order).
    stamp: u64,
    /// Evictable only once the bytes are known durable on disk. Fresh
    /// `put()`s are pinned until [`ResidentStore::mark_durable`]; faulted-in
    /// blobs were read *from* disk and start evictable.
    durable: bool,
}

/// The guarded residency state.
struct Resident {
    blobs: HashMap<Digest, Entry>,
    /// Sum of resident payload sizes.
    bytes: u64,
    /// Monotone access clock for LRU stamps.
    clock: u64,
}

/// Where non-resident blobs live on a durable lake.
struct Backing {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
}

/// The default thread-safe store: a resident map over optional
/// file-backed blobs.
pub struct ResidentStore {
    resident: Mutex<Resident>,
    backing: Mutex<Option<Backing>>,
    /// Lock-free mirror of `backing.is_some()`, so the eviction scan
    /// (which runs under the resident lock) never nests the two mutexes.
    backed: std::sync::atomic::AtomicBool,
    /// Resident-set cap in bytes (0 = unbounded). Pinned (not-yet-durable)
    /// blobs never count against evictability, so the resident set may
    /// transiently exceed the cap while writes are in flight.
    cap_bytes: u64,
}

impl Default for ResidentStore {
    fn default() -> Self {
        ResidentStore::new()
    }
}

impl std::fmt::Debug for ResidentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentStore")
            .field("resident", &self.len())
            .field("cap_bytes", &self.cap_bytes)
            .finish_non_exhaustive()
    }
}

impl ResidentStore {
    /// Creates an empty, unbounded, purely in-memory store.
    pub fn new() -> ResidentStore {
        ResidentStore::with_cap(0)
    }

    /// Creates an empty store with a resident-set cap (`0` = unbounded).
    pub fn with_cap(cap_bytes: u64) -> ResidentStore {
        ResidentStore {
            resident: Mutex::new(Resident {
                blobs: HashMap::new(),
                bytes: 0,
                clock: 0,
            }),
            backing: Mutex::new(None),
            backed: std::sync::atomic::AtomicBool::new(false),
            cap_bytes,
        }
    }

    /// Attaches the on-disk blob directory non-resident reads fault in
    /// from. Called during durable create/open; idempotent.
    pub(crate) fn attach_backing(&self, dir: &Path, vfs: Arc<dyn Vfs>) {
        // lock-order: 45 (store.resident)
        let mut backing = self.backing.lock();
        *backing = Some(Backing {
            dir: dir.to_path_buf(),
            vfs,
        });
        self.backed
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Marks a blob's bytes durable on disk, making it evictable. Called
    /// after the durable-ingest blob write lands; a no-op for unknown
    /// digests.
    pub(crate) fn mark_durable(&self, digest: &Digest) {
        // lock-order: 45 (store.resident)
        let mut res = self.resident.lock();
        if let Some(e) = res.blobs.get_mut(digest) {
            e.durable = true;
        }
        self.evict_over_cap(&mut res);
    }

    /// Path of a blob file under `dir`.
    pub(crate) fn blob_path(dir: &Path, digest: &Digest) -> PathBuf {
        dir.join(format!("{}.blob", digest.to_hex()))
    }

    /// Loads every `<hex>.blob` file from `dir` eagerly, verifying
    /// digests (the v1/v2 manifest open path; v3 lakes page in lazily).
    /// The whole set loads resident regardless of `cap_bytes`; once a
    /// backing directory is attached, later accesses evict down to the
    /// cap.
    pub fn load_dir(dir: &Path, cap_bytes: u64) -> Result<ResidentStore> {
        let store = ResidentStore::with_cap(cap_bytes);
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("blob") {
                continue;
            }
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            let Some(expected) = Digest::from_hex(stem) else {
                return Err(LakeError::CorruptArtifact(format!(
                    "bad blob filename: {}",
                    path.display()
                )));
            };
            let bytes = std::fs::read(&path)?;
            let actual = sha256(&bytes);
            if actual != expected {
                return Err(LakeError::CorruptArtifact(format!(
                    "digest mismatch for {}",
                    path.display()
                )));
            }
            store.insert_durable(actual, bytes);
        }
        Ok(store)
    }

    /// Inserts bytes already known durable (eager load). Does not evict:
    /// the eager path deliberately holds everything.
    fn insert_durable(&self, digest: Digest, bytes: Vec<u8>) {
        // lock-order: 45 (store.resident)
        let mut res = self.resident.lock();
        res.clock += 1;
        let stamp = res.clock;
        let len = bytes.len() as u64;
        if res
            .blobs
            .insert(
                digest,
                Entry {
                    bytes,
                    stamp,
                    durable: true,
                },
            )
            .is_none()
        {
            res.bytes += len;
        }
        publish_resident_bytes(res.bytes);
    }

    /// Sum of resident payload sizes (the `store.resident.bytes` gauge).
    pub fn resident_bytes(&self) -> u64 {
        // lock-order: 45 (store.resident)
        self.resident.lock().bytes
    }

    /// Drops least-recently-used durable blobs until the resident set fits
    /// the cap. Caller holds the resident lock. Pinned (non-durable)
    /// entries are skipped — they are the only copy of their bytes.
    fn evict_over_cap(&self, res: &mut Resident) {
        if self.cap_bytes == 0 {
            publish_resident_bytes(res.bytes);
            return;
        }
        // Eviction needs a backing dir to recover evicted blobs from, so
        // stores without one (ephemeral lakes) never evict. Read off the
        // atomic mirror: no second lock under the resident lock.
        if !self.backed.load(std::sync::atomic::Ordering::Acquire) {
            publish_resident_bytes(res.bytes);
            return;
        }
        while res.bytes > self.cap_bytes {
            let victim = res
                .blobs
                .iter()
                .filter(|(_, e)| e.durable)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(d, _)| *d);
            let Some(digest) = victim else {
                break; // everything left is pinned
            };
            if let Some(e) = res.blobs.remove(&digest) {
                res.bytes -= e.bytes.len() as u64;
                if mlake_obs::enabled() {
                    mlake_obs::counter!("store.evict").inc();
                }
            }
        }
        publish_resident_bytes(res.bytes);
    }

    /// Faults a blob in from the backing directory, verifying its digest.
    fn fault_in(&self, digest: &Digest) -> Result<Vec<u8>> {
        let (dir, vfs) = {
            // lock-order: 45 (store.resident)
            let backing = self.backing.lock();
            let Some(b) = backing.as_ref() else {
                return Err(LakeError::NotFound {
                    kind: "blob",
                    name: digest.short(),
                });
            };
            (b.dir.clone(), Arc::clone(&b.vfs))
        };
        // File I/O happens with no store lock held.
        let path = Self::blob_path(&dir, digest);
        let bytes = vfs.read(&path).map_err(|_| LakeError::NotFound {
            kind: "blob",
            name: digest.short(),
        })?;
        if sha256(&bytes) != *digest {
            return Err(LakeError::CorruptArtifact(format!(
                "blob file {} fails integrity check",
                digest.short()
            )));
        }
        if mlake_obs::enabled() {
            mlake_obs::counter!("store.fault").inc();
        }
        // lock-order: 45 (store.resident)
        let mut res = self.resident.lock();
        res.clock += 1;
        let stamp = res.clock;
        if !res.blobs.contains_key(digest) {
            res.bytes += bytes.len() as u64;
            res.blobs.insert(
                *digest,
                Entry {
                    bytes: bytes.clone(),
                    stamp,
                    durable: true,
                },
            );
        }
        self.evict_over_cap(&mut res);
        Ok(bytes)
    }
}

/// Pushes the resident footprint to the `store.resident.bytes` gauge.
fn publish_resident_bytes(bytes: u64) {
    if mlake_obs::enabled() {
        mlake_obs::gauge!("store.resident.bytes").set(bytes as i64);
    }
}

impl BlobStore for ResidentStore {
    fn put(&self, bytes: &[u8]) -> Digest {
        let digest = sha256(bytes);
        // lock-order: 45 (store.resident)
        let mut res = self.resident.lock();
        res.clock += 1;
        let stamp = res.clock;
        if !res.blobs.contains_key(&digest) {
            res.bytes += bytes.len() as u64;
            res.blobs.insert(
                digest,
                Entry {
                    bytes: bytes.to_vec(),
                    stamp,
                    // Pinned until the caller proves the bytes reached
                    // disk (durable_ingest writes the blob file, then
                    // calls mark_durable). Ephemeral stores stay pinned
                    // forever, which is exactly "never evict".
                    durable: false,
                },
            );
        }
        self.evict_over_cap(&mut res);
        digest
    }

    fn get(&self, digest: &Digest) -> Result<Vec<u8>> {
        {
            // lock-order: 45 (store.resident)
            let mut res = self.resident.lock();
            res.clock += 1;
            let stamp = res.clock;
            if let Some(e) = res.blobs.get_mut(digest) {
                e.stamp = stamp;
                let bytes = e.bytes.clone();
                // Defence in depth: re-verify on read.
                if sha256(&bytes) != *digest {
                    return Err(LakeError::CorruptArtifact(format!(
                        "stored blob {} fails integrity check",
                        digest.short()
                    )));
                }
                return Ok(bytes);
            }
        }
        self.fault_in(digest)
    }

    fn contains(&self, digest: &Digest) -> bool {
        {
            // lock-order: 45 (store.resident)
            let res = self.resident.lock();
            if res.blobs.contains_key(digest) {
                return true;
            }
        }
        let (dir, vfs) = {
            // lock-order: 45 (store.resident)
            let backing = self.backing.lock();
            match backing.as_ref() {
                Some(b) => (b.dir.clone(), Arc::clone(&b.vfs)),
                None => return false,
            }
        };
        vfs.exists(&Self::blob_path(&dir, digest))
    }

    fn len(&self) -> usize {
        // lock-order: 45 (store.resident)
        self.resident.lock().blobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_wal::RealFs;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlake-store-{tag}-{}", std::process::id()))
    }

    #[test]
    fn put_get_round_trip_and_dedup() {
        let store = ResidentStore::new();
        let d1 = store.put(b"artifact-a");
        let d2 = store.put(b"artifact-a");
        assert_eq!(d1, d2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&d1).unwrap(), b"artifact-a");
        assert!(store.contains(&d1));
        assert!(!store.is_empty());
    }

    #[test]
    fn missing_blob_errors() {
        let store = ResidentStore::new();
        let ghost = sha256(b"never stored");
        assert!(matches!(
            store.get(&ghost),
            Err(LakeError::NotFound { kind: "blob", .. })
        ));
        assert!(!store.contains(&ghost));
    }

    #[test]
    fn load_dir_verifies_and_loads() {
        let dir = tmp("load");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let d1 = sha256(b"blob one");
        let d2 = sha256(b"blob two");
        std::fs::write(ResidentStore::blob_path(&dir, &d1), b"blob one").unwrap();
        std::fs::write(ResidentStore::blob_path(&dir, &d2), b"blob two").unwrap();
        let loaded = ResidentStore::load_dir(&dir, 0).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(&d1).unwrap(), b"blob one");
        assert_eq!(loaded.get(&d2).unwrap(), b"blob two");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_tampered_blob() {
        let dir = tmp("tamper");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let d = sha256(b"honest bytes");
        std::fs::write(ResidentStore::blob_path(&dir, &d), b"evil bytes").unwrap();
        assert!(matches!(
            ResidentStore::load_dir(&dir, 0),
            Err(LakeError::CorruptArtifact(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_bad_filename() {
        let dir = tmp("name");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("nothex.blob"), b"x").unwrap();
        assert!(ResidentStore::load_dir(&dir, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_in_pages_missing_blobs_from_backing() {
        let dir = tmp("fault");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let d = sha256(b"on disk only");
        std::fs::write(ResidentStore::blob_path(&dir, &d), b"on disk only").unwrap();
        let store = ResidentStore::new();
        store.attach_backing(&dir, RealFs::shared());
        assert_eq!(store.len(), 0, "nothing resident before first touch");
        assert!(store.contains(&d), "backing file counts as contained");
        assert_eq!(store.get(&d).unwrap(), b"on disk only");
        assert_eq!(store.len(), 1, "faulted blob is now resident");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_in_rejects_corrupt_backing_file() {
        let dir = tmp("fault-bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let d = sha256(b"expected");
        std::fs::write(ResidentStore::blob_path(&dir, &d), b"tampered!").unwrap();
        let store = ResidentStore::new();
        store.attach_backing(&dir, RealFs::shared());
        assert!(matches!(
            store.get(&d),
            Err(LakeError::CorruptArtifact(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_respects_cap_and_pins() {
        let dir = tmp("evict");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Cap of 100 bytes; blobs of 60 bytes each.
        let store = ResidentStore::with_cap(100);
        store.attach_backing(&dir, RealFs::shared());
        let a = vec![0xAAu8; 60];
        let b = vec![0xBBu8; 60];
        let da = store.put(&a);
        let db = store.put(&b);
        // Both pinned (never marked durable): nothing may be evicted even
        // though 120 > 100.
        assert_eq!(store.len(), 2);
        assert_eq!(store.resident_bytes(), 120);
        // Write the files and mark durable: LRU (da) gets evicted.
        std::fs::write(ResidentStore::blob_path(&dir, &da), &a).unwrap();
        std::fs::write(ResidentStore::blob_path(&dir, &db), &b).unwrap();
        store.mark_durable(&da);
        store.mark_durable(&db);
        assert_eq!(store.len(), 1, "one blob evicted to fit the cap");
        assert!(store.resident_bytes() <= 100);
        // The evicted blob still reads back — by faulting in — and the
        // fault-in itself re-evicts to stay under the cap.
        assert_eq!(store.get(&da).unwrap(), a);
        assert!(store.resident_bytes() <= 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let store = ResidentStore::new();
        let mut digests = Vec::new();
        for i in 0..16u8 {
            digests.push(store.put(&vec![i; 128]));
        }
        assert_eq!(store.len(), 16);
        for d in &digests {
            assert!(store.get(d).is_ok());
        }
    }
}
