//! Content-addressed blob store.
//!
//! Blobs are keyed by the SHA-256 of their contents: identical artifacts
//! deduplicate for free and reads verify integrity. The in-memory store is
//! the lake's working set; [`BlobStore::persist_dir`] /
//! [`InMemoryStore::load_dir`] provide a simple one-file-per-blob on-disk
//! layout (`<hex-digest>.blob`).

use crate::error::{LakeError, Result};
use crate::hash::{sha256, Digest};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;

/// Storage interface the lake uses.
pub trait BlobStore: Send + Sync {
    /// Stores `bytes`, returning their digest. Idempotent.
    fn put(&self, bytes: &[u8]) -> Digest;

    /// Retrieves and integrity-checks a blob.
    fn get(&self, digest: &Digest) -> Result<Vec<u8>>;

    /// Whether the digest is present.
    fn contains(&self, digest: &Digest) -> bool;

    /// Number of stored blobs.
    fn len(&self) -> usize;

    /// `true` when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes every blob into `dir` as `<hex>.blob`.
    fn persist_dir(&self, dir: &Path) -> Result<()>;
}

/// The default thread-safe in-memory store.
#[derive(Debug, Default)]
pub struct InMemoryStore {
    blobs: RwLock<HashMap<Digest, Vec<u8>>>,
}

impl InMemoryStore {
    /// Creates an empty store.
    pub fn new() -> InMemoryStore {
        InMemoryStore::default()
    }

    /// Writes every blob into `dir` as `<hex>.blob` through a
    /// [`mlake_wal::Vfs`], each file landing atomically (temp + rename) so
    /// a crash mid-persist can never leave a torn blob that would fail
    /// digest verification at the next load. Blobs already on disk are
    /// skipped — content addressing makes them immutable.
    pub(crate) fn persist_dir_atomic(
        &self,
        dir: &Path,
        vfs: &std::sync::Arc<dyn mlake_wal::Vfs>,
    ) -> Result<()> {
        vfs.create_dir_all(dir)?;
        for (digest, bytes) in self.blobs.read().iter() {
            let path = dir.join(format!("{}.blob", digest.to_hex()));
            if !vfs.exists(&path) {
                vfs.write_atomic(&path, bytes)?;
            }
        }
        Ok(())
    }

    /// Loads every `<hex>.blob` file from `dir`, verifying digests.
    pub fn load_dir(dir: &Path) -> Result<InMemoryStore> {
        let store = InMemoryStore::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("blob") {
                continue;
            }
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            let Some(expected) = Digest::from_hex(stem) else {
                return Err(LakeError::CorruptArtifact(format!(
                    "bad blob filename: {}",
                    path.display()
                )));
            };
            let bytes = std::fs::read(&path)?;
            let actual = sha256(&bytes);
            if actual != expected {
                return Err(LakeError::CorruptArtifact(format!(
                    "digest mismatch for {}",
                    path.display()
                )));
            }
            store.blobs.write().insert(actual, bytes);
        }
        Ok(store)
    }
}

impl BlobStore for InMemoryStore {
    fn put(&self, bytes: &[u8]) -> Digest {
        let digest = sha256(bytes);
        self.blobs
            .write()
            .entry(digest)
            .or_insert_with(|| bytes.to_vec());
        digest
    }

    fn get(&self, digest: &Digest) -> Result<Vec<u8>> {
        let bytes = self
            .blobs
            .read()
            .get(digest)
            .cloned()
            .ok_or_else(|| LakeError::NotFound {
                kind: "blob",
                name: digest.short(),
            })?;
        // Defence in depth: re-verify on read.
        if sha256(&bytes) != *digest {
            return Err(LakeError::CorruptArtifact(format!(
                "stored blob {} fails integrity check",
                digest.short()
            )));
        }
        Ok(bytes)
    }

    fn contains(&self, digest: &Digest) -> bool {
        self.blobs.read().contains_key(digest)
    }

    fn len(&self) -> usize {
        self.blobs.read().len()
    }

    fn persist_dir(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        for (digest, bytes) in self.blobs.read().iter() {
            let path = dir.join(format!("{}.blob", digest.to_hex()));
            std::fs::write(path, bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_and_dedup() {
        let store = InMemoryStore::new();
        let d1 = store.put(b"artifact-a");
        let d2 = store.put(b"artifact-a");
        assert_eq!(d1, d2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&d1).unwrap(), b"artifact-a");
        assert!(store.contains(&d1));
        assert!(!store.is_empty());
    }

    #[test]
    fn missing_blob_errors() {
        let store = InMemoryStore::new();
        let ghost = sha256(b"never stored");
        assert!(matches!(
            store.get(&ghost),
            Err(LakeError::NotFound { kind: "blob", .. })
        ));
        assert!(!store.contains(&ghost));
    }

    #[test]
    fn persist_and_load() {
        let dir = std::env::temp_dir().join(format!("mlake-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = InMemoryStore::new();
        let d1 = store.put(b"blob one");
        let d2 = store.put(b"blob two");
        store.persist_dir(&dir).unwrap();
        let loaded = InMemoryStore::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(&d1).unwrap(), b"blob one");
        assert_eq!(loaded.get(&d2).unwrap(), b"blob two");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_tampered_blob() {
        let dir = std::env::temp_dir().join(format!("mlake-tamper-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = InMemoryStore::new();
        let d = store.put(b"honest bytes");
        store.persist_dir(&dir).unwrap();
        // Tamper with the file on disk.
        let path = dir.join(format!("{}.blob", d.to_hex()));
        std::fs::write(&path, b"evil bytes").unwrap();
        assert!(matches!(
            InMemoryStore::load_dir(&dir),
            Err(LakeError::CorruptArtifact(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_bad_filename() {
        let dir = std::env::temp_dir().join(format!("mlake-name-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("nothex.blob"), b"x").unwrap();
        assert!(InMemoryStore::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
