//! Durable lakes: the WAL wiring (DESIGN.md §12).
//!
//! A durable [`ModelLake`] pairs the in-memory facade with a
//! [`mlake_wal::Wal`] in `<dir>/wal/`. Every mutating facade op —
//! everything that appends to the event log — is serialized as a
//! [`WalOp`] and appended (fsynced per the configured
//! [`mlake_wal::SyncPolicy`]) *before* the in-memory state mutates, so a
//! crash at any instant loses at most unacknowledged work.
//! [`ModelLake::open`] is snapshot-load + WAL replay; `persist()` is
//! "compact now": snapshot everything, then drop the covered segments.
//!
//! Model artifact blobs are not stored in WAL records (they would bloat
//! it); instead [`ModelLake::ingest_model`] writes the blob to
//! `<dir>/blobs/` atomically *before* appending the `Ingest` record that
//! references it by digest, so every logged ingest is replayable. A
//! crash between the two leaves an orphan blob — harmless, it is
//! content-addressed and unreferenced.

use crate::error::{LakeError, Result};
use crate::hash::Digest;
use crate::lake::{LakeConfig, ModelLake};
use crate::registry::ModelId;
use crate::store::BlobStore;
use mlake_benchlab::Benchmark;
use mlake_cards::ModelCard;
use mlake_nn::Model;
use mlake_wal::{RealFs, Vfs, Wal};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One durable mutation, as JSON-serialized into a WAL record payload.
/// Exactly the facade ops that append to the event log.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) enum WalOp {
    /// `ingest_model`: the blob is already durable under `blobs/<digest>`.
    Ingest {
        name: String,
        digest: String,
        card: ModelCard,
    },
    /// `update_card`.
    UpdateCard { id: u64, card: ModelCard },
    /// `register_dataset`.
    RegisterDataset { dataset: mlake_datagen::Dataset },
    /// `register_benchmark`.
    RegisterBenchmark {
        benchmark: Benchmark,
        domain: Option<String>,
    },
    /// `rebuild_version_graph` (the graph itself is derived state; only
    /// the event matters for replay).
    GraphRebuilt,
}

/// The durability state attached to a durable lake.
pub(crate) struct WalLink {
    /// The log under `<dir>/wal/`.
    pub(crate) wal: Wal,
    /// The lake's root directory (blobs, manifest and WAL live here).
    pub(crate) dir: PathBuf,
    /// Filesystem all durable writes go through (the fault-injection
    /// harness plugs in here).
    pub(crate) vfs: Arc<dyn Vfs>,
}

impl ModelLake {
    /// Creates a new durable lake rooted at `dir`: an empty snapshot plus
    /// a fresh WAL. Fails if `dir` already holds a lake (open it instead).
    pub fn create(dir: &Path, config: LakeConfig) -> Result<ModelLake> {
        let _span = mlake_obs::span("lake.create");
        Self::create_with(dir, config, RealFs::shared())
    }

    /// [`ModelLake::create`] through an arbitrary [`Vfs`] (tests inject
    /// `mlake_wal::testing::FailFs` here to crash mid-create).
    // lint: no-span — create() opens the lake.create span
    pub fn create_with(dir: &Path, config: LakeConfig, vfs: Arc<dyn Vfs>) -> Result<ModelLake> {
        if vfs.exists(&dir.join("manifest.json")) {
            return Err(LakeError::Duplicate {
                kind: "lake",
                name: dir.display().to_string(),
            });
        }
        let mut lake = ModelLake::new(config);
        vfs.create_dir_all(dir)?;
        lake.persist_with(dir, &vfs)?;
        // Evicted blobs page back in from the lake's own blob directory.
        lake.shared
            .store
            .attach_backing(&dir.join("blobs"), Arc::clone(&vfs));
        let (wal, _) = Wal::open_with(
            &dir.join("wal"),
            lake.wal_options(),
            Arc::clone(&vfs),
            0,
        )?;
        lake.shared_mut()?.wal = Some(WalLink {
            wal,
            dir: dir.to_path_buf(),
            vfs,
        });
        lake.spawn_compactor()?;
        Ok(lake)
    }

    pub(crate) fn wal_options(&self) -> mlake_wal::WalOptions {
        mlake_wal::WalOptions {
            sync: self.config().wal_sync,
            ..mlake_wal::WalOptions::default()
        }
    }

    /// Flushes any group-commit-buffered WAL records to stable storage.
    /// A no-op on ephemeral lakes and under `SyncPolicy::Always`.
    pub fn sync(&self) -> Result<()> {
        let _span = mlake_obs::span("lake.sync");
        if let Some(link) = &self.shared.wal {
            link.wal.sync()?;
        }
        Ok(())
    }

    fn wal_append_op(&self, op: &WalOp) -> Result<()> {
        let Some(link) = &self.shared.wal else {
            return Ok(());
        };
        let payload = serde_json::to_vec(op)
            .map_err(|e| LakeError::Internal(format!("wal op encode: {e}")))?;
        link.wal.append(&payload)?;
        self.maybe_request_compaction(link);
        Ok(())
    }

    /// The write-side compaction trigger (DESIGN.md §13): after each WAL
    /// append, schedule a background compaction once the live WAL
    /// footprint or the sealed-segment backlog crosses the configured
    /// [`crate::lake::CompactionPolicy`] threshold. Pure accounting reads
    /// plus a condvar signal — the appending caller never pays the
    /// snapshot cost. Called under the `op_lock`; the compactor state
    /// lock ranks strictly below it (DESIGN.md §10).
    // lint: no-span — per-append accounting check; the scheduled work
    // opens its own compact.bg span
    fn maybe_request_compaction(&self, link: &WalLink) {
        let (Some(policy), Some(compactor)) = (&self.shared.config.compaction, &self.compactor)
        else {
            return;
        };
        let by_bytes = policy.wal_bytes > 0 && link.wal.live_bytes() >= policy.wal_bytes;
        let by_segments =
            policy.wal_segments > 0 && link.wal.sealed_count() >= policy.wal_segments;
        if by_bytes || by_segments {
            compactor.request();
        }
    }

    /// Durable half of ingestion: writes the artifact blob atomically,
    /// then logs the `Ingest` record referencing it. No-op when ephemeral.
    pub(crate) fn durable_ingest(
        &self,
        name: &str,
        digest: &Digest,
        bytes: &[u8],
        card: &ModelCard,
    ) -> Result<()> {
        let Some(link) = &self.shared.wal else {
            return Ok(());
        };
        let blob_dir = link.dir.join("blobs");
        link.vfs.create_dir_all(&blob_dir)?;
        let path = blob_dir.join(format!("{}.blob", digest.to_hex()));
        if !link.vfs.exists(&path) {
            link.vfs.write_atomic(&path, bytes)?;
        }
        // The bytes are safely on disk: the resident copy may now be
        // evicted under memory pressure (DESIGN.md §15).
        self.shared.store.mark_durable(digest);
        self.wal_append_op(&WalOp::Ingest {
            name: name.into(),
            digest: digest.to_hex(),
            card: card.clone(),
        })
    }

    pub(crate) fn wal_update_card(&self, id: ModelId, card: &ModelCard) -> Result<()> {
        self.wal_append_op(&WalOp::UpdateCard {
            id: id.0,
            card: card.clone(),
        })
    }

    pub(crate) fn wal_register_dataset(&self, dataset: &mlake_datagen::Dataset) -> Result<()> {
        self.wal_append_op(&WalOp::RegisterDataset {
            dataset: dataset.clone(),
        })
    }

    pub(crate) fn wal_register_benchmark(
        &self,
        benchmark: &Benchmark,
        domain: &Option<String>,
    ) -> Result<()> {
        self.wal_append_op(&WalOp::RegisterBenchmark {
            benchmark: benchmark.clone(),
            domain: domain.clone(),
        })
    }

    pub(crate) fn wal_graph_rebuilt(&self) -> Result<()> {
        self.wal_append_op(&WalOp::GraphRebuilt)
    }

    /// Applies one replayed op to in-memory state (never re-logs).
    /// Idempotent for `Ingest`: a model already present under the same
    /// name and digest is skipped, so replaying an op the in-memory state
    /// already saw cannot duplicate it.
    pub(crate) fn apply_op(&self, lsn: u64, op: WalOp) -> Result<()> {
        match op {
            WalOp::Ingest { name, digest, card } => {
                let digest = Digest::from_hex(&digest).ok_or_else(|| {
                    LakeError::CorruptArtifact(format!(
                        "wal record {lsn}: bad digest for '{name}'"
                    ))
                })?;
                if let Ok(existing) = self.entry(name.as_str()) {
                    if existing.digest == digest {
                        return Ok(());
                    }
                    return Err(LakeError::CorruptArtifact(format!(
                        "wal record {lsn}: replayed ingest of '{name}' conflicts \
                         with existing artifact"
                    )));
                }
                let bytes = self.shared.store.get(&digest)?;
                let model = Model::from_bytes(&bytes)
                    .map_err(|e| LakeError::CorruptArtifact(e.to_string()))?;
                let fps = self.compute_fingerprints(&model)?;
                self.finish_ingest(&name, &model, digest, card, fps)?;
                Ok(())
            }
            WalOp::UpdateCard { id, card } => self.apply_update_card(ModelId(id), card),
            WalOp::RegisterDataset { dataset } => self.apply_register_dataset(dataset),
            WalOp::RegisterBenchmark { benchmark, domain } => {
                self.apply_register_benchmark(benchmark, domain)
            }
            WalOp::GraphRebuilt => {
                self.apply_graph_rebuilt();
                Ok(())
            }
        }
    }
}
