//! Error type of the lake API.

use std::fmt;

/// Errors surfaced by [`crate::ModelLake`] operations.
#[derive(Debug)]
pub enum LakeError {
    /// A model/dataset/benchmark name or id did not resolve.
    NotFound {
        /// Entity kind.
        kind: &'static str,
        /// The name or id used.
        name: String,
    },
    /// A name was already registered (names are unique within a lake).
    Duplicate {
        /// Entity kind.
        kind: &'static str,
        /// The conflicting name.
        name: String,
    },
    /// Invalid lake configuration rejected by
    /// [`crate::lake::LakeConfigBuilder::build`].
    Config(String),
    /// Stored artifact failed integrity or decode checks.
    CorruptArtifact(String),
    /// A persisted manifest's format version is newer than this build
    /// understands (opening it would misinterpret or drop data).
    UnsupportedManifest {
        /// Version found on disk.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// Write-ahead log failure (append, recovery or compaction).
    Wal(mlake_wal::WalError),
    /// A numeric/shape failure bubbled up from the compute layers.
    Tensor(mlake_tensor::TensorError),
    /// MLQL parse/execution failure.
    Query(mlake_query::QueryError),
    /// Filesystem persistence failure.
    Io(std::io::Error),
    /// An internal invariant was violated (a lake bug, not a caller error);
    /// surfaced as an error rather than a panic so library callers can
    /// recover.
    Internal(String),
}

impl fmt::Display for LakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LakeError::NotFound { kind, name } => write!(f, "{kind} not found: '{name}'"),
            LakeError::Duplicate { kind, name } => write!(f, "duplicate {kind}: '{name}'"),
            LakeError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            LakeError::CorruptArtifact(msg) => write!(f, "corrupt artifact: {msg}"),
            LakeError::UnsupportedManifest { found, supported } => write!(
                f,
                "manifest version {found} is newer than this build supports \
                 (up to {supported}); upgrade to open this lake"
            ),
            LakeError::Wal(e) => write!(f, "wal error: {e}"),
            LakeError::Tensor(e) => write!(f, "compute error: {e}"),
            LakeError::Query(e) => write!(f, "query error: {e}"),
            LakeError::Io(e) => write!(f, "io error: {e}"),
            LakeError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for LakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LakeError::Tensor(e) => Some(e),
            LakeError::Query(e) => Some(e),
            LakeError::Io(e) => Some(e),
            LakeError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mlake_tensor::TensorError> for LakeError {
    fn from(e: mlake_tensor::TensorError) -> Self {
        LakeError::Tensor(e)
    }
}

impl From<mlake_query::QueryError> for LakeError {
    fn from(e: mlake_query::QueryError) -> Self {
        LakeError::Query(e)
    }
}

impl From<std::io::Error> for LakeError {
    fn from(e: std::io::Error) -> Self {
        LakeError::Io(e)
    }
}

impl From<mlake_wal::WalError> for LakeError {
    fn from(e: mlake_wal::WalError) -> Self {
        LakeError::Wal(e)
    }
}

/// Lake result alias.
pub type Result<T> = std::result::Result<T, LakeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LakeError::NotFound {
            kind: "model",
            name: "ghost".into(),
        };
        assert!(e.to_string().contains("model not found"));
        let t: LakeError = mlake_tensor::TensorError::Empty("x").into();
        assert!(std::error::Error::source(&t).is_some());
        let q: LakeError = mlake_query::QueryError::Execution("y".into()).into();
        assert!(q.to_string().contains("query error"));
        let d = LakeError::Duplicate { kind: "model", name: "m".into() };
        assert!(d.to_string().contains("duplicate"));
        let u = LakeError::UnsupportedManifest {
            found: 9,
            supported: 2,
        };
        assert!(u.to_string().contains("version 9"));
        let w: LakeError = mlake_wal::WalError::Broken.into();
        assert!(w.to_string().contains("wal error"));
        assert!(std::error::Error::source(&w).is_some());
    }
}
