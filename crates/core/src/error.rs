//! Error type of the lake API.

use std::fmt;

/// Stable, exhaustive classification of every [`LakeError`], decoupling
/// *what went wrong* from the variant's diagnostic payload. Servers and
/// other wire layers dispatch on this (never on error strings); the
/// canonical HTTP mapping lives in `mlake-proto::status_for` and is
/// documented in DESIGN.md §14:
///
/// | kind           | HTTP | meaning                                        |
/// |----------------|------|------------------------------------------------|
/// | `NotFound`     | 404  | name/id/digest did not resolve                 |
/// | `Conflict`     | 409  | unique-name collision                          |
/// | `InvalidInput` | 400  | caller-supplied config/query/payload rejected  |
/// | `Corrupt`      | 500  | stored state failed integrity/decode checks    |
/// | `Unavailable`  | 503  | transient: I/O failure, broken WAL, shed load  |
/// | `Internal`     | 500  | lake bug — an internal invariant was violated  |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ErrorKind {
    /// A referenced entity does not exist.
    NotFound,
    /// The operation collides with existing state (duplicate name).
    Conflict,
    /// The caller's input (config, query, payload) was rejected.
    InvalidInput,
    /// Persistent state is damaged (checksum/decode/version failures).
    Corrupt,
    /// The operation cannot run right now but may succeed on retry
    /// (filesystem errors, a WAL that refuses writes until reopen).
    Unavailable,
    /// An internal invariant was violated — a bug in the lake itself.
    Internal,
}

impl ErrorKind {
    /// Stable lowercase label, used on the wire and in logs.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::NotFound => "not_found",
            ErrorKind::Conflict => "conflict",
            ErrorKind::InvalidInput => "invalid_input",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors surfaced by [`crate::ModelLake`] operations.
#[derive(Debug)]
pub enum LakeError {
    /// A model/dataset/benchmark name or id did not resolve.
    NotFound {
        /// Entity kind.
        kind: &'static str,
        /// The name or id used.
        name: String,
    },
    /// A name was already registered (names are unique within a lake).
    Duplicate {
        /// Entity kind.
        kind: &'static str,
        /// The conflicting name.
        name: String,
    },
    /// Invalid lake configuration rejected by
    /// [`crate::lake::LakeConfigBuilder::build`].
    Config(String),
    /// Stored artifact failed integrity or decode checks.
    CorruptArtifact(String),
    /// A persisted manifest's format version is newer than this build
    /// understands (opening it would misinterpret or drop data).
    UnsupportedManifest {
        /// Version found on disk.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// Write-ahead log failure (append, recovery or compaction).
    Wal(mlake_wal::WalError),
    /// A numeric/shape failure bubbled up from the compute layers.
    Tensor(mlake_tensor::TensorError),
    /// MLQL parse/execution failure.
    Query(mlake_query::QueryError),
    /// Filesystem persistence failure.
    Io(std::io::Error),
    /// An internal invariant was violated (a lake bug, not a caller error);
    /// surfaced as an error rather than a panic so library callers can
    /// recover.
    Internal(String),
}

impl LakeError {
    /// Classifies this error into the stable [`ErrorKind`] taxonomy.
    ///
    /// The match is deliberately wildcard-free (including the nested
    /// `WalError`), so adding a variant to either enum is a compile error
    /// here — the wire mapping can never silently lag the error type.
    pub fn kind(&self) -> ErrorKind {
        match self {
            LakeError::NotFound { .. } => ErrorKind::NotFound,
            LakeError::Duplicate { .. } => ErrorKind::Conflict,
            LakeError::Config(_) => ErrorKind::InvalidInput,
            LakeError::CorruptArtifact(_) => ErrorKind::Corrupt,
            // A too-new manifest is not damage, but this build cannot
            // serve the lake until upgraded — operationally "try another
            // node", hence Unavailable rather than Corrupt.
            LakeError::UnsupportedManifest { .. } => ErrorKind::Unavailable,
            LakeError::Wal(e) => match e {
                mlake_wal::WalError::Corrupt { .. } => ErrorKind::Corrupt,
                mlake_wal::WalError::Io(_) | mlake_wal::WalError::Broken => {
                    ErrorKind::Unavailable
                }
            },
            LakeError::Tensor(_) => ErrorKind::InvalidInput,
            LakeError::Query(_) => ErrorKind::InvalidInput,
            LakeError::Io(_) => ErrorKind::Unavailable,
            LakeError::Internal(_) => ErrorKind::Internal,
        }
    }
}

impl fmt::Display for LakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LakeError::NotFound { kind, name } => write!(f, "{kind} not found: '{name}'"),
            LakeError::Duplicate { kind, name } => write!(f, "duplicate {kind}: '{name}'"),
            LakeError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            LakeError::CorruptArtifact(msg) => write!(f, "corrupt artifact: {msg}"),
            LakeError::UnsupportedManifest { found, supported } => write!(
                f,
                "manifest version {found} is newer than this build supports \
                 (up to {supported}); upgrade to open this lake"
            ),
            LakeError::Wal(e) => write!(f, "wal error: {e}"),
            LakeError::Tensor(e) => write!(f, "compute error: {e}"),
            LakeError::Query(e) => write!(f, "query error: {e}"),
            LakeError::Io(e) => write!(f, "io error: {e}"),
            LakeError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for LakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LakeError::Tensor(e) => Some(e),
            LakeError::Query(e) => Some(e),
            LakeError::Io(e) => Some(e),
            LakeError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mlake_tensor::TensorError> for LakeError {
    fn from(e: mlake_tensor::TensorError) -> Self {
        LakeError::Tensor(e)
    }
}

impl From<mlake_query::QueryError> for LakeError {
    fn from(e: mlake_query::QueryError) -> Self {
        LakeError::Query(e)
    }
}

impl From<std::io::Error> for LakeError {
    fn from(e: std::io::Error) -> Self {
        LakeError::Io(e)
    }
}

impl From<mlake_wal::WalError> for LakeError {
    fn from(e: mlake_wal::WalError) -> Self {
        LakeError::Wal(e)
    }
}

/// Lake result alias.
pub type Result<T> = std::result::Result<T, LakeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LakeError::NotFound {
            kind: "model",
            name: "ghost".into(),
        };
        assert!(e.to_string().contains("model not found"));
        let t: LakeError = mlake_tensor::TensorError::Empty("x").into();
        assert!(std::error::Error::source(&t).is_some());
        let q: LakeError = mlake_query::QueryError::Execution("y".into()).into();
        assert!(q.to_string().contains("query error"));
        let d = LakeError::Duplicate { kind: "model", name: "m".into() };
        assert!(d.to_string().contains("duplicate"));
        let u = LakeError::UnsupportedManifest {
            found: 9,
            supported: 2,
        };
        assert!(u.to_string().contains("version 9"));
        let w: LakeError = mlake_wal::WalError::Broken.into();
        assert!(w.to_string().contains("wal error"));
        assert!(std::error::Error::source(&w).is_some());
    }

    /// One constructed value per `LakeError` variant (and per nested
    /// `WalError` variant), each checked against its documented kind.
    /// Together with the wildcard-free match in `kind()`, this pins the
    /// full taxonomy: a new variant fails compilation there and a
    /// reclassified variant fails here.
    #[test]
    fn every_variant_has_a_stable_kind() {
        use ErrorKind::*;
        let io = || std::io::Error::other("disk on fire");
        let cases: Vec<(LakeError, ErrorKind)> = vec![
            (LakeError::NotFound { kind: "model", name: "ghost".into() }, NotFound),
            (LakeError::Duplicate { kind: "model", name: "twin".into() }, Conflict),
            (LakeError::Config("shards must be a power of two".into()), InvalidInput),
            (LakeError::CorruptArtifact("digest mismatch".into()), Corrupt),
            (LakeError::UnsupportedManifest { found: 9, supported: 2 }, Unavailable),
            (
                LakeError::Wal(mlake_wal::WalError::Corrupt {
                    segment: "seg-0001.wal".into(),
                    offset: 64,
                    detail: "bad crc".into(),
                }),
                Corrupt,
            ),
            (LakeError::Wal(mlake_wal::WalError::Io(io())), Unavailable),
            (LakeError::Wal(mlake_wal::WalError::Broken), Unavailable),
            (LakeError::Tensor(mlake_tensor::TensorError::Empty("x")), InvalidInput),
            (LakeError::Query(mlake_query::QueryError::Execution("y".into())), InvalidInput),
            (LakeError::Io(io()), Unavailable),
            (LakeError::Internal("generation went backwards".into()), Internal),
        ];
        for (err, want) in cases {
            assert_eq!(err.kind(), want, "{err}");
        }
        // The wire labels are stable, lowercase, and distinct.
        let kinds = [NotFound, Conflict, InvalidInput, Corrupt, Unavailable, Internal];
        let labels: std::collections::HashSet<&str> =
            kinds.iter().map(|k| k.as_str()).collect();
        assert_eq!(labels.len(), kinds.len());
        assert_eq!(NotFound.to_string(), "not_found");
    }
}
