//! Lake persistence: a directory layout that round-trips the whole lake.
//!
//! ```text
//! <dir>/
//!   blobs/<sha256-hex>.blob    content-addressed model artifacts
//!   manifest.json              registry, datasets, benchmarks, event log
//! ```
//!
//! Fingerprint indexes and the version-graph cache are *not* persisted:
//! they are derived state, rebuilt deterministically from the artifacts at
//! [`ModelLake::open`] (the same self-healing choice content-addressed
//! stores make — derived state can never be out of sync with the data).

use crate::error::{LakeError, Result};
use crate::event::EventLog;
use crate::hash::Digest;
use crate::lake::{LakeConfig, ModelLake};
use crate::registry::ModelId;
use crate::store::BlobStore;
use mlake_benchlab::Benchmark;
use mlake_cards::ModelCard;
use mlake_nn::Model;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk manifest format (versioned).
#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    /// Format version for forward compatibility.
    version: u32,
    /// Lake name.
    name: String,
    /// Models in id order.
    models: Vec<ManifestModel>,
    /// Registered datasets.
    datasets: Vec<mlake_datagen::Dataset>,
    /// Registered benchmarks with their domain labels.
    benchmarks: Vec<(Benchmark, Option<String>)>,
    /// The full event log.
    events: EventLog,
}

#[derive(Debug, Serialize, Deserialize)]
struct ManifestModel {
    name: String,
    digest: String,
    card: ModelCard,
}

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

impl ModelLake {
    /// Persists the lake into `dir` (created if absent).
    pub fn persist(&self, dir: &Path) -> Result<()> {
        let _span = mlake_obs::span("lake.persist");
        std::fs::create_dir_all(dir)?;
        self.store_ref().persist_dir(&dir.join("blobs"))?;
        let mut models = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            let entry = self.entry(ModelId(i as u64))?;
            models.push(ManifestModel {
                name: entry.name,
                digest: entry.digest.to_hex(),
                card: entry.card,
            });
        }
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            name: self.config().name.clone(),
            models,
            datasets: self.datasets_snapshot(),
            benchmarks: self.benchmarks_snapshot(),
            events: self.event_log_snapshot(),
        };
        let json = serde_json::to_vec_pretty(&manifest)
            .map_err(|e| LakeError::CorruptArtifact(format!("manifest encode: {e}")))?;
        std::fs::write(dir.join("manifest.json"), json)?;
        Ok(())
    }

    /// Opens a persisted lake, re-ingesting every artifact (fingerprints and
    /// indexes are rebuilt; scores and the version graph recompute lazily).
    /// `config` must use the same probe/sketch parameters the lake was
    /// created with for fingerprints to match; the lake name is restored
    /// from the manifest.
    pub fn open(dir: &Path, config: LakeConfig) -> Result<ModelLake> {
        let _span = mlake_obs::span("lake.open");
        let manifest_bytes = std::fs::read(dir.join("manifest.json"))?;
        let manifest: Manifest = serde_json::from_slice(&manifest_bytes)
            .map_err(|e| LakeError::CorruptArtifact(format!("manifest decode: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(LakeError::CorruptArtifact(format!(
                "unsupported manifest version {}",
                manifest.version
            )));
        }
        let store = crate::store::InMemoryStore::load_dir(&dir.join("blobs"))?;
        let lake = ModelLake::new(LakeConfig {
            name: manifest.name,
            ..config
        });
        for ds in manifest.datasets {
            lake.register_dataset(ds)?;
        }
        for (bench, domain) in manifest.benchmarks {
            lake.register_benchmark(bench, domain)?;
        }
        for m in manifest.models {
            let digest = Digest::from_hex(&m.digest).ok_or_else(|| {
                LakeError::CorruptArtifact(format!("bad digest for '{}'", m.name))
            })?;
            let bytes = store.get(&digest)?;
            let model = Model::from_bytes(&bytes)
                .map_err(|e| LakeError::CorruptArtifact(e.to_string()))?;
            lake.ingest_model(&m.name, &model, Some(m.card))?;
        }
        // Restore the original event history *after* re-ingestion so the
        // graph timestamps (citation keys) survive the round trip.
        lake.restore_event_log(manifest.events);
        Ok(lake)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::populate::{populate_from_ground_truth, CardPolicy};
    use mlake_datagen::{generate_lake, LakeSpec};

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mlake-persist-{tag}-{}", std::process::id()))
    }

    #[test]
    fn persist_open_round_trip() {
        let dir = tmp("rt");
        let _ = std::fs::remove_dir_all(&dir);
        let gt = generate_lake(&LakeSpec::tiny(3));
        let lake = ModelLake::new(LakeConfig::default());
        populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
        let citation_before = {
            lake.rebuild_version_graph(None).unwrap();
            lake.cite(ModelId(1)).unwrap()
        };
        lake.persist(&dir).unwrap();

        let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
        assert_eq!(reopened.len(), lake.len());
        assert_eq!(reopened.model_names(), lake.model_names());
        assert_eq!(reopened.benchmark_names(), lake.benchmark_names());
        // Artifacts identical bit for bit.
        for i in 0..lake.len() {
            assert_eq!(
                reopened.model(ModelId(i as u64)).unwrap().flat_params(),
                lake.model(ModelId(i as u64)).unwrap().flat_params()
            );
        }
        // Cards survive.
        assert_eq!(
            reopened.entry(ModelId(0)).unwrap().card,
            lake.entry(ModelId(0)).unwrap().card
        );
        // Citations (graph timestamps) survive the round trip.
        reopened.rebuild_version_graph(None).unwrap();
        let citation_after = reopened.cite(ModelId(1)).unwrap();
        assert_eq!(citation_before.model_name, citation_after.model_name);
        // Search works on the rebuilt indexes.
        let hits = reopened
            .similar(ModelId(0), mlake_fingerprint::FingerprintKind::Hybrid, 3)
            .unwrap();
        assert!(!hits.is_empty());
        // Queries work.
        assert!(!reopened
            .prepare("FIND MODELS WHERE task = 'classification'")
            .unwrap()
            .run()
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_and_corrupt() {
        let dir = tmp("bad");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(ModelLake::open(&dir, LakeConfig::default()).is_err());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), b"{not json").unwrap();
        assert!(matches!(
            ModelLake::open(&dir, LakeConfig::default()),
            Err(LakeError::CorruptArtifact(_))
        ));
        // Wrong manifest version.
        std::fs::write(
            dir.join("manifest.json"),
            br#"{"version":99,"name":"x","models":[],"datasets":[],"benchmarks":[],"events":{"events":[]}}"#,
        )
        .unwrap();
        std::fs::create_dir_all(dir.join("blobs")).unwrap();
        assert!(matches!(
            ModelLake::open(&dir, LakeConfig::default()),
            Err(LakeError::CorruptArtifact(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
