//! Lake persistence: block segments + superblock + the write-ahead log
//! (DESIGN.md §12, §15).
//!
//! ```text
//! <dir>/
//!   blobs/<sha256-hex>.blob    content-addressed model artifacts
//!   segs/<seq>.seg             immutable, checksummed block segments
//!   manifest.json              superblock (v3): the live segment chain
//!                              and the WAL LSN the chain covers
//!   wal/<lsn>.wal              write-ahead log segments (mlake-wal)
//! ```
//!
//! [`ModelLake::persist`] on a durable lake writes only the **delta**
//! since the last persist — one new segment holding the models, card
//! overrides, dataset/benchmark registrations and events the live chain
//! does not yet cover — then atomically swaps in a new superblock naming
//! the extended chain. Persist cost is O(ops since last persist), not
//! O(lake). Once the chain grows past a threshold the persist folds
//! everything into a single segment instead (a major compaction), so
//! folding stays bounded. Every file lands via temp-file + rename; a
//! crash mid-persist leaves either the old superblock or the new one,
//! never a torn mix (at worst an unreachable segment for GC).
//!
//! [`ModelLake::open`] on a v3 lake reads the superblock and folds the
//! segment chain — pure metadata, no model blobs. Artifact bytes page in
//! lazily through the store's residency layer on first touch, and the
//! HNSW index build (fed from the fingerprints persisted in the Model
//! blocks) is deferred to the first search. WAL replay past the
//! superblock's `last_lsn` is unchanged. Legacy v1/v2 whole-manifest
//! snapshots still open through the original eager path and are
//! upgraded to v3 by their next persist.

use crate::blockstore::{self, Block, ModelBlock};
use crate::durable::{WalLink, WalOp};
use crate::error::{LakeError, Result};
use crate::event::EventLog;
use crate::hash::Digest;
use crate::lake::{LakeConfig, LakeShared, ModelLake};
use crate::registry::{BenchmarkEntry, ModelEntry, ModelId};
use crate::store::{BlobStore, ResidentStore};
use mlake_benchlab::Benchmark;
use mlake_cards::ModelCard;
use mlake_nn::Model;
use mlake_wal::{RealFs, Vfs, Wal};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Current manifest format version. v3 turned the manifest into a
/// superblock over immutable block segments (DESIGN.md §15); v2 added
/// `last_lsn` (the WAL high-water mark); v1 predates the WAL. All three
/// still open.
pub const MANIFEST_VERSION: u32 = 3;

/// Once the live chain would grow past this many segments, persist folds
/// the whole catalogue into a single segment instead of appending a
/// delta, bounding open-time fold work.
const MAX_LIVE_SEGMENTS: usize = 8;

/// The v3 superblock: all `manifest.json` holds is the live segment
/// chain and the WAL position it covers. State lives in the segments.
#[derive(Debug, Serialize, Deserialize)]
struct SuperBlock {
    /// Format version.
    version: u32,
    /// Lake name.
    name: String,
    /// Live segment sequence numbers, in fold order.
    segments: Vec<u64>,
    /// Highest WAL LSN folded into the chain; replay starts after it.
    #[serde(default)]
    last_lsn: u64,
}

/// Just enough of any manifest version to dispatch on.
#[derive(Debug, Deserialize)]
struct VersionProbe {
    #[serde(default)]
    version: u32,
}

/// The v1/v2 whole-state manifest, kept for the legacy open path and the
/// pinned-fixture writer ([`ModelLake::export_v2`]).
#[derive(Debug, Serialize, Deserialize)]
struct LegacyManifest {
    version: u32,
    name: String,
    models: Vec<LegacyManifestModel>,
    datasets: Vec<mlake_datagen::Dataset>,
    benchmarks: Vec<(Benchmark, Option<String>)>,
    events: EventLog,
    #[serde(default)]
    last_lsn: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct LegacyManifestModel {
    name: String,
    digest: String,
    card: ModelCard,
}

/// The snapshot + compaction body shared by the explicit
/// [`ModelLake::persist`] path and the background compactor
/// (`crate::compact`): one consistent cut of the shared state under the
/// `op_lock`. Persisting into the lake's own directory is incremental
/// (delta segment + superblock swap + WAL compaction); persisting
/// anywhere else — including an ephemeral lake's first persist — is a
/// full export of blobs and catalogue.
pub(crate) fn persist_shared(shared: &LakeShared, dir: &Path, vfs: &Arc<dyn Vfs>) -> Result<()> {
    let _span = mlake_obs::span("lake.persist");
    // Hold the op lock so the cut and its last_lsn are one consistent
    // view of the lake.
    let _op = shared.op_lock.lock();
    match shared.wal.as_ref() {
        Some(link) if link.dir == dir => persist_incremental(shared, link, dir, vfs),
        _ => export_full(shared, dir, vfs),
    }
}

/// Builds the [`Block::Model`] for a registry entry from stashed or
/// folded fingerprints.
fn model_block(
    entry: &ModelEntry,
    fresh_fps: &HashMap<u64, [Vec<f32>; 3]>,
    folded_fps: &HashMap<String, [Vec<u32>; 3]>,
) -> Result<ModelBlock> {
    let digest = entry.digest.to_hex();
    let fps = match fresh_fps.get(&entry.id.0) {
        Some(fps) => blockstore::fp_bits(fps),
        None => folded_fps
            .get(&digest)
            .cloned()
            .ok_or_else(|| {
                LakeError::Internal(format!(
                    "no fingerprints available to persist model '{}'",
                    entry.name
                ))
            })?,
    };
    Ok(ModelBlock {
        name: entry.name.clone(),
        digest,
        arch: entry.arch.clone(),
        params: entry.params,
        card: entry.card.clone(),
        fps,
    })
}

/// Fingerprint bit-patterns by digest from the lake's own live chain
/// (for models whose in-process stash was already cleared).
fn folded_fps_from_chain(shared: &LakeShared, live: &[u64]) -> Result<HashMap<String, [Vec<u32>; 3]>> {
    let mut out = HashMap::new();
    if let Some(link) = &shared.wal {
        for &seq in live {
            for block in blockstore::read_segment(&link.dir, &link.vfs, seq)? {
                if let Block::Model(m) = block {
                    out.insert(m.digest, m.fps);
                }
            }
        }
    }
    Ok(out)
}

/// Incremental persist into the attached directory (caller holds the
/// `op_lock`): delta segment → superblock swap → WAL compaction.
fn persist_incremental(
    shared: &LakeShared,
    link: &crate::durable::WalLink,
    dir: &Path,
    vfs: &Arc<dyn Vfs>,
) -> Result<()> {
    vfs.create_dir_all(dir)?;
    // Snapshot the persist marks. The op lock excludes every mutator, so
    // the marks stay consistent with the registry/event reads below.
    let (live, seq, models_mark, datasets_mark, bench_mark, events_mark, dirty, fresh_fps) = {
        // lock-order: 46 (core.segstate)
        let seg = shared.seg.lock();
        (
            seg.live.clone(),
            seg.next_seq(),
            seg.models,
            seg.datasets,
            seg.benchmarks.clone(),
            seg.events,
            seg.dirty_cards.clone(),
            seg.fresh_fps.clone(),
        )
    };
    let major = live.len() + 1 > MAX_LIVE_SEGMENTS;
    let empty_fps = HashMap::new();
    let folded_fps = if major {
        // A major fold rewrites every model: recover fingerprints for the
        // ones whose stash was cleared from the chain being replaced.
        folded_fps_from_chain(shared, &live)?
    } else {
        empty_fps
    };

    let mut blocks = Vec::new();
    let (total_models, total_datasets, all_bench_names) = {
        let reg = shared.registry.read();
        if major {
            for entry in &reg.models {
                blocks.push(Block::Model(model_block(entry, &fresh_fps, &folded_fps)?));
            }
            for ds in &reg.datasets {
                blocks.push(Block::Dataset {
                    dataset: ds.clone(),
                });
            }
            for (benchmark, domain) in shared.benchmarks_snapshot() {
                blocks.push(Block::Benchmark { benchmark, domain });
            }
        } else {
            for entry in &reg.models[models_mark..] {
                blocks.push(Block::Model(model_block(entry, &fresh_fps, &folded_fps)?));
            }
            // Cards replaced on already-persisted models; fresh Model
            // blocks above carry their current card already.
            for &id in dirty.iter().filter(|&&id| (id as usize) < models_mark) {
                let entry = reg.model(ModelId(id)).ok_or_else(|| {
                    LakeError::Internal(format!("dirty card for unknown model id {id}"))
                })?;
                blocks.push(Block::CardOverride {
                    id,
                    card: entry.card.clone(),
                });
            }
            for ds in &reg.datasets[datasets_mark..] {
                blocks.push(Block::Dataset {
                    dataset: ds.clone(),
                });
            }
            for (benchmark, domain) in shared
                .benchmarks_snapshot()
                .into_iter()
                .filter(|(b, _)| !bench_mark.contains(&b.name))
            {
                blocks.push(Block::Benchmark { benchmark, domain });
            }
        }
        (
            reg.models.len(),
            reg.datasets.len(),
            reg.benchmarks.keys().cloned().collect(),
        )
    };
    let events = shared.events.read().events().to_vec();
    let total_events = events.len();
    let event_tail = if major { 0 } else { events_mark };
    if total_events > event_tail {
        blocks.push(Block::Events {
            events: events[event_tail..].to_vec(),
        });
    }
    // Deliberately NO `Block::TextIndex` here: a whole-index snapshot is
    // O(lake) and would break the invariant that a delta segment costs
    // O(ops since last persist) (bench_guard's delta-size gate). The text
    // state a delta carries is exactly its Model/CardOverride blocks, and
    // folding those invalidates any older snapshot, so open re-derives
    // the affected docs from the folded cards — no blob reads.

    // Segment first, superblock second: a crash between the two leaves
    // the old superblock pointing at the old chain and one unreachable
    // segment for GC. Never a torn state.
    let live_after = if blocks.is_empty() {
        live
    } else {
        blockstore::write_segment(dir, vfs, seq, &blocks)?;
        if major {
            vec![seq]
        } else {
            let mut v = live;
            v.push(seq);
            v
        }
    };
    let last_lsn = link.wal.head();
    let superblock = SuperBlock {
        version: MANIFEST_VERSION,
        name: shared.config.name.clone(),
        segments: live_after.clone(),
        last_lsn,
    };
    let json = serde_json::to_vec_pretty(&superblock)
        .map_err(|e| LakeError::CorruptArtifact(format!("superblock encode: {e}")))?;
    vfs.write_atomic(&dir.join("manifest.json"), &json)?;

    // The swap landed: advance the marks to the persisted cut.
    {
        // lock-order: 46 (core.segstate)
        let mut seg = shared.seg.lock();
        seg.live = live_after;
        seg.next_seq = seq + 1;
        seg.models = total_models;
        seg.datasets = total_datasets;
        seg.benchmarks = all_bench_names;
        seg.events = total_events;
        seg.dirty_cards.clear();
        seg.fresh_fps.clear();
    }
    // The chain is the new recovery base: drop the covered WAL prefix.
    link.wal.compact_to(last_lsn)?;
    Ok(())
}

/// Full export into a foreign directory (or an ephemeral lake's first
/// persist): every blob, one full segment, a fresh superblock. Does not
/// touch the lake's own persist marks.
fn export_full(shared: &LakeShared, dir: &Path, vfs: &Arc<dyn Vfs>) -> Result<()> {
    vfs.create_dir_all(dir)?;
    let blob_dir = dir.join("blobs");
    vfs.create_dir_all(&blob_dir)?;
    let (models, datasets, benchmarks) = {
        let reg = shared.registry.read();
        (
            reg.models.clone(),
            shared.datasets_snapshot(),
            shared.benchmarks_snapshot(),
        )
    };
    let events = shared.events.read().events().to_vec();
    let (live, fresh_fps) = {
        // lock-order: 46 (core.segstate)
        let seg = shared.seg.lock();
        (seg.live.clone(), seg.fresh_fps.clone())
    };
    let folded_fps = folded_fps_from_chain(shared, &live)?;
    // Blob export: the store faults evicted blobs back in from the
    // lake's own backing as needed.
    for entry in &models {
        let path = ResidentStore::blob_path(&blob_dir, &entry.digest);
        if !vfs.exists(&path) {
            let bytes = shared.store.get(&entry.digest)?;
            vfs.write_atomic(&path, &bytes)?;
        }
    }
    let mut blocks = Vec::new();
    for entry in &models {
        blocks.push(Block::Model(model_block(entry, &fresh_fps, &folded_fps)?));
    }
    for dataset in datasets {
        blocks.push(Block::Dataset { dataset });
    }
    for (benchmark, domain) in benchmarks {
        blocks.push(Block::Benchmark { benchmark, domain });
    }
    if !events.is_empty() {
        blocks.push(Block::Events { events });
    }
    // A full export is O(lake) by definition, so the whole-index snapshot
    // rides along here (and only here): a chain that is exactly one full
    // segment reopens its text index without re-tokenizing a single card.
    if !blocks.is_empty() {
        blocks.push(Block::TextIndex {
            index: shared.text_index_snapshot(),
        });
    }
    let segments = if blocks.is_empty() {
        Vec::new()
    } else {
        blockstore::write_segment(dir, vfs, 1, &blocks)?;
        vec![1]
    };
    let superblock = SuperBlock {
        version: MANIFEST_VERSION,
        name: shared.config.name.clone(),
        segments,
        last_lsn: shared.wal.as_ref().map_or(0, |l| l.wal.head()),
    };
    let json = serde_json::to_vec_pretty(&superblock)
        .map_err(|e| LakeError::CorruptArtifact(format!("superblock encode: {e}")))?;
    vfs.write_atomic(&dir.join("manifest.json"), &json)?;
    Ok(())
}

impl ModelLake {
    /// Persists the lake into `dir` (created if absent). On a durable lake
    /// persisting into its own directory this is incremental: one delta
    /// segment (if anything changed), a superblock swap, and WAL
    /// compaction — cost O(ops since last persist). Persisting anywhere
    /// else exports the full lake.
    // lint: no-span — persist_shared opens the lake.persist span
    pub fn persist(&self, dir: &Path) -> Result<()> {
        let vfs = self
            .shared
            .wal
            .as_ref()
            .map(|l| Arc::clone(&l.vfs))
            .unwrap_or_else(RealFs::shared);
        persist_shared(&self.shared, dir, &vfs)
    }

    /// [`ModelLake::persist`] through an explicit [`Vfs`] (fault-injection
    /// tests crash mid-persist here). All files land atomically
    /// (temp-file + rename), so a crash leaves either the old superblock
    /// or the new one, never a torn mix.
    // lint: no-span — persist_shared opens the lake.persist span
    pub(crate) fn persist_with(&self, dir: &Path, vfs: &Arc<dyn Vfs>) -> Result<()> {
        persist_shared(&self.shared, dir, vfs)
    }

    /// Opens a persisted lake. A v3 lake loads the superblock and folds
    /// the segment chain — metadata only; model blobs page in lazily on
    /// first touch and the fingerprint indexes (restored from persisted
    /// fingerprints, never recomputed) build on first search. Legacy
    /// v1/v2 manifests load eagerly as before. Then the write-ahead log
    /// replays past the manifest's `last_lsn`. The returned lake is
    /// durable: further mutations append to the same WAL.
    ///
    /// `config` must use the same probe/sketch parameters the lake was
    /// created with for fingerprints to match; the lake name is restored
    /// from the manifest.
    // lint: no-span — open_with opens the lake.open span
    pub fn open(dir: &Path, config: LakeConfig) -> Result<ModelLake> {
        Self::open_with(dir, config, RealFs::shared())
    }

    /// [`ModelLake::open`] through an arbitrary [`Vfs`].
    pub fn open_with(dir: &Path, config: LakeConfig, vfs: Arc<dyn Vfs>) -> Result<ModelLake> {
        let _span = mlake_obs::span("lake.open");
        let manifest_bytes = vfs.read(&dir.join("manifest.json"))?;
        let probe: VersionProbe = serde_json::from_slice(&manifest_bytes)
            .map_err(|e| LakeError::CorruptArtifact(format!("manifest decode: {e}")))?;
        if probe.version == 0 || probe.version > MANIFEST_VERSION {
            return Err(LakeError::UnsupportedManifest {
                found: probe.version,
                supported: MANIFEST_VERSION,
            });
        }
        let (mut lake, last_lsn) = if probe.version == MANIFEST_VERSION {
            Self::open_v3(dir, config, &vfs, &manifest_bytes)?
        } else {
            Self::open_legacy(dir, config, &vfs, &manifest_bytes)?
        };
        // Replay everything the manifest does not cover, in LSN order.
        let (wal, replay) = Wal::open_with(
            &dir.join("wal"),
            lake.wal_options(),
            Arc::clone(&vfs),
            last_lsn,
        )?;
        for (lsn, payload) in &replay.records {
            let op: WalOp = serde_json::from_slice(payload).map_err(|e| {
                LakeError::CorruptArtifact(format!("wal record {lsn}: {e}"))
            })?;
            lake.apply_op(*lsn, op)?;
        }
        lake.shared_mut()?.wal = Some(WalLink {
            wal,
            dir: dir.to_path_buf(),
            vfs,
        });
        lake.spawn_compactor()?;
        Ok(lake)
    }

    /// The v3 open path: superblock + segment fold, no blob reads, no
    /// fingerprint recomputation, index build deferred to first search.
    fn open_v3(
        dir: &Path,
        config: LakeConfig,
        vfs: &Arc<dyn Vfs>,
        manifest_bytes: &[u8],
    ) -> Result<(ModelLake, u64)> {
        let sb: SuperBlock = serde_json::from_slice(manifest_bytes)
            .map_err(|e| LakeError::CorruptArtifact(format!("superblock decode: {e}")))?;
        let folded = blockstore::fold_segments(dir, vfs, &sb.segments)?;
        let lake = ModelLake::new(LakeConfig {
            name: sb.name,
            ..config
        });
        // Non-resident blobs fault in from the lake's own blob directory.
        lake.shared
            .store
            .attach_backing(&dir.join("blobs"), Arc::clone(vfs));
        // Queue the HNSW inserts instead of building now: the persisted
        // fingerprints flow straight into the queue, and the first search
        // drains it in this same id order (bit-identical to eager).
        lake.defer_index_builds();
        let n_models = folded.models.len();
        let n_datasets = folded.datasets.len();
        {
            let mut reg = lake.shared.registry.write();
            for (i, m) in folded.models.into_iter().enumerate() {
                let digest = Digest::from_hex(&m.digest).ok_or_else(|| {
                    LakeError::CorruptArtifact(format!("bad digest for '{}'", m.name))
                })?;
                let id = ModelId(i as u64);
                lake.queue_index_insert(
                    digest.route_key(),
                    id.0,
                    blockstore::fp_floats(&m.fps),
                );
                reg.by_name.insert(m.name.clone(), id);
                reg.models.push(ModelEntry {
                    id,
                    name: m.name,
                    arch: m.arch,
                    digest,
                    params: m.params,
                    tags: m.card.task_tags.clone(),
                    card: m.card,
                });
            }
            reg.datasets = folded.datasets;
            for (benchmark, domain) in folded.benchmarks {
                reg.benchmarks
                    .insert(benchmark.name.clone(), BenchmarkEntry { benchmark, domain });
            }
        }
        let n_events = folded.events.len();
        lake.restore_event_log(EventLog::from_events(folded.events));
        // Install the persisted text index when the chain carries one;
        // older chains (pre-§16) fold to `None` and rebuild from the
        // cards just loaded — still no blob reads, so open stays lazy.
        match folded.text {
            Some(index) => lake.restore_text_index(index),
            None => lake.rebuild_text_index(),
        }
        {
            // Mark everything the chain covers as persisted; WAL-replayed
            // ops past this point count as fresh again.
            // lock-order: 46 (core.segstate)
            let mut seg = lake.shared.seg.lock();
            seg.next_seq = sb.segments.iter().copied().max().unwrap_or(0) + 1;
            seg.live = sb.segments;
            seg.models = n_models;
            seg.datasets = n_datasets;
            seg.benchmarks = lake.shared.registry.read().benchmarks.keys().cloned().collect();
            seg.events = n_events;
        }
        Ok((lake, sb.last_lsn))
    }

    /// The legacy v1/v2 open path: eager blob load, re-ingesting every
    /// artifact so fingerprints and indexes rebuild. The next persist
    /// writes the whole catalogue as segment 1 and upgrades the manifest
    /// to v3.
    fn open_legacy(
        dir: &Path,
        config: LakeConfig,
        vfs: &Arc<dyn Vfs>,
        manifest_bytes: &[u8],
    ) -> Result<(ModelLake, u64)> {
        let manifest: LegacyManifest = serde_json::from_slice(manifest_bytes)
            .map_err(|e| LakeError::CorruptArtifact(format!("manifest decode: {e}")))?;
        let store = ResidentStore::load_dir(&dir.join("blobs"), config.resident_bytes)?;
        let mut lake = ModelLake::new(LakeConfig {
            name: manifest.name,
            ..config
        });
        // The loaded blobs become the working set (replayed ingests
        // resolve their digests against it; re-ingesting below is an
        // idempotent content-addressed no-op).
        lake.shared_mut()?.store = store;
        lake.shared
            .store
            .attach_backing(&dir.join("blobs"), Arc::clone(vfs));
        for ds in manifest.datasets {
            lake.register_dataset(ds)?;
        }
        for (bench, domain) in manifest.benchmarks {
            lake.register_benchmark(bench, domain)?;
        }
        for m in manifest.models {
            let digest = Digest::from_hex(&m.digest).ok_or_else(|| {
                LakeError::CorruptArtifact(format!("bad digest for '{}'", m.name))
            })?;
            let bytes = lake.shared.store.get(&digest)?;
            let model = Model::from_bytes(&bytes)
                .map_err(|e| LakeError::CorruptArtifact(e.to_string()))?;
            lake.ingest_model(&m.name, &model, Some(m.card))?;
        }
        // Restore the original event history *after* re-ingestion so the
        // graph timestamps (citation keys) survive the round trip.
        lake.restore_event_log(manifest.events);
        // Persist marks stay at zero: no segments cover anything yet, so
        // the first persist writes the full catalogue (as one delta).
        Ok((lake, manifest.last_lsn))
    }

    /// Writes `dir` as a legacy v2 whole-manifest snapshot. Fixture
    /// generation only (`tests/fixtures/v2-lake`) — the live format is
    /// the v3 superblock; this writer exists so the pinned back-compat
    /// fixture can be regenerated from current code.
    #[doc(hidden)]
    // lint: no-span — test-fixture writer, not a production path
    pub fn export_v2(&self, dir: &Path) -> Result<()> {
        let vfs = RealFs::shared();
        let shared = &self.shared;
        let _op = shared.op_lock.lock();
        vfs.create_dir_all(dir)?;
        let blob_dir = dir.join("blobs");
        vfs.create_dir_all(&blob_dir)?;
        let models: Vec<LegacyManifestModel> = {
            let reg = shared.registry.read();
            for entry in &reg.models {
                let path = ResidentStore::blob_path(&blob_dir, &entry.digest);
                if !vfs.exists(&path) {
                    vfs.write_atomic(&path, &shared.store.get(&entry.digest)?)?;
                }
            }
            reg.models
                .iter()
                .map(|entry| LegacyManifestModel {
                    name: entry.name.clone(),
                    digest: entry.digest.to_hex(),
                    card: entry.card.clone(),
                })
                .collect()
        };
        let manifest = LegacyManifest {
            version: 2,
            name: shared.config.name.clone(),
            models,
            datasets: shared.datasets_snapshot(),
            benchmarks: shared.benchmarks_snapshot(),
            events: shared.event_log_snapshot(),
            last_lsn: shared.wal.as_ref().map_or(0, |l| l.wal.head()),
        };
        let json = serde_json::to_vec_pretty(&manifest)
            .map_err(|e| LakeError::CorruptArtifact(format!("manifest encode: {e}")))?;
        vfs.write_atomic(&dir.join("manifest.json"), &json)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::populate::{populate_from_ground_truth, CardPolicy};
    use crate::registry::ModelId;
    use mlake_datagen::{generate_lake, LakeSpec};

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mlake-persist-{tag}-{}", std::process::id()))
    }

    #[test]
    fn persist_open_round_trip() {
        let dir = tmp("rt");
        let _ = std::fs::remove_dir_all(&dir);
        let gt = generate_lake(&LakeSpec::tiny(3));
        let lake = ModelLake::new(LakeConfig::default());
        populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
        let citation_before = {
            lake.rebuild_version_graph(None).unwrap();
            lake.cite(ModelId(1)).unwrap()
        };
        lake.persist(&dir).unwrap();

        let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
        assert!(reopened.is_durable());
        assert_eq!(reopened.len(), lake.len());
        assert_eq!(reopened.model_names(), lake.model_names());
        assert_eq!(reopened.benchmark_names(), lake.benchmark_names());
        // Artifacts identical bit for bit.
        for i in 0..lake.len() {
            assert_eq!(
                reopened.model(ModelId(i as u64)).unwrap().flat_params(),
                lake.model(ModelId(i as u64)).unwrap().flat_params()
            );
        }
        // Cards survive.
        assert_eq!(
            reopened.entry(ModelId(0)).unwrap().card,
            lake.entry(ModelId(0)).unwrap().card
        );
        // Citations (graph timestamps) survive the round trip.
        reopened.rebuild_version_graph(None).unwrap();
        let citation_after = reopened.cite(ModelId(1)).unwrap();
        assert_eq!(citation_before.model_name, citation_after.model_name);
        // Search works on the rebuilt indexes.
        let hits = reopened
            .similar(ModelId(0), mlake_fingerprint::FingerprintKind::Hybrid, 3)
            .unwrap();
        assert!(!hits.is_empty());
        // Queries work.
        assert!(!reopened
            .prepare("FIND MODELS WHERE task = 'classification'")
            .unwrap()
            .run()
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_and_corrupt() {
        let dir = tmp("bad");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(ModelLake::open(&dir, LakeConfig::default()).is_err());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), b"{not json").unwrap();
        assert!(matches!(
            ModelLake::open(&dir, LakeConfig::default()),
            Err(LakeError::CorruptArtifact(_))
        ));
        // A future manifest version must fail with the typed error, not a
        // panic and not a generic corruption report.
        std::fs::write(
            dir.join("manifest.json"),
            br#"{"version":99,"name":"x","segments":[]}"#,
        )
        .unwrap();
        std::fs::create_dir_all(dir.join("blobs")).unwrap();
        assert!(matches!(
            ModelLake::open(&dir, LakeConfig::default()),
            Err(LakeError::UnsupportedManifest {
                found: 99,
                supported: MANIFEST_VERSION
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persisted_superblock_records_wal_high_water_mark() {
        let dir = tmp("lsn");
        let _ = std::fs::remove_dir_all(&dir);
        let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
        assert!(lake.is_durable());
        let gt = generate_lake(&LakeSpec::tiny(2));
        populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
        lake.persist(&dir).unwrap();
        let sb: SuperBlock =
            serde_json::from_slice(&std::fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(sb.version, MANIFEST_VERSION);
        assert!(sb.last_lsn > 0, "durable mutations must advance last_lsn");
        assert!(!sb.segments.is_empty(), "the delta landed as a segment");
        // Compaction happened: reopening replays nothing, state intact.
        let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
        assert_eq!(reopened.len(), lake.len());
        assert_eq!(reopened.events(), lake.events());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_persists_append_deltas_and_major_fold_bounds_the_chain() {
        let dir = tmp("delta");
        let _ = std::fs::remove_dir_all(&dir);
        let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
        // tiny() yields ~a dozen models — enough ingest+persist cycles to
        // push the chain past MAX_LIVE_SEGMENTS and trigger a major fold.
        let gt = generate_lake(&LakeSpec::tiny(9));
        assert!(gt.models.len() > MAX_LIVE_SEGMENTS + 1);
        let mut chain_lens = Vec::new();
        for (i, gm) in gt.models.iter().enumerate() {
            lake.ingest_model(&gm.name, &gm.model, None).unwrap();
            lake.persist(&dir).unwrap();
            let sb: SuperBlock =
                serde_json::from_slice(&std::fs::read(dir.join("manifest.json")).unwrap())
                    .unwrap();
            chain_lens.push(sb.segments.len());
            assert!(
                sb.segments.len() <= MAX_LIVE_SEGMENTS,
                "persist {i}: chain {:?} exceeds the fold bound",
                sb.segments
            );
        }
        // The chain grew by one per persist until a major fold reset it.
        assert!(chain_lens.windows(2).any(|w| w[1] > w[0]), "deltas appended");
        assert!(chain_lens.windows(2).any(|w| w[1] < w[0]), "a major fold ran");
        // An idle persist adds no segment.
        let before: SuperBlock =
            serde_json::from_slice(&std::fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        lake.persist(&dir).unwrap();
        let after: SuperBlock =
            serde_json::from_slice(&std::fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(before.segments, after.segments, "no-op persist writes no segment");
        // Reopening folds the chain back to the same catalogue.
        drop(lake);
        let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
        assert_eq!(reopened.len(), gt.models.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
