//! Lake persistence: snapshots + the write-ahead log (DESIGN.md §12).
//!
//! ```text
//! <dir>/
//!   blobs/<sha256-hex>.blob    content-addressed model artifacts
//!   manifest.json              snapshot: registry, datasets, benchmarks,
//!                              event log, and the WAL LSN it covers
//!   wal/<lsn>.wal              write-ahead log segments (mlake-wal)
//! ```
//!
//! [`ModelLake::persist`] is "compact now": it writes a fresh snapshot
//! (every file lands via temp-file + rename, so a crash mid-persist can
//! never leave a half-written manifest or blob) and then drops the WAL
//! segments the snapshot covers. [`ModelLake::open`] is the inverse:
//! snapshot-load, then WAL replay of everything past the snapshot's
//! `last_lsn`.
//!
//! Fingerprint indexes and the version-graph cache are *not* persisted:
//! they are derived state, rebuilt deterministically from the artifacts at
//! [`ModelLake::open`] (the same self-healing choice content-addressed
//! stores make — derived state can never be out of sync with the data).

use crate::durable::{WalLink, WalOp};
use crate::error::{LakeError, Result};
use crate::event::EventLog;
use crate::hash::Digest;
use crate::lake::{LakeConfig, LakeShared, ModelLake};

use crate::store::BlobStore;
use mlake_benchlab::Benchmark;
use mlake_cards::ModelCard;
use mlake_nn::Model;
use mlake_wal::{RealFs, Vfs, Wal};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// On-disk manifest format (versioned).
#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    /// Format version for forward compatibility.
    version: u32,
    /// Lake name.
    name: String,
    /// Models in id order.
    models: Vec<ManifestModel>,
    /// Registered datasets.
    datasets: Vec<mlake_datagen::Dataset>,
    /// Registered benchmarks with their domain labels.
    benchmarks: Vec<(Benchmark, Option<String>)>,
    /// The full event log.
    events: EventLog,
    /// Highest WAL LSN folded into this snapshot; replay starts after it.
    /// Absent in v1 manifests (which predate the WAL), hence 0.
    #[serde(default)]
    last_lsn: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ManifestModel {
    name: String,
    digest: String,
    card: ModelCard,
}

/// Current manifest format version. v2 added `last_lsn` (the WAL
/// high-water mark); v1 manifests still open, with replay starting at 0.
pub const MANIFEST_VERSION: u32 = 2;

/// The snapshot + compaction body shared by the explicit
/// [`ModelLake::persist`] path and the background compactor
/// (`crate::compact`): one consistent cut of the shared state under the
/// `op_lock`, written atomically, then the covered WAL prefix dropped.
/// Operating on [`LakeShared`] rather than the facade is what lets the
/// compactor thread run it without borrowing the lake.
pub(crate) fn persist_shared(shared: &LakeShared, dir: &Path, vfs: &Arc<dyn Vfs>) -> Result<()> {
    let _span = mlake_obs::span("lake.persist");
    // Hold the op lock so the snapshot and its last_lsn are one
    // consistent cut of the lake.
    let _op = shared.op_lock.lock();
    vfs.create_dir_all(dir)?;
    shared.store.persist_dir_atomic(&dir.join("blobs"), vfs)?;
    let models: Vec<ManifestModel> = {
        let reg = shared.registry.read();
        reg.models
            .iter()
            .map(|entry| ManifestModel {
                name: entry.name.clone(),
                digest: entry.digest.to_hex(),
                card: entry.card.clone(),
            })
            .collect()
    };
    let last_lsn = shared.wal.as_ref().map_or(0, |l| l.wal.head());
    let manifest = Manifest {
        version: MANIFEST_VERSION,
        name: shared.config.name.clone(),
        models,
        datasets: shared.datasets_snapshot(),
        benchmarks: shared.benchmarks_snapshot(),
        events: shared.event_log_snapshot(),
        last_lsn,
    };
    let json = serde_json::to_vec_pretty(&manifest)
        .map_err(|e| LakeError::CorruptArtifact(format!("manifest encode: {e}")))?;
    vfs.write_atomic(&dir.join("manifest.json"), &json)?;
    // Persisting into the attached directory makes the snapshot the
    // new recovery base: compact the WAL prefix it covers.
    if let Some(link) = &shared.wal {
        if link.dir == dir {
            link.wal.compact_to(last_lsn)?;
        }
    }
    Ok(())
}

impl ModelLake {
    /// Persists the lake into `dir` (created if absent). On a durable lake
    /// persisting into its own directory this is a compaction: the WAL
    /// segments the new snapshot covers are deleted afterwards.
    // lint: no-span — persist_shared opens the lake.persist span
    pub fn persist(&self, dir: &Path) -> Result<()> {
        let vfs = self
            .shared
            .wal
            .as_ref()
            .map(|l| Arc::clone(&l.vfs))
            .unwrap_or_else(RealFs::shared);
        persist_shared(&self.shared, dir, &vfs)
    }

    /// [`ModelLake::persist`] through an explicit [`Vfs`] (fault-injection
    /// tests crash mid-persist here). All files land atomically
    /// (temp-file + rename), so a crash leaves either the old snapshot or
    /// the new one, never a torn mix.
    // lint: no-span — persist_shared opens the lake.persist span
    pub(crate) fn persist_with(&self, dir: &Path, vfs: &Arc<dyn Vfs>) -> Result<()> {
        persist_shared(&self.shared, dir, vfs)
    }

    /// Opens a persisted lake: loads the snapshot (re-ingesting every
    /// artifact so fingerprints and indexes rebuild; scores and the
    /// version graph recompute lazily), then replays the write-ahead log
    /// past the snapshot's `last_lsn`. The returned lake is durable:
    /// further mutations append to the same WAL.
    ///
    /// `config` must use the same probe/sketch parameters the lake was
    /// created with for fingerprints to match; the lake name is restored
    /// from the manifest.
    // lint: no-span — open_with opens the lake.open span
    pub fn open(dir: &Path, config: LakeConfig) -> Result<ModelLake> {
        Self::open_with(dir, config, RealFs::shared())
    }

    /// [`ModelLake::open`] through an arbitrary [`Vfs`].
    pub fn open_with(dir: &Path, config: LakeConfig, vfs: Arc<dyn Vfs>) -> Result<ModelLake> {
        let _span = mlake_obs::span("lake.open");
        let manifest_bytes = vfs.read(&dir.join("manifest.json"))?;
        let manifest: Manifest = serde_json::from_slice(&manifest_bytes)
            .map_err(|e| LakeError::CorruptArtifact(format!("manifest decode: {e}")))?;
        if manifest.version == 0 || manifest.version > MANIFEST_VERSION {
            return Err(LakeError::UnsupportedManifest {
                found: manifest.version,
                supported: MANIFEST_VERSION,
            });
        }
        let store = crate::store::InMemoryStore::load_dir(&dir.join("blobs"))?;
        let mut lake = ModelLake::new(LakeConfig {
            name: manifest.name,
            ..config
        });
        // The loaded blobs become the working set (replayed ingests
        // resolve their digests against it; re-ingesting below is an
        // idempotent content-addressed no-op).
        lake.shared_mut()?.store = store;
        for ds in manifest.datasets {
            lake.register_dataset(ds)?;
        }
        for (bench, domain) in manifest.benchmarks {
            lake.register_benchmark(bench, domain)?;
        }
        for m in manifest.models {
            let digest = Digest::from_hex(&m.digest).ok_or_else(|| {
                LakeError::CorruptArtifact(format!("bad digest for '{}'", m.name))
            })?;
            let bytes = lake.shared.store.get(&digest)?;
            let model = Model::from_bytes(&bytes)
                .map_err(|e| LakeError::CorruptArtifact(e.to_string()))?;
            lake.ingest_model(&m.name, &model, Some(m.card))?;
        }
        // Restore the original event history *after* re-ingestion so the
        // graph timestamps (citation keys) survive the round trip.
        lake.restore_event_log(manifest.events);
        // Replay everything the snapshot does not cover, in LSN order.
        let (wal, replay) = Wal::open_with(
            &dir.join("wal"),
            lake.wal_options(),
            Arc::clone(&vfs),
            manifest.last_lsn,
        )?;
        for (lsn, payload) in &replay.records {
            let op: WalOp = serde_json::from_slice(payload).map_err(|e| {
                LakeError::CorruptArtifact(format!("wal record {lsn}: {e}"))
            })?;
            lake.apply_op(*lsn, op)?;
        }
        lake.shared_mut()?.wal = Some(WalLink {
            wal,
            dir: dir.to_path_buf(),
            vfs,
        });
        lake.spawn_compactor()?;
        Ok(lake)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::populate::{populate_from_ground_truth, CardPolicy};
    use crate::registry::ModelId;
    use mlake_datagen::{generate_lake, LakeSpec};

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mlake-persist-{tag}-{}", std::process::id()))
    }

    #[test]
    fn persist_open_round_trip() {
        let dir = tmp("rt");
        let _ = std::fs::remove_dir_all(&dir);
        let gt = generate_lake(&LakeSpec::tiny(3));
        let lake = ModelLake::new(LakeConfig::default());
        populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
        let citation_before = {
            lake.rebuild_version_graph(None).unwrap();
            lake.cite(ModelId(1)).unwrap()
        };
        lake.persist(&dir).unwrap();

        let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
        assert!(reopened.is_durable());
        assert_eq!(reopened.len(), lake.len());
        assert_eq!(reopened.model_names(), lake.model_names());
        assert_eq!(reopened.benchmark_names(), lake.benchmark_names());
        // Artifacts identical bit for bit.
        for i in 0..lake.len() {
            assert_eq!(
                reopened.model(ModelId(i as u64)).unwrap().flat_params(),
                lake.model(ModelId(i as u64)).unwrap().flat_params()
            );
        }
        // Cards survive.
        assert_eq!(
            reopened.entry(ModelId(0)).unwrap().card,
            lake.entry(ModelId(0)).unwrap().card
        );
        // Citations (graph timestamps) survive the round trip.
        reopened.rebuild_version_graph(None).unwrap();
        let citation_after = reopened.cite(ModelId(1)).unwrap();
        assert_eq!(citation_before.model_name, citation_after.model_name);
        // Search works on the rebuilt indexes.
        let hits = reopened
            .similar(ModelId(0), mlake_fingerprint::FingerprintKind::Hybrid, 3)
            .unwrap();
        assert!(!hits.is_empty());
        // Queries work.
        assert!(!reopened
            .prepare("FIND MODELS WHERE task = 'classification'")
            .unwrap()
            .run()
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_and_corrupt() {
        let dir = tmp("bad");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(ModelLake::open(&dir, LakeConfig::default()).is_err());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), b"{not json").unwrap();
        assert!(matches!(
            ModelLake::open(&dir, LakeConfig::default()),
            Err(LakeError::CorruptArtifact(_))
        ));
        // A future manifest version must fail with the typed error, not a
        // panic and not a generic corruption report.
        std::fs::write(
            dir.join("manifest.json"),
            br#"{"version":99,"name":"x","models":[],"datasets":[],"benchmarks":[],"events":{"events":[]}}"#,
        )
        .unwrap();
        std::fs::create_dir_all(dir.join("blobs")).unwrap();
        assert!(matches!(
            ModelLake::open(&dir, LakeConfig::default()),
            Err(LakeError::UnsupportedManifest {
                found: 99,
                supported: MANIFEST_VERSION
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persisted_manifest_records_wal_high_water_mark() {
        let dir = tmp("lsn");
        let _ = std::fs::remove_dir_all(&dir);
        let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
        assert!(lake.is_durable());
        let gt = generate_lake(&LakeSpec::tiny(2));
        populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
        lake.persist(&dir).unwrap();
        let manifest: Manifest =
            serde_json::from_slice(&std::fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(manifest.version, MANIFEST_VERSION);
        assert!(
            manifest.last_lsn > 0,
            "durable mutations must advance last_lsn"
        );
        // Compaction happened: reopening replays nothing, state intact.
        let reopened = ModelLake::open(&dir, LakeConfig::default()).unwrap();
        assert_eq!(reopened.len(), lake.len());
        assert_eq!(reopened.events(), lake.events());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
