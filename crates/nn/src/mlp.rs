//! Multi-layer perceptron: forward pass, parameter (de)flattening and
//! representation extraction.

use crate::activation::Activation;
use crate::arch::Architecture;
use mlake_tensor::{init::Init, vector, Matrix, Pcg64, TensorError};
use serde::{Deserialize, Serialize};

/// A fully-connected feed-forward network.
///
/// Layer `l` computes `z_l = W_l · a_{l-1} + b_l`; hidden layers apply the
/// configured activation, the output layer emits raw logits (softmax lives
/// inside the cross-entropy loss for numerical stability).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layer_sizes: Vec<usize>,
    activation: Activation,
    /// `weights[l]` has shape `(layer_sizes[l+1], layer_sizes[l])`.
    weights: Vec<Matrix>,
    /// `biases[l]` has length `layer_sizes[l+1]`.
    biases: Vec<Vec<f32>>,
}

/// Per-layer values cached by [`Mlp::forward_cached`], consumed by backprop
/// and by representation-level fingerprints/interpretability probes.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Activations per layer, `activations[0]` is the input itself.
    pub activations: Vec<Vec<f32>>,
    /// Pre-activation values `z_l`, one entry per weight layer.
    pub pre_activations: Vec<Vec<f32>>,
}

impl Mlp {
    /// Creates a randomly initialised network.
    pub fn new(
        layer_sizes: Vec<usize>,
        activation: Activation,
        init: Init,
        rng: &mut Pcg64,
    ) -> crate::Result<Self> {
        if layer_sizes.len() < 2 || layer_sizes.contains(&0) {
            return Err(TensorError::Empty("mlp layer_sizes"));
        }
        let mut weights = Vec::with_capacity(layer_sizes.len() - 1);
        let mut biases = Vec::with_capacity(layer_sizes.len() - 1);
        for w in layer_sizes.windows(2) {
            weights.push(init.matrix(w[1], w[0], rng));
            biases.push(vec![0.0; w[1]]);
        }
        Ok(Mlp {
            layer_sizes,
            activation,
            weights,
            biases,
        })
    }

    /// Reassembles a network from explicit parts (used by transforms and the
    /// binary codec). Validates all shapes.
    pub fn from_parts(
        layer_sizes: Vec<usize>,
        activation: Activation,
        weights: Vec<Matrix>,
        biases: Vec<Vec<f32>>,
    ) -> crate::Result<Self> {
        if layer_sizes.len() < 2
            || weights.len() != layer_sizes.len() - 1
            || biases.len() != weights.len()
        {
            return Err(TensorError::Empty("mlp from_parts"));
        }
        for (l, w) in layer_sizes.windows(2).enumerate() {
            if weights[l].shape() != (w[1], w[0]) || biases[l].len() != w[1] {
                return Err(TensorError::ShapeMismatch {
                    op: "mlp_from_parts",
                    lhs: weights[l].shape(),
                    rhs: (w[1], w[0]),
                });
            }
        }
        Ok(Mlp {
            layer_sizes,
            activation,
            weights,
            biases,
        })
    }

    /// The architecture descriptor `f*`.
    pub fn architecture(&self) -> Architecture {
        Architecture::Mlp {
            layer_sizes: self.layer_sizes.clone(),
            activation: self.activation,
        }
    }

    /// Layer sizes, input first.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// Hidden activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Weight matrix of layer `l`.
    pub fn weight(&self, l: usize) -> &Matrix {
        &self.weights[l]
    }

    /// Mutable weight matrix of layer `l`.
    pub fn weight_mut(&mut self, l: usize) -> &mut Matrix {
        &mut self.weights[l]
    }

    /// Bias vector of layer `l`.
    pub fn bias(&self, l: usize) -> &[f32] {
        &self.biases[l]
    }

    /// Mutable bias vector of layer `l`.
    pub fn bias_mut(&mut self, l: usize) -> &mut Vec<f32> {
        &mut self.biases[l]
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.weights.iter().map(Matrix::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Flattens `θ` into a single vector: weights then bias per layer, in
    /// layer order. The layout is the contract for [`Self::set_flat_params`],
    /// gradient vectors and weight-space fingerprints.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for (w, b) in self.weights.iter().zip(&self.biases) {
            out.extend_from_slice(w.as_slice());
            out.extend_from_slice(b);
        }
        out
    }

    /// Writes a flat parameter vector back (inverse of [`Self::flat_params`]).
    pub fn set_flat_params(&mut self, params: &[f32]) -> crate::Result<()> {
        if params.len() != self.num_params() {
            return Err(TensorError::BadBuffer {
                expected: self.num_params(),
                actual: params.len(),
            });
        }
        let mut off = 0;
        for (w, b) in self.weights.iter_mut().zip(&mut self.biases) {
            let n = w.len();
            w.as_mut_slice().copy_from_slice(&params[off..off + n]);
            off += n;
            let bn = b.len();
            b.copy_from_slice(&params[off..off + bn]);
            off += bn;
        }
        Ok(())
    }

    /// Forward pass producing output logits for a single example.
    pub fn forward(&self, input: &[f32]) -> crate::Result<Vec<f32>> {
        let mut cache = self.forward_cached(input)?;
        Ok(cache.activations.pop().unwrap_or_default())
    }

    /// Forward pass retaining every intermediate value (for backprop and
    /// representation analysis).
    pub fn forward_cached(&self, input: &[f32]) -> crate::Result<ForwardCache> {
        if input.len() != self.layer_sizes[0] {
            return Err(TensorError::ShapeMismatch {
                op: "mlp_forward",
                lhs: (self.layer_sizes[0], 1),
                rhs: (input.len(), 1),
            });
        }
        let mut activations = Vec::with_capacity(self.weights.len() + 1);
        let mut pre_activations = Vec::with_capacity(self.weights.len());
        activations.push(input.to_vec());
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let mut z = w.matvec(activations.last().ok_or(TensorError::Empty("mlp activations"))?)?;
            vector::axpy(1.0, b, &mut z);
            pre_activations.push(z.clone());
            let is_output = l == self.weights.len() - 1;
            if !is_output {
                self.activation.apply_slice(&mut z);
            }
            activations.push(z);
        }
        Ok(ForwardCache {
            activations,
            pre_activations,
        })
    }

    /// Class-probability vector `p_θ(y | x)` via softmax over the logits.
    pub fn predict_probs(&self, input: &[f32]) -> crate::Result<Vec<f32>> {
        Ok(vector::softmax(&self.forward(input)?))
    }

    /// Most-likely class.
    pub fn predict_class(&self, input: &[f32]) -> crate::Result<usize> {
        let logits = self.forward(input)?;
        vector::argmax(&logits).ok_or(TensorError::Empty("predict_class"))
    }

    /// Hidden representation at layer `l` (post-activation); `l = 0` returns
    /// the first hidden layer. Used by CKA fingerprints and probing.
    pub fn hidden_representation(&self, input: &[f32], l: usize) -> crate::Result<Vec<f32>> {
        let cache = self.forward_cached(input)?;
        // activations[0] is the input, hidden layer l is activations[l + 1].
        cache
            .activations
            .get(l + 1)
            .cloned()
            .ok_or(TensorError::OutOfBounds {
                index: (l, 0),
                shape: (self.weights.len(), 0),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mlp {
        let mut rng = Pcg64::new(1);
        Mlp::new(vec![2, 3, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap()
    }

    #[test]
    fn construction_validates() {
        let mut rng = Pcg64::new(1);
        assert!(Mlp::new(vec![2], Activation::Relu, Init::Zeros, &mut rng).is_err());
        assert!(Mlp::new(vec![2, 0, 2], Activation::Relu, Init::Zeros, &mut rng).is_err());
    }

    #[test]
    fn forward_shapes() {
        let m = tiny();
        let out = m.forward(&[0.5, -0.5]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(m.forward(&[1.0]).is_err());
        let cache = m.forward_cached(&[0.5, -0.5]).unwrap();
        assert_eq!(cache.activations.len(), 3);
        assert_eq!(cache.pre_activations.len(), 2);
        assert_eq!(cache.activations[1].len(), 3);
    }

    #[test]
    fn output_layer_is_linear() {
        // With ReLU hidden units, a large negative logit must survive the
        // output layer unclipped.
        let mut rng = Pcg64::new(2);
        let mut m = Mlp::new(vec![1, 1, 1], Activation::Relu, Init::Zeros, &mut rng).unwrap();
        m.weight_mut(0).set_at(0, 0, 1.0);
        m.weight_mut(1).set_at(0, 0, -5.0);
        let out = m.forward(&[2.0]).unwrap();
        assert!((out[0] + 10.0).abs() < 1e-6);
    }

    #[test]
    fn predict_probs_is_distribution() {
        let m = tiny();
        let p = m.predict_probs(&[0.3, 0.9]).unwrap();
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let class = m.predict_class(&[0.3, 0.9]).unwrap();
        assert!(class < 2);
    }

    #[test]
    fn flat_params_round_trip() {
        let m = tiny();
        let params = m.flat_params();
        assert_eq!(params.len(), m.num_params());
        assert_eq!(m.num_params(), 2 * 3 + 3 + 3 * 2 + 2);
        let mut m2 = tiny();
        m2.set_flat_params(&params).unwrap();
        assert_eq!(m, m2);
        assert!(m2.set_flat_params(&[0.0]).is_err());
    }

    #[test]
    fn set_flat_params_changes_output() {
        let m = tiny();
        let mut m2 = m.clone();
        let mut p = m.flat_params();
        for v in &mut p {
            *v += 1.0;
        }
        m2.set_flat_params(&p).unwrap();
        let a = m.forward(&[0.1, 0.2]).unwrap();
        let b = m2.forward(&[0.1, 0.2]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn from_parts_validates_shapes() {
        let m = tiny();
        let bad = Mlp::from_parts(
            vec![2, 3, 2],
            Activation::Tanh,
            vec![Matrix::zeros(3, 2), Matrix::zeros(2, 2)],
            vec![vec![0.0; 3], vec![0.0; 2]],
        );
        assert!(bad.is_err());
        let ok = Mlp::from_parts(
            m.layer_sizes().to_vec(),
            m.activation(),
            (0..m.num_layers()).map(|l| m.weight(l).clone()).collect(),
            (0..m.num_layers()).map(|l| m.bias(l).to_vec()).collect(),
        )
        .unwrap();
        assert_eq!(ok, m);
    }

    #[test]
    fn hidden_representation_dims() {
        let m = tiny();
        let h = m.hidden_representation(&[0.1, 0.2], 0).unwrap();
        assert_eq!(h.len(), 3);
        assert!(m.hidden_representation(&[0.1, 0.2], 5).is_err());
    }

    #[test]
    fn architecture_round_trips() {
        let m = tiny();
        let arch = m.architecture();
        assert_eq!(arch.num_params(), m.num_params());
        assert_eq!(arch.signature(), "mlp:2-3-2:tanh");
    }
}
