//! Loss functions and their gradients with respect to output logits.

use mlake_tensor::vector;
use serde::{Deserialize, Serialize};

/// Supported training losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Softmax cross-entropy over class logits.
    CrossEntropy,
    /// Mean squared error against a one-hot target.
    MseOneHot,
}

impl Loss {
    /// Loss value for one example with integer target class.
    pub fn value(self, logits: &[f32], target: usize) -> f32 {
        debug_assert!(target < logits.len());
        match self {
            Loss::CrossEntropy => {
                // -log softmax(logits)[target], computed stably.
                vector::log_sum_exp(logits) - logits[target]
            }
            Loss::MseOneHot => {
                let mut acc = 0.0f32;
                for (i, &z) in logits.iter().enumerate() {
                    let t = if i == target { 1.0 } else { 0.0 };
                    acc += (z - t) * (z - t);
                }
                acc / logits.len() as f32
            }
        }
    }

    /// Loss against a soft target distribution (used by distillation).
    pub fn value_soft(self, logits: &[f32], target: &[f32]) -> f32 {
        debug_assert_eq!(logits.len(), target.len());
        match self {
            Loss::CrossEntropy => {
                let lse = vector::log_sum_exp(logits);
                let mut acc = 0.0f32;
                for (&z, &t) in logits.iter().zip(target) {
                    if t > 0.0 {
                        acc += t * (lse - z);
                    }
                }
                acc
            }
            Loss::MseOneHot => {
                let mut acc = 0.0f32;
                for (&z, &t) in logits.iter().zip(target) {
                    acc += (z - t) * (z - t);
                }
                acc / logits.len() as f32
            }
        }
    }

    /// Gradient of the loss with respect to the logits, integer target.
    pub fn grad(self, logits: &[f32], target: usize) -> Vec<f32> {
        match self {
            Loss::CrossEntropy => {
                let mut g = vector::softmax(logits);
                g[target] -= 1.0;
                g
            }
            Loss::MseOneHot => {
                let n = logits.len() as f32;
                logits
                    .iter()
                    .enumerate()
                    .map(|(i, &z)| {
                        let t = if i == target { 1.0 } else { 0.0 };
                        2.0 * (z - t) / n
                    })
                    .collect()
            }
        }
    }

    /// Gradient of the loss with respect to the logits, soft target.
    pub fn grad_soft(self, logits: &[f32], target: &[f32]) -> Vec<f32> {
        match self {
            Loss::CrossEntropy => {
                let p = vector::softmax(logits);
                // Sum of target weights rescales the softmax term so the
                // gradient stays correct for unnormalised soft labels.
                let mass: f32 = target.iter().sum();
                p.iter().zip(target).map(|(&pi, &ti)| mass * pi - ti).collect()
            }
            Loss::MseOneHot => {
                let n = logits.len() as f32;
                logits
                    .iter()
                    .zip(target)
                    .map(|(&z, &t)| 2.0 * (z - t) / n)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let l = Loss::CrossEntropy;
        assert!(l.value(&[10.0, -10.0], 0) < 1e-3);
        assert!(l.value(&[10.0, -10.0], 1) > 10.0);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let l = Loss::CrossEntropy;
        let v = l.value(&[0.0, 0.0, 0.0, 0.0], 2);
        assert!((v - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let logits = [0.5f32, -1.0, 2.0];
        let eps = 1e-3;
        for loss in [Loss::CrossEntropy, Loss::MseOneHot] {
            let g = loss.grad(&logits, 1);
            for i in 0..logits.len() {
                let mut lp = logits;
                lp[i] += eps;
                let mut lm = logits;
                lm[i] -= eps;
                let fd = (loss.value(&lp, 1) - loss.value(&lm, 1)) / (2.0 * eps);
                assert!(
                    (fd - g[i]).abs() < 1e-2,
                    "{loss:?} dim {i}: fd {fd} vs {g:?}"
                );
            }
        }
    }

    #[test]
    fn soft_gradients_match_finite_differences() {
        let logits = [0.2f32, 1.0, -0.7];
        let target = [0.1f32, 0.7, 0.2];
        let eps = 1e-3;
        for loss in [Loss::CrossEntropy, Loss::MseOneHot] {
            let g = loss.grad_soft(&logits, &target);
            for i in 0..logits.len() {
                let mut lp = logits;
                lp[i] += eps;
                let mut lm = logits;
                lm[i] -= eps;
                let fd = (loss.value_soft(&lp, &target) - loss.value_soft(&lm, &target))
                    / (2.0 * eps);
                assert!(
                    (fd - g[i]).abs() < 1e-2,
                    "{loss:?} dim {i}: fd {fd} vs {g:?}"
                );
            }
        }
    }

    #[test]
    fn soft_one_hot_agrees_with_hard() {
        let logits = [0.3f32, -0.2, 0.9];
        let one_hot = [0.0f32, 0.0, 1.0];
        for loss in [Loss::CrossEntropy, Loss::MseOneHot] {
            let hard = loss.value(&logits, 2);
            let soft = loss.value_soft(&logits, &one_hot);
            assert!((hard - soft).abs() < 1e-5, "{loss:?}");
            let gh = loss.grad(&logits, 2);
            let gs = loss.grad_soft(&logits, &one_hot);
            for (a, b) in gh.iter().zip(&gs) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
