//! Count-based n-gram language model — the lake's *generative* model family.
//!
//! For generative models the paper's extrinsic view is the "observable
//! probability distribution defined by the model, `p_θ(x)`" (§2). An n-gram
//! model makes that distribution exactly computable: next-token
//! distributions, sequence log-probabilities and perplexities are closed
//! form, which gives the benchmark lake verifiable extrinsic ground truth.

use mlake_tensor::{Pcg64, TensorError};
use serde::{Deserialize, Serialize};

use crate::arch::Architecture;

/// A Laplace-smoothed n-gram model over integer tokens `0..vocab`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NgramLm {
    vocab: usize,
    order: usize,
    /// Flattened count table: `counts[context * vocab + token]`.
    counts: Vec<f64>,
    /// Row sums cached for O(1) normalisation.
    row_totals: Vec<f64>,
    /// Laplace smoothing strength.
    alpha: f64,
}

impl NgramLm {
    /// Creates an empty model. `order` must be in `1..=3` and `vocab > 0`;
    /// the context table has `vocab^(order-1)` rows, so keep `vocab` small
    /// for trigram models.
    pub fn new(vocab: usize, order: usize, alpha: f64) -> crate::Result<Self> {
        if vocab == 0 || order == 0 || order > 3 {
            return Err(TensorError::Empty("ngram vocab/order"));
        }
        let contexts = vocab.pow((order - 1) as u32);
        Ok(NgramLm {
            vocab,
            order,
            counts: vec![0.0; contexts * vocab],
            row_totals: vec![0.0; contexts],
            alpha: alpha.max(1e-9),
        })
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Model order (2 = bigram).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Architecture descriptor.
    pub fn architecture(&self) -> Architecture {
        Architecture::ngram(self.vocab, self.order)
    }

    /// Number of rows in the context table.
    pub fn num_contexts(&self) -> usize {
        self.row_totals.len()
    }

    /// Total number of probability parameters.
    pub fn num_params(&self) -> usize {
        self.counts.len()
    }

    /// Maps the last `order - 1` tokens of `context` to a table row.
    /// Shorter contexts are padded with token 0 on the left.
    pub fn context_index(&self, context: &[usize]) -> crate::Result<usize> {
        let needed = self.order - 1;
        let mut idx = 0usize;
        for k in 0..needed {
            let pos = context.len() as isize - needed as isize + k as isize;
            let tok = if pos < 0 { 0 } else { context[pos as usize] };
            if tok >= self.vocab {
                return Err(TensorError::OutOfBounds {
                    index: (tok, 0),
                    shape: (self.vocab, self.vocab),
                });
            }
            idx = idx * self.vocab + tok;
        }
        Ok(idx)
    }

    /// Accumulates n-gram counts from a token sequence, scaled by `weight`.
    /// This is both initial training (`weight = 1`) and fine-tuning
    /// (further corpora, possibly up/down-weighted).
    pub fn add_counts(&mut self, tokens: &[usize], weight: f64) -> crate::Result<()> {
        if tokens.iter().any(|&t| t >= self.vocab) {
            return Err(TensorError::OutOfBounds {
                index: (self.vocab, 0),
                shape: (self.vocab, self.vocab),
            });
        }
        let n = self.order;
        for i in 0..tokens.len() {
            let ctx_start = i.saturating_sub(n - 1);
            let row = self.context_index(&tokens[ctx_start..i])?;
            self.counts[row * self.vocab + tokens[i]] += weight;
            self.row_totals[row] += weight;
        }
        Ok(())
    }

    /// Probability of `token` after `context`, with Laplace smoothing.
    pub fn prob(&self, context: &[usize], token: usize) -> crate::Result<f32> {
        if token >= self.vocab {
            return Err(TensorError::OutOfBounds {
                index: (token, 0),
                shape: (self.vocab, self.vocab),
            });
        }
        let row = self.context_index(context)?;
        let c = self.counts[row * self.vocab + token];
        let total = self.row_totals[row];
        Ok(((c + self.alpha) / (total + self.alpha * self.vocab as f64)) as f32)
    }

    /// Full next-token distribution after `context` (sums to 1).
    pub fn next_dist(&self, context: &[usize]) -> crate::Result<Vec<f32>> {
        let row = self.context_index(context)?;
        let total = self.row_totals[row] + self.alpha * self.vocab as f64;
        Ok(self.counts[row * self.vocab..(row + 1) * self.vocab]
            .iter()
            .map(|&c| ((c + self.alpha) / total) as f32)
            .collect())
    }

    /// Log-probability (natural log) of a full sequence.
    pub fn log_prob(&self, tokens: &[usize]) -> crate::Result<f64> {
        let mut lp = 0.0f64;
        for i in 0..tokens.len() {
            let ctx_start = i.saturating_sub(self.order - 1);
            lp += f64::from(self.prob(&tokens[ctx_start..i], tokens[i])?).ln();
        }
        Ok(lp)
    }

    /// Perplexity `exp(-log_prob / len)`; `inf` is impossible thanks to
    /// smoothing, and the empty sequence yields 1.
    pub fn perplexity(&self, tokens: &[usize]) -> crate::Result<f64> {
        if tokens.is_empty() {
            return Ok(1.0);
        }
        let lp = self.log_prob(tokens)?;
        Ok((-lp / tokens.len() as f64).exp())
    }

    /// Samples `len` tokens autoregressively, continuing `prompt`.
    pub fn sample(&self, prompt: &[usize], len: usize, rng: &mut Pcg64) -> crate::Result<Vec<usize>> {
        let mut seq = prompt.to_vec();
        for _ in 0..len {
            let dist = self.next_dist(&seq)?;
            let tok = rng
                .weighted_index(&dist)
                .ok_or(TensorError::Numerical("degenerate sampling distribution"))?;
            seq.push(tok);
        }
        Ok(seq.split_off(prompt.len()))
    }

    /// Targeted *model edit*: forces `P(token | context) ≈ target_prob` by
    /// rescaling the row counts — the n-gram analogue of a rank-one fact
    /// edit. Touches exactly one table row.
    ///
    /// Achievability: Laplace smoothing floors every probability at
    /// `α / (T_others + α·V)`, so a *downward* edit on a row whose other
    /// tokens carry little mass saturates at that floor instead of reaching
    /// the target exactly.
    pub fn edit(&mut self, context: &[usize], token: usize, target_prob: f32) -> crate::Result<()> {
        if token >= self.vocab {
            return Err(TensorError::OutOfBounds {
                index: (token, 0),
                shape: (self.vocab, self.vocab),
            });
        }
        let p = f64::from(target_prob.clamp(1e-4, 1.0 - 1e-4));
        let row = self.context_index(context)?;
        let slice = &mut self.counts[row * self.vocab..(row + 1) * self.vocab];
        // Work on a softened row so empty rows are editable too.
        let mut total: f64 = slice.iter().sum::<f64>() + self.alpha * self.vocab as f64;
        if total <= 0.0 {
            total = 1.0;
        }
        let others: f64 = total - (slice[token] + self.alpha);
        // New count so that (c + α) / (c + α + others) = p.
        let new_mass = p * others / (1.0 - p);
        slice[token] = (new_mass - self.alpha).max(0.0);
        self.row_totals[row] = slice.iter().sum();
        Ok(())
    }

    /// Linear interpolation of two same-shape models:
    /// `counts = (1-λ)·self + λ·other` (model merging / soup).
    pub fn interpolate(&self, other: &NgramLm, lambda: f64) -> crate::Result<NgramLm> {
        if self.vocab != other.vocab || self.order != other.order {
            return Err(TensorError::ShapeMismatch {
                op: "ngram_interpolate",
                lhs: (self.vocab, self.order),
                rhs: (other.vocab, other.order),
            });
        }
        let lambda = lambda.clamp(0.0, 1.0);
        let mut out = self.clone();
        for (o, (&a, &b)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(&other.counts))
        {
            *o = (1.0 - lambda) * a + lambda * b;
        }
        for (t, (&a, &b)) in out
            .row_totals
            .iter_mut()
            .zip(self.row_totals.iter().zip(&other.row_totals))
        {
            *t = (1.0 - lambda) * a + lambda * b;
        }
        Ok(out)
    }

    /// The parameter table as normalised probabilities, flattened row-major —
    /// the `θ` view used by intrinsic fingerprints.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.counts.len());
        for row in 0..self.num_contexts() {
            let total = self.row_totals[row] + self.alpha * self.vocab as f64;
            for t in 0..self.vocab {
                out.push(((self.counts[row * self.vocab + t] + self.alpha) / total) as f32);
            }
        }
        out
    }

    /// Raw count access for tests and forensic tooling.
    pub fn count(&self, context: &[usize], token: usize) -> crate::Result<f64> {
        let row = self.context_index(context)?;
        Ok(self.counts[row * self.vocab + token])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted_bigram() -> NgramLm {
        let mut lm = NgramLm::new(4, 2, 0.1).unwrap();
        // Sequence: 0 1 2 3 0 1 2 3 ...
        let tokens: Vec<usize> = (0..40).map(|i| i % 4).collect();
        lm.add_counts(&tokens, 1.0).unwrap();
        lm
    }

    #[test]
    fn construction_validates() {
        assert!(NgramLm::new(0, 2, 0.1).is_err());
        assert!(NgramLm::new(4, 0, 0.1).is_err());
        assert!(NgramLm::new(4, 4, 0.1).is_err());
        let tri = NgramLm::new(4, 3, 0.1).unwrap();
        assert_eq!(tri.num_contexts(), 16);
        assert_eq!(tri.num_params(), 64);
    }

    #[test]
    fn learned_transitions_dominate() {
        let lm = fitted_bigram();
        // After token 1 the corpus always shows token 2.
        let p = lm.prob(&[1], 2).unwrap();
        assert!(p > 0.9, "p = {p}");
        let q = lm.prob(&[1], 0).unwrap();
        assert!(q < 0.05);
    }

    #[test]
    fn next_dist_sums_to_one() {
        let lm = fitted_bigram();
        for ctx in 0..4 {
            let d = lm.next_dist(&[ctx]).unwrap();
            let total: f32 = d.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
        assert!(lm.next_dist(&[9]).is_err());
    }

    #[test]
    fn perplexity_lower_on_indistribution_text() {
        let lm = fitted_bigram();
        let in_dist: Vec<usize> = (0..20).map(|i| i % 4).collect();
        let out_dist: Vec<usize> = (0..20).map(|i| (i * 3) % 4).collect();
        let p_in = lm.perplexity(&in_dist).unwrap();
        let p_out = lm.perplexity(&out_dist).unwrap();
        assert!(p_in < p_out, "{p_in} !< {p_out}");
        assert_eq!(lm.perplexity(&[]).unwrap(), 1.0);
    }

    #[test]
    fn sampling_respects_distribution() {
        let lm = fitted_bigram();
        let mut rng = Pcg64::new(4);
        let sample = lm.sample(&[0], 200, &mut rng).unwrap();
        assert_eq!(sample.len(), 200);
        // The deterministic cycle 0→1→2→3 should dominate the sample.
        let follows: usize = sample
            .windows(2)
            .filter(|w| w[1] == (w[0] + 1) % 4)
            .count();
        assert!(follows > 150, "follows = {follows}");
    }

    #[test]
    fn edit_sets_target_probability() {
        let mut lm = fitted_bigram();
        lm.edit(&[1], 0, 0.9).unwrap();
        let p = lm.prob(&[1], 0).unwrap();
        assert!((p - 0.9).abs() < 0.02, "p = {p}");
        // Other rows untouched (row 0 also holds one padded initial-context
        // count, so its top probability sits just below 0.9).
        assert!(lm.prob(&[0], 1).unwrap() > 0.85);
    }

    #[test]
    fn interpolate_blends() {
        let a = fitted_bigram();
        let mut b = NgramLm::new(4, 2, 0.1).unwrap();
        let tokens: Vec<usize> = (0..40).map(|i| (i * 3) % 4).collect();
        b.add_counts(&tokens, 1.0).unwrap();
        let mid = a.interpolate(&b, 0.5).unwrap();
        let pa = a.prob(&[1], 2).unwrap();
        let pb = b.prob(&[1], 2).unwrap();
        let pm = mid.prob(&[1], 2).unwrap();
        assert!(pm < pa && pm > pb);
        let zero = a.interpolate(&b, 0.0).unwrap();
        assert_eq!(zero, a);
        assert!(a
            .interpolate(&NgramLm::new(5, 2, 0.1).unwrap(), 0.5)
            .is_err());
    }

    #[test]
    fn flat_params_are_probabilities() {
        let lm = fitted_bigram();
        let p = lm.flat_params();
        assert_eq!(p.len(), 16);
        for row in p.chunks(4) {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn trigram_context_indexing() {
        let lm = NgramLm::new(3, 3, 0.1).unwrap();
        assert_eq!(lm.context_index(&[]).unwrap(), 0);
        assert_eq!(lm.context_index(&[1]).unwrap(), 1); // padded [0, 1]
        assert_eq!(lm.context_index(&[2, 1]).unwrap(), 2 * 3 + 1);
        assert_eq!(lm.context_index(&[0, 2, 1]).unwrap(), 2 * 3 + 1);
        assert!(lm.context_index(&[7]).is_err());
    }

    #[test]
    fn finetune_shifts_distribution() {
        let mut lm = fitted_bigram();
        let before = lm.prob(&[1], 3).unwrap();
        // Heavily weighted new corpus where 1 -> 3.
        let ft: Vec<usize> = (0..40).map(|i| if i % 2 == 0 { 1 } else { 3 }).collect();
        lm.add_counts(&ft, 5.0).unwrap();
        let after = lm.prob(&[1], 3).unwrap();
        assert!(after > before);
        assert!(lm.add_counts(&[99], 1.0).is_err());
    }

    #[test]
    fn count_accessor() {
        let lm = fitted_bigram();
        assert!(lm.count(&[0], 1).unwrap() > 0.0);
        assert_eq!(lm.count(&[3], 2).unwrap(), 0.0);
    }
}
