//! Optimisers — the concrete pieces of the training algorithm `A`.

use crate::grad::Gradients;
use crate::mlp::Mlp;
use mlake_tensor::vector;
use serde::{Deserialize, Serialize};

/// Declarative optimiser configuration; the part of `A` that model cards
/// record and that history-based lake tasks can query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerSpec {
    /// Stochastic gradient descent with optional momentum and weight decay.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables).
        momentum: f32,
        /// Decoupled L2 weight decay.
        weight_decay: f32,
    },
    /// Adam with the usual bias-corrected moment estimates.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical floor.
        eps: f32,
    },
}

impl OptimizerSpec {
    /// Plain SGD at the given learning rate.
    pub fn sgd(lr: f32) -> OptimizerSpec {
        OptimizerSpec::Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Adam with standard hyper-parameters.
    pub fn adam(lr: f32) -> OptimizerSpec {
        OptimizerSpec::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Instantiates mutable optimiser state for `model`.
    pub fn build(self, model: &Mlp) -> Optimizer {
        let n = model.num_params();
        match self {
            OptimizerSpec::Sgd { .. } => Optimizer {
                spec: self,
                step: 0,
                m1: vec![0.0; n],
                m2: Vec::new(),
            },
            OptimizerSpec::Adam { .. } => Optimizer {
                spec: self,
                step: 0,
                m1: vec![0.0; n],
                m2: vec![0.0; n],
            },
        }
    }

    /// Stable short description for documentation generation.
    pub fn describe(self) -> String {
        match self {
            OptimizerSpec::Sgd {
                lr,
                momentum,
                weight_decay,
            } => format!("sgd(lr={lr}, momentum={momentum}, wd={weight_decay})"),
            OptimizerSpec::Adam { lr, .. } => format!("adam(lr={lr})"),
        }
    }
}

/// Mutable optimiser state; applies flattened gradient updates to a model.
#[derive(Debug, Clone)]
pub struct Optimizer {
    spec: OptimizerSpec,
    step: u64,
    /// Momentum / first-moment buffer.
    m1: Vec<f32>,
    /// Second-moment buffer (Adam only).
    m2: Vec<f32>,
}

impl Optimizer {
    /// The configuration this state was built from.
    pub fn spec(&self) -> OptimizerSpec {
        self.spec
    }

    /// Applies one update step in place.
    pub fn apply(&mut self, model: &mut Mlp, grads: &Gradients) -> crate::Result<()> {
        let g = grads.flatten();
        let mut params = model.flat_params();
        self.step += 1;
        match self.spec {
            OptimizerSpec::Sgd {
                lr,
                momentum,
                weight_decay,
            } => {
                for i in 0..params.len() {
                    let mut gi = g[i];
                    if weight_decay > 0.0 {
                        gi += weight_decay * params[i];
                    }
                    if momentum > 0.0 {
                        self.m1[i] = momentum * self.m1[i] + gi;
                        gi = self.m1[i];
                    }
                    params[i] -= lr * gi;
                }
            }
            OptimizerSpec::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let t = self.step as f64;
                let bc1 = 1.0 - (f64::from(beta1)).powf(t);
                let bc2 = 1.0 - (f64::from(beta2)).powf(t);
                for i in 0..params.len() {
                    let gi = g[i];
                    self.m1[i] = beta1 * self.m1[i] + (1.0 - beta1) * gi;
                    self.m2[i] = beta2 * self.m2[i] + (1.0 - beta2) * gi * gi;
                    let mhat = f64::from(self.m1[i]) / bc1;
                    let vhat = f64::from(self.m2[i]) / bc2;
                    params[i] -= lr * (mhat / (vhat.sqrt() + f64::from(eps))) as f32;
                }
            }
        }
        model.set_flat_params(&params)
    }

    /// Gradient-step count so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Norm of the momentum buffer — exposed for training diagnostics.
    pub fn momentum_norm(&self) -> f32 {
        vector::l2_norm(&self.m1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::grad::backprop;
    use crate::loss::Loss;
    use mlake_tensor::{init::Init, Pcg64};

    fn model() -> Mlp {
        let mut rng = Pcg64::new(3);
        Mlp::new(vec![2, 4, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap()
    }

    fn loss_at(m: &Mlp) -> f32 {
        Loss::CrossEntropy.value(&m.forward(&[0.5, -0.5]).unwrap(), 0)
    }

    #[test]
    fn sgd_descends() {
        let mut m = model();
        let mut opt = OptimizerSpec::sgd(0.1).build(&m);
        let before = loss_at(&m);
        for _ in 0..20 {
            let (_, g) = backprop(&m, &[0.5, -0.5], 0, Loss::CrossEntropy).unwrap();
            opt.apply(&mut m, &g).unwrap();
        }
        assert!(loss_at(&m) < before, "loss must decrease");
        assert_eq!(opt.steps(), 20);
    }

    #[test]
    fn adam_descends() {
        let mut m = model();
        let mut opt = OptimizerSpec::adam(0.05).build(&m);
        let before = loss_at(&m);
        for _ in 0..30 {
            let (_, g) = backprop(&m, &[0.5, -0.5], 0, Loss::CrossEntropy).unwrap();
            opt.apply(&mut m, &g).unwrap();
        }
        assert!(loss_at(&m) < before);
    }

    #[test]
    fn momentum_accumulates() {
        let mut m = model();
        let mut opt = OptimizerSpec::Sgd {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        }
        .build(&m);
        let (_, g) = backprop(&m, &[0.5, -0.5], 0, Loss::CrossEntropy).unwrap();
        opt.apply(&mut m, &g).unwrap();
        assert!(opt.momentum_norm() > 0.0);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut m = model();
        // Zero gradient + weight decay must shrink the parameter norm.
        let g = crate::grad::Gradients::zeros_like(&m);
        let mut opt = OptimizerSpec::Sgd {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        }
        .build(&m);
        let before = mlake_tensor::vector::l2_norm(&m.flat_params());
        opt.apply(&mut m, &g).unwrap();
        let after = mlake_tensor::vector::l2_norm(&m.flat_params());
        assert!(after < before);
    }

    #[test]
    fn describe_mentions_lr() {
        assert!(OptimizerSpec::sgd(0.25).describe().contains("0.25"));
        assert!(OptimizerSpec::adam(0.01).describe().contains("adam"));
    }
}
