//! Hand-coded backpropagation for [`Mlp`] plus input-gradient saliency.
//!
//! Gradients are produced both in structured form (per-layer matrices, for
//! the optimiser) and flattened (matching [`Mlp::flat_params`] layout, for
//! attribution estimators that treat `θ` as a single vector).

use crate::loss::Loss;
use crate::mlp::Mlp;
use mlake_tensor::{vector, Matrix};

/// Structured gradients mirroring an [`Mlp`]'s parameters.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// One gradient matrix per weight layer.
    pub d_weights: Vec<Matrix>,
    /// One gradient vector per bias.
    pub d_biases: Vec<Vec<f32>>,
}

impl Gradients {
    /// All-zero gradients with the same shapes as `model`.
    pub fn zeros_like(model: &Mlp) -> Gradients {
        let d_weights = (0..model.num_layers())
            .map(|l| {
                let (r, c) = model.weight(l).shape();
                Matrix::zeros(r, c)
            })
            .collect();
        let d_biases = (0..model.num_layers())
            .map(|l| vec![0.0; model.bias(l).len()])
            .collect();
        Gradients {
            d_weights,
            d_biases,
        }
    }

    /// `self += other` (accumulating over a mini-batch).
    pub fn accumulate(&mut self, other: &Gradients) -> crate::Result<()> {
        for (a, b) in self.d_weights.iter_mut().zip(&other.d_weights) {
            a.axpy(1.0, b)?;
        }
        for (a, b) in self.d_biases.iter_mut().zip(&other.d_biases) {
            vector::axpy(1.0, b, a);
        }
        Ok(())
    }

    /// Divides every component by `n` (mini-batch averaging).
    pub fn scale(&mut self, factor: f32) {
        for w in &mut self.d_weights {
            w.scale_mut(factor);
        }
        for b in &mut self.d_biases {
            vector::scale(b, factor);
        }
    }

    /// Flattens into [`Mlp::flat_params`] layout.
    pub fn flatten(&self) -> Vec<f32> {
        let total: usize = self.d_weights.iter().map(Matrix::len).sum::<usize>()
            + self.d_biases.iter().map(Vec::len).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        for (w, b) in self.d_weights.iter().zip(&self.d_biases) {
            out.extend_from_slice(w.as_slice());
            out.extend_from_slice(b);
        }
        out
    }

    /// Euclidean norm of the flattened gradient.
    pub fn l2_norm(&self) -> f32 {
        let mut acc = 0.0f64;
        for w in &self.d_weights {
            acc += f64::from(w.frobenius_norm()).powi(2);
        }
        for b in &self.d_biases {
            acc += f64::from(vector::l2_norm(b)).powi(2);
        }
        acc.sqrt() as f32
    }
}

/// Backpropagates the loss for a single `(input, target)` example.
///
/// Returns `(loss_value, gradients)`.
pub fn backprop(
    model: &Mlp,
    input: &[f32],
    target: usize,
    loss: Loss,
) -> crate::Result<(f32, Gradients)> {
    let target_soft = None;
    backprop_inner(model, input, target, target_soft, loss)
}

/// Backpropagation against a soft target distribution (distillation).
pub fn backprop_soft(
    model: &Mlp,
    input: &[f32],
    target: &[f32],
    loss: Loss,
) -> crate::Result<(f32, Gradients)> {
    backprop_inner(model, input, 0, Some(target), loss)
}

fn backprop_inner(
    model: &Mlp,
    input: &[f32],
    target: usize,
    target_soft: Option<&[f32]>,
    loss: Loss,
) -> crate::Result<(f32, Gradients)> {
    let cache = model.forward_cached(input)?;
    let logits = cache
        .activations
        .last()
        .ok_or(mlake_tensor::TensorError::Empty("forward cache"))?;
    let (loss_value, mut delta) = match target_soft {
        Some(soft) => (loss.value_soft(logits, soft), loss.grad_soft(logits, soft)),
        None => (loss.value(logits, target), loss.grad(logits, target)),
    };

    let mut grads = Gradients::zeros_like(model);
    // Walk layers backwards; `delta` holds ∂L/∂z_l.
    for l in (0..model.num_layers()).rev() {
        let a_prev = &cache.activations[l];
        // dW = delta ⊗ a_prev ; db = delta.
        let dw = grads.d_weights[l].as_mut_slice();
        let cols = a_prev.len();
        for (r, &d) in delta.iter().enumerate() {
            if d == 0.0 {
                continue;
            }
            let row = &mut dw[r * cols..(r + 1) * cols];
            for (g, &a) in row.iter_mut().zip(a_prev) {
                *g = d * a;
            }
        }
        grads.d_biases[l].copy_from_slice(&delta);
        if l > 0 {
            // Propagate to previous layer: δ_{l-1} = (W_lᵀ δ_l) ⊙ σ'(z_{l-1}).
            let mut prev = model.weight(l).t_matvec(&delta)?;
            let z_prev = &cache.pre_activations[l - 1];
            for (p, &z) in prev.iter_mut().zip(z_prev) {
                *p *= model.activation().derivative(z);
            }
            delta = prev;
        }
    }
    Ok((loss_value, grads))
}

/// Average loss and gradient over a batch of examples.
pub fn batch_backprop(
    model: &Mlp,
    inputs: &Matrix,
    targets: &[usize],
    loss: Loss,
) -> crate::Result<(f32, Gradients)> {
    let mut total = Gradients::zeros_like(model);
    let mut loss_acc = 0.0f64;
    for (row, &t) in inputs.rows_iter().zip(targets) {
        let (lv, g) = backprop(model, row, t, loss)?;
        loss_acc += f64::from(lv);
        total.accumulate(&g)?;
    }
    let n = targets.len().max(1) as f32;
    total.scale(1.0 / n);
    Ok(((loss_acc / f64::from(n)) as f32, total))
}

/// Gradient of the loss with respect to the *input* — the sensitivity-
/// analysis primitive behind extrinsic attribution (§3 "which aspects of the
/// inputs are most important in a model's prediction").
pub fn input_gradient(
    model: &Mlp,
    input: &[f32],
    target: usize,
    loss: Loss,
) -> crate::Result<Vec<f32>> {
    let cache = model.forward_cached(input)?;
    let logits = cache
        .activations
        .last()
        .ok_or(mlake_tensor::TensorError::Empty("forward cache"))?;
    let mut delta = loss.grad(logits, target);
    for l in (0..model.num_layers()).rev() {
        let mut prev = model.weight(l).t_matvec(&delta)?;
        if l > 0 {
            let z_prev = &cache.pre_activations[l - 1];
            for (p, &z) in prev.iter_mut().zip(z_prev) {
                *p *= model.activation().derivative(z);
            }
        }
        delta = prev;
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use mlake_tensor::{init::Init, Pcg64};

    fn model() -> Mlp {
        let mut rng = Pcg64::new(42);
        Mlp::new(vec![3, 5, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap()
    }

    /// Central-difference check of every parameter gradient.
    #[test]
    fn backprop_matches_finite_differences() {
        let m = model();
        let input = [0.4f32, -0.2, 0.9];
        let target = 1;
        let (_, grads) = backprop(&m, &input, target, Loss::CrossEntropy).unwrap();
        let flat_g = grads.flatten();
        let params = m.flat_params();
        let eps = 1e-2f32;
        for i in (0..params.len()).step_by(3) {
            let mut mp = m.clone();
            let mut p = params.clone();
            p[i] += eps;
            mp.set_flat_params(&p).unwrap();
            let lp = Loss::CrossEntropy.value(&mp.forward(&input).unwrap(), target);
            p[i] -= 2.0 * eps;
            mp.set_flat_params(&p).unwrap();
            let lm = Loss::CrossEntropy.value(&mp.forward(&input).unwrap(), target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - flat_g[i]).abs() < 5e-2,
                "param {i}: fd {fd} vs analytic {}",
                flat_g[i]
            );
        }
    }

    #[test]
    fn soft_backprop_matches_finite_differences() {
        let m = model();
        let input = [0.1f32, 0.5, -0.3];
        let target = [0.2f32, 0.8];
        let (_, grads) = backprop_soft(&m, &input, &target, Loss::CrossEntropy).unwrap();
        let flat_g = grads.flatten();
        let params = m.flat_params();
        let eps = 1e-2f32;
        for i in (0..params.len()).step_by(5) {
            let mut mp = m.clone();
            let mut p = params.clone();
            p[i] += eps;
            mp.set_flat_params(&p).unwrap();
            let lp = Loss::CrossEntropy.value_soft(&mp.forward(&input).unwrap(), &target);
            p[i] -= 2.0 * eps;
            mp.set_flat_params(&p).unwrap();
            let lm = Loss::CrossEntropy.value_soft(&mp.forward(&input).unwrap(), &target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - flat_g[i]).abs() < 5e-2, "param {i}");
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let m = model();
        let input = [0.4f32, -0.2, 0.9];
        let g = input_gradient(&m, &input, 0, Loss::CrossEntropy).unwrap();
        let eps = 1e-2f32;
        for i in 0..input.len() {
            let mut ip = input;
            ip[i] += eps;
            let lp = Loss::CrossEntropy.value(&m.forward(&ip).unwrap(), 0);
            ip[i] -= 2.0 * eps;
            let lm = Loss::CrossEntropy.value(&m.forward(&ip).unwrap(), 0);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - g[i]).abs() < 5e-2, "input dim {i}: fd {fd} vs {}", g[i]);
        }
    }

    #[test]
    fn batch_backprop_averages() {
        let m = model();
        let x = Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.1, 0.0, 0.4]).unwrap();
        let y = [0usize, 1];
        let (avg_loss, batch_g) = batch_backprop(&m, &x, &y, Loss::CrossEntropy).unwrap();
        let (l0, g0) = backprop(&m, x.row(0), 0, Loss::CrossEntropy).unwrap();
        let (l1, g1) = backprop(&m, x.row(1), 1, Loss::CrossEntropy).unwrap();
        assert!((avg_loss - (l0 + l1) / 2.0).abs() < 1e-5);
        let fb = batch_g.flatten();
        let f0 = g0.flatten();
        let f1 = g1.flatten();
        for i in 0..fb.len() {
            assert!((fb[i] - (f0[i] + f1[i]) / 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_utils() {
        let m = model();
        let mut z = Gradients::zeros_like(&m);
        assert_eq!(z.l2_norm(), 0.0);
        let (_, g) = backprop(&m, &[0.1, 0.1, 0.1], 0, Loss::CrossEntropy).unwrap();
        z.accumulate(&g).unwrap();
        assert!(z.l2_norm() > 0.0);
        let before = z.l2_norm();
        z.scale(0.5);
        assert!((z.l2_norm() - before * 0.5).abs() < 1e-5);
        assert_eq!(z.flatten().len(), m.num_params());
    }
}
