//! The unified [`Model`] type — a concrete `(f*, θ, p_θ)` triple — plus a
//! compact binary artifact codec for content-addressed storage.

use crate::arch::Architecture;
use crate::lm::NgramLm;
use crate::mlp::Mlp;
use mlake_tensor::TensorError;
use serde::{Deserialize, Serialize};

/// A model artifact as stored in the lake: either a classifier (MLP) or a
/// generative n-gram language model. Lake tasks that only need the generic
/// `(f*, θ)` view use [`Model::architecture`] / [`Model::flat_params`];
/// extrinsic probing uses [`Model::predict_probs`] or
/// [`Model::next_token_dist`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Model {
    /// Feed-forward classifier.
    Mlp(Mlp),
    /// n-gram language model.
    Lm(NgramLm),
}

impl Model {
    /// The architecture descriptor `f*`.
    pub fn architecture(&self) -> Architecture {
        match self {
            Model::Mlp(m) => m.architecture(),
            Model::Lm(lm) => lm.architecture(),
        }
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        match self {
            Model::Mlp(m) => m.num_params(),
            Model::Lm(lm) => lm.num_params(),
        }
    }

    /// Flattened parameter vector `θ` (probabilities for LMs).
    pub fn flat_params(&self) -> Vec<f32> {
        match self {
            Model::Mlp(m) => m.flat_params(),
            Model::Lm(lm) => lm.flat_params(),
        }
    }

    /// Class-probability vector for a feature input (classifiers only).
    pub fn predict_probs(&self, input: &[f32]) -> crate::Result<Vec<f32>> {
        match self {
            Model::Mlp(m) => m.predict_probs(input),
            Model::Lm(_) => Err(TensorError::Empty("predict_probs on language model")),
        }
    }

    /// Next-token distribution for a token context (LMs only).
    pub fn next_token_dist(&self, context: &[usize]) -> crate::Result<Vec<f32>> {
        match self {
            Model::Lm(lm) => lm.next_dist(context),
            Model::Mlp(_) => Err(TensorError::Empty("next_token_dist on classifier")),
        }
    }

    /// Borrows the MLP, if this is a classifier.
    pub fn as_mlp(&self) -> Option<&Mlp> {
        match self {
            Model::Mlp(m) => Some(m),
            Model::Lm(_) => None,
        }
    }

    /// Borrows the LM, if this is a language model.
    pub fn as_lm(&self) -> Option<&NgramLm> {
        match self {
            Model::Lm(lm) => Some(lm),
            Model::Mlp(_) => None,
        }
    }

    /// Mutable MLP access.
    pub fn as_mlp_mut(&mut self) -> Option<&mut Mlp> {
        match self {
            Model::Mlp(m) => Some(m),
            Model::Lm(_) => None,
        }
    }

    /// Mutable LM access.
    pub fn as_lm_mut(&mut self) -> Option<&mut NgramLm> {
        match self {
            Model::Lm(lm) => Some(lm),
            Model::Mlp(_) => None,
        }
    }

    /// `true` when every parameter is finite. Artifacts with NaN/Inf weights
    /// are corrupt by definition (and would not survive the JSON codec).
    pub fn is_finite(&self) -> bool {
        self.flat_params().iter().all(|v| v.is_finite())
    }

    /// Serialises to the lake artifact format.
    ///
    /// Layout: magic `MLKM`, format version `u16`, then a JSON body. JSON is
    /// acceptable at this scale, keeps the artifact self-describing, and the
    /// binary envelope gives the content-addressed store a stable prefix to
    /// validate before parsing untrusted bytes.
    pub fn to_bytes(&self) -> crate::Result<Vec<u8>> {
        let body = serde_json::to_vec(self)
            .map_err(|_| TensorError::Numerical("model serialisation failed"))?;
        let mut out = Vec::with_capacity(body.len() + 10);
        out.extend_from_slice(b"MLKM");
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Parses the lake artifact format; rejects bad magic, version or length.
    pub fn from_bytes(bytes: &[u8]) -> crate::Result<Model> {
        if bytes.len() < 10 || &bytes[..4] != b"MLKM" {
            return Err(TensorError::Numerical("bad model artifact magic"));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != ARTIFACT_VERSION {
            return Err(TensorError::Numerical("unsupported model artifact version"));
        }
        let len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
        if bytes.len() != 10 + len {
            return Err(TensorError::BadBuffer {
                expected: 10 + len,
                actual: bytes.len(),
            });
        }
        serde_json::from_slice(&bytes[10..])
            .map_err(|_| TensorError::Numerical("corrupt model artifact body"))
    }
}

/// Current artifact format version.
pub const ARTIFACT_VERSION: u16 = 1;

impl From<Mlp> for Model {
    fn from(m: Mlp) -> Self {
        Model::Mlp(m)
    }
}

impl From<NgramLm> for Model {
    fn from(lm: NgramLm) -> Self {
        Model::Lm(lm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use mlake_tensor::{init::Init, Pcg64};

    fn mlp_model() -> Model {
        let mut rng = Pcg64::new(8);
        Model::Mlp(Mlp::new(vec![3, 4, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap())
    }

    fn lm_model() -> Model {
        let mut lm = NgramLm::new(5, 2, 0.1).unwrap();
        lm.add_counts(&[0, 1, 2, 3, 4, 0, 1, 2], 1.0).unwrap();
        Model::Lm(lm)
    }

    #[test]
    fn generic_views() {
        let m = mlp_model();
        assert_eq!(m.num_params(), m.flat_params().len());
        assert_eq!(m.architecture().signature(), "mlp:3-4-2:relu");
        let lm = lm_model();
        assert_eq!(lm.architecture().signature(), "ngram:5:2");
        assert_eq!(lm.flat_params().len(), 25);
    }

    #[test]
    fn extrinsic_views_gate_by_family() {
        let m = mlp_model();
        assert!(m.predict_probs(&[0.1, 0.2, 0.3]).is_ok());
        assert!(m.next_token_dist(&[0]).is_err());
        let lm = lm_model();
        assert!(lm.next_token_dist(&[0]).is_ok());
        assert!(lm.predict_probs(&[0.0]).is_err());
    }

    #[test]
    fn accessors() {
        let mut m = mlp_model();
        assert!(m.as_mlp().is_some());
        assert!(m.as_lm().is_none());
        assert!(m.as_mlp_mut().is_some());
        let mut lm = lm_model();
        assert!(lm.as_lm().is_some());
        assert!(lm.as_lm_mut().is_some());
        assert!(lm.as_mlp().is_none());
    }

    #[test]
    fn bytes_round_trip() {
        for m in [mlp_model(), lm_model()] {
            let bytes = m.to_bytes().unwrap();
            let back = Model::from_bytes(&bytes).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn bytes_reject_corruption() {
        let m = mlp_model();
        let bytes = m.to_bytes().unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Model::from_bytes(&bad).is_err());
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(Model::from_bytes(&bad).is_err());
        // Truncated.
        assert!(Model::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        // Garbage body.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 5..].copy_from_slice(b"#####");
        assert!(Model::from_bytes(&bad).is_err());
        // Too short entirely.
        assert!(Model::from_bytes(b"ML").is_err());
    }
}
