//! # mlake-nn
//!
//! From-scratch neural networks and model transformations.
//!
//! This crate materialises the paper's model formalisation
//! `M = (D, A, f*, θ, p_θ)` (§2):
//!
//! * [`arch::Architecture`] is `f*` — the function family;
//! * [`model::Model`] carries `θ` — concrete parameters — and exposes
//!   `p_θ` through [`model::Model::predict_probs`] and the language-model
//!   distribution API;
//! * [`train`] is `A` — the training algorithm, fully seeded;
//! * the [`transform`] module implements the derivation operators the paper's
//!   §4 "Model Versions" catalogues: **fine-tuning**, **LoRA**
//!   (parameter-efficient tuning), **model editing**, **distillation**
//!   (preference-style behaviour transfer), **stitching**, plus pruning and
//!   quantisation — each leaving the weight-delta signature that version-graph
//!   recovery (crate `mlake-versioning`) keys on.
//!
//! Models are intentionally small (MLPs, bag-of-words classifiers, n-gram
//! language models): every lake task treats them through the generic
//! `(f*, θ, p_θ)` interface, so the lake-management code paths are identical
//! to those needed for large models, while exhaustive ground truth (exact
//! retraining, exact lineage) stays computable. See DESIGN.md §2.

pub mod activation;
pub mod arch;
pub mod data;
pub mod grad;
pub mod lm;
pub mod loss;
pub mod mlp;
pub mod model;
pub mod optim;
pub mod train;
pub mod transform;

pub use activation::Activation;
pub use arch::Architecture;
pub use data::LabeledData;
pub use lm::NgramLm;
pub use loss::Loss;
pub use mlp::Mlp;
pub use model::Model;
pub use train::{train_mlp, TrainConfig, TrainReport};
pub use transform::TransformKind;

/// Crate-wide `Result` alias, re-using the tensor error type: every failure
/// mode in this crate is ultimately a shape/numeric failure.
pub type Result<T> = mlake_tensor::Result<T>;
