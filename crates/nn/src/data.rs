//! Lightweight labelled-data container shared by training and evaluation.

use mlake_tensor::{Matrix, Pcg64, TensorError};
use serde::{Deserialize, Serialize};

/// A classification dataset: feature rows plus integer class labels.
///
/// The richer dataset abstractions (domains, versions, provenance ids) live
/// in `mlake-datagen`; this is the minimal view the training loop consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledData {
    /// One example per row.
    pub x: Matrix,
    /// Class label per row, `labels[i] < num_classes`.
    pub y: Vec<usize>,
}

impl LabeledData {
    /// Builds the pair, validating that rows and labels align.
    pub fn new(x: Matrix, y: Vec<usize>) -> crate::Result<Self> {
        if x.rows() != y.len() {
            return Err(TensorError::ShapeMismatch {
                op: "labeled_data",
                lhs: x.shape(),
                rhs: (y.len(), 1),
            });
        }
        Ok(LabeledData { x, y })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when there are no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of distinct classes assuming labels are `0..k` dense
    /// (max label + 1; 0 when empty).
    pub fn num_classes(&self) -> usize {
        self.y.iter().max().map_or(0, |&m| m + 1)
    }

    /// Subset by example indices (repetition allowed).
    pub fn select(&self, indices: &[usize]) -> crate::Result<LabeledData> {
        let x = self.x.select_rows(indices)?;
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.y.len() {
                return Err(TensorError::OutOfBounds {
                    index: (i, 0),
                    shape: self.x.shape(),
                });
            }
            y.push(self.y[i]);
        }
        Ok(LabeledData { x, y })
    }

    /// All examples except index `omit` — the leave-one-out workhorse.
    pub fn without(&self, omit: usize) -> crate::Result<LabeledData> {
        let keep: Vec<usize> = (0..self.len()).filter(|&i| i != omit).collect();
        self.select(&keep)
    }

    /// Splits into `(train, test)` with `train_fraction` of shuffled examples
    /// in the first part.
    pub fn split(&self, train_fraction: f32, rng: &mut Pcg64) -> crate::Result<(LabeledData, LabeledData)> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let cut = ((self.len() as f32) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let train = self.select(&idx[..cut])?;
        let test = self.select(&idx[cut..])?;
        Ok((train, test))
    }

    /// Concatenates two datasets with identical dimensionality.
    pub fn concat(&self, other: &LabeledData) -> crate::Result<LabeledData> {
        let x = self.x.vstack(&other.x)?;
        let mut y = self.y.clone();
        y.extend_from_slice(&other.y);
        Ok(LabeledData { x, y })
    }

    /// Iterates mini-batch index slices of size `batch` over a shuffled
    /// epoch order. Returns the shuffled order so callers can map batch
    /// positions back to example ids (needed by per-example attribution).
    pub fn epoch_order(&self, rng: &mut Pcg64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LabeledData {
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        LabeledData::new(x, vec![0, 1, 1, 0]).unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let x = Matrix::zeros(3, 2);
        assert!(LabeledData::new(x, vec![0, 1]).is_err());
    }

    #[test]
    fn dims_and_classes() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn select_and_without() {
        let d = toy();
        let s = d.select(&[3, 0]).unwrap();
        assert_eq!(s.y, vec![0, 0]);
        assert_eq!(s.x.row(0), &[1.0, 1.0]);
        let loo = d.without(1).unwrap();
        assert_eq!(loo.len(), 3);
        assert_eq!(loo.y, vec![0, 1, 0]);
        assert!(d.select(&[9]).is_err());
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy();
        let mut rng = Pcg64::new(5);
        let (tr, te) = d.split(0.5, &mut rng).unwrap();
        assert_eq!(tr.len() + te.len(), d.len());
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d).unwrap();
        assert_eq!(c.len(), 8);
        assert_eq!(c.y[4..], d.y[..]);
    }

    #[test]
    fn epoch_order_is_permutation() {
        let d = toy();
        let mut rng = Pcg64::new(7);
        let mut order = d.epoch_order(&mut rng);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
