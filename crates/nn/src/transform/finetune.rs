//! Full-parameter fine-tuning for both model families.

use crate::data::LabeledData;
use crate::lm::NgramLm;
use crate::mlp::Mlp;
use crate::train::{train_mlp, TrainConfig, TrainReport};

/// Fine-tunes a copy of `base` on `data`, returning the child model and the
/// training report. The parent is untouched — lake derivations never mutate
/// stored artifacts.
pub fn finetune_mlp(
    base: &Mlp,
    data: &LabeledData,
    config: &TrainConfig,
) -> crate::Result<(Mlp, TrainReport)> {
    let mut child = base.clone();
    let report = train_mlp(&mut child, data, config)?;
    Ok((child, report))
}

/// Fine-tunes a copy of an n-gram LM by accumulating counts from a further
/// corpus. `weight > 1` emphasises the new domain, matching practice where
/// fine-tuning corpora are up-weighted relative to pre-training mass.
pub fn finetune_lm(base: &NgramLm, corpus: &[usize], weight: f64) -> crate::Result<NgramLm> {
    let mut child = base.clone();
    child.add_counts(corpus, weight)?;
    Ok(child)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::train::accuracy;
    use mlake_tensor::{init::Init, vector, Matrix, Seed};

    fn blobs(center: f32, n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("ft-blobs").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let c = if class == 0 { -center } else { center };
            rows.push(vec![c + rng.normal() * 0.4, c + rng.normal() * 0.4]);
            labels.push(class);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn finetune_improves_on_new_domain_and_keeps_parent_intact() {
        let pretrain = blobs(2.0, 128, 1);
        let mut rng = Seed::new(2).derive("init").rng();
        let mut base =
            Mlp::new(vec![2, 8, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        train_mlp(&mut base, &pretrain, &TrainConfig { epochs: 20, ..Default::default() }).unwrap();

        // New domain: labels flipped relative to pre-training.
        let mut target = blobs(2.0, 128, 5);
        for y in &mut target.y {
            *y = 1 - *y;
        }
        let before = accuracy(&base, &target).unwrap();
        let parent_params = base.flat_params();
        let (child, report) =
            finetune_mlp(&base, &target, &TrainConfig { epochs: 25, ..Default::default() })
                .unwrap();
        let after = accuracy(&child, &target).unwrap();
        assert!(after > before, "{after} !> {before}");
        assert!(report.steps > 0);
        // Parent untouched.
        assert_eq!(base.flat_params(), parent_params);
    }

    #[test]
    fn finetune_delta_is_dense() {
        let pretrain = blobs(2.0, 64, 3);
        let mut rng = Seed::new(4).derive("init").rng();
        let mut base =
            Mlp::new(vec![2, 8, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        train_mlp(&mut base, &pretrain, &TrainConfig { epochs: 10, ..Default::default() }).unwrap();
        let (child, _) =
            finetune_mlp(&base, &blobs(1.0, 64, 7), &TrainConfig { epochs: 5, ..Default::default() })
                .unwrap();
        let delta: Vec<f32> = child
            .flat_params()
            .iter()
            .zip(base.flat_params())
            .map(|(c, b)| c - b)
            .collect();
        let nonzero = delta.iter().filter(|d| d.abs() > 1e-8).count();
        // Fine-tuning touches (almost) every parameter.
        assert!(nonzero as f32 / delta.len() as f32 > 0.9);
        assert!(vector::l2_norm(&delta) > 0.0);
    }

    #[test]
    fn lm_finetune_shifts_but_preserves_parent() {
        let mut base = NgramLm::new(4, 2, 0.1).unwrap();
        base.add_counts(&(0..40).map(|i| i % 4).collect::<Vec<_>>(), 1.0)
            .unwrap();
        let snapshot = base.clone();
        let corpus: Vec<usize> = (0..40).map(|i| if i % 2 == 0 { 1 } else { 3 }).collect();
        let child = finetune_lm(&base, &corpus, 3.0).unwrap();
        assert!(child.prob(&[1], 3).unwrap() > base.prob(&[1], 3).unwrap());
        assert_eq!(base, snapshot);
    }
}
