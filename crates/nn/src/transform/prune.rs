//! Magnitude pruning: zero the smallest-magnitude fraction of weights.

use crate::mlp::Mlp;
use mlake_tensor::TensorError;

/// Returns a copy of `base` with the `fraction` smallest-|w| weights zeroed
/// (biases untouched). `fraction` must lie in `[0, 1]`.
pub fn prune_mlp(base: &Mlp, fraction: f32) -> crate::Result<Mlp> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(TensorError::Numerical("prune fraction outside [0, 1]"));
    }
    // Collect all weight magnitudes to find the global threshold.
    let mut magnitudes: Vec<f32> = Vec::new();
    for l in 0..base.num_layers() {
        magnitudes.extend(base.weight(l).as_slice().iter().map(|w| w.abs()));
    }
    if magnitudes.is_empty() || fraction == 0.0 {
        return Ok(base.clone());
    }
    magnitudes.sort_by(f32::total_cmp);
    let cut = ((magnitudes.len() as f32 * fraction) as usize).min(magnitudes.len() - 1);
    let threshold = magnitudes[cut];

    let mut child = base.clone();
    for l in 0..child.num_layers() {
        for w in child.weight_mut(l).as_mut_slice() {
            if w.abs() < threshold {
                *w = 0.0;
            }
        }
    }
    Ok(child)
}

/// Fraction of exactly-zero weights (sparsity) across all layers.
pub fn sparsity(model: &Mlp) -> f32 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for l in 0..model.num_layers() {
        let s = model.weight(l).as_slice();
        zeros += s.iter().filter(|&&w| w == 0.0).count();
        total += s.len();
    }
    if total == 0 {
        0.0
    } else {
        zeros as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use mlake_tensor::{init::Init, Pcg64};

    fn base() -> Mlp {
        let mut rng = Pcg64::new(41);
        Mlp::new(vec![4, 10, 3], Activation::Relu, Init::XavierNormal, &mut rng).unwrap()
    }

    #[test]
    fn prune_reaches_target_sparsity() {
        let m = base();
        let child = prune_mlp(&m, 0.5).unwrap();
        let s = sparsity(&child);
        assert!((s - 0.5).abs() < 0.1, "sparsity {s}");
        // Parent untouched.
        assert!(sparsity(&m) < 0.05);
    }

    #[test]
    fn prune_keeps_large_weights() {
        let m = base();
        let child = prune_mlp(&m, 0.3).unwrap();
        // The largest-magnitude weight must survive.
        let max_before = m
            .weight(0)
            .as_slice()
            .iter()
            .chain(m.weight(1).as_slice())
            .fold(0.0f32, |a, &w| a.max(w.abs()));
        let max_after = child
            .weight(0)
            .as_slice()
            .iter()
            .chain(child.weight(1).as_slice())
            .fold(0.0f32, |a, &w| a.max(w.abs()));
        assert_eq!(max_before, max_after);
    }

    #[test]
    fn zero_fraction_is_identity() {
        let m = base();
        assert_eq!(prune_mlp(&m, 0.0).unwrap(), m);
    }

    #[test]
    fn fraction_validated() {
        let m = base();
        assert!(prune_mlp(&m, -0.1).is_err());
        assert!(prune_mlp(&m, 1.5).is_err());
    }

    #[test]
    fn full_prune_keeps_only_top() {
        let m = base();
        let child = prune_mlp(&m, 1.0).unwrap();
        assert!(sparsity(&child) > 0.9);
    }
}
