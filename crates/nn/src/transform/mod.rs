//! Model derivation operators — how versions come to exist.
//!
//! §4 of the paper ("Model Versions") catalogues the ways new model versions
//! are derived from base models: fine-tuning, parameter-efficient tuning
//! (LoRA), model editing, preference-style behaviour transfer, and model
//! stitching. This module implements each operator so that the benchmark
//! lake contains *real* derivations whose weight-delta signatures match the
//! phenomena version-recovery research keys on:
//!
//! | operator | delta signature |
//! |----------|-----------------|
//! | fine-tune | dense, small-magnitude, full-rank |
//! | LoRA      | confined to one layer, **low rank** |
//! | edit      | confined to one layer, **rank one** |
//! | distill   | fresh weights, near-zero weight similarity, high behaviour similarity |
//! | stitch    | per-layer mixture of two parents |
//! | prune     | sparse zero pattern |
//! | quantize  | lattice-valued weights |

pub mod distill;
pub mod edit;
pub mod finetune;
pub mod lora;
pub mod prune;
pub mod quantize;
pub mod stitch;

pub use distill::distill_mlp;
pub use edit::{edit_mlp, EditSpec};
pub use finetune::{finetune_lm, finetune_mlp};
pub use lora::{lora_finetune, LoraAdapter, LoraConfig};
pub use prune::prune_mlp;
pub use quantize::quantize_mlp;
pub use stitch::stitch_mlp;

use serde::{Deserialize, Serialize};

/// Ground-truth (and predicted) derivation label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransformKind {
    /// Full-parameter fine-tuning on further data.
    FineTune,
    /// Low-rank adapter fine-tuning, merged into one layer.
    Lora,
    /// Targeted rank-one fact edit.
    Edit,
    /// Knowledge distillation into a fresh student.
    Distill,
    /// Layer stitching of two parents.
    Stitch,
    /// Magnitude pruning.
    Prune,
    /// Weight quantisation.
    Quantize,
}

impl TransformKind {
    /// Stable lower-case name (used in metadata and query predicates).
    pub fn name(self) -> &'static str {
        match self {
            TransformKind::FineTune => "finetune",
            TransformKind::Lora => "lora",
            TransformKind::Edit => "edit",
            TransformKind::Distill => "distill",
            TransformKind::Stitch => "stitch",
            TransformKind::Prune => "prune",
            TransformKind::Quantize => "quantize",
        }
    }

    /// Parses [`name`](Self::name).
    pub fn parse(s: &str) -> Option<TransformKind> {
        match s {
            "finetune" => Some(TransformKind::FineTune),
            "lora" => Some(TransformKind::Lora),
            "edit" => Some(TransformKind::Edit),
            "distill" => Some(TransformKind::Distill),
            "stitch" => Some(TransformKind::Stitch),
            "prune" => Some(TransformKind::Prune),
            "quantize" => Some(TransformKind::Quantize),
            _ => None,
        }
    }

    /// All variants, for sweeps and classifiers.
    pub const ALL: [TransformKind; 7] = [
        TransformKind::FineTune,
        TransformKind::Lora,
        TransformKind::Edit,
        TransformKind::Distill,
        TransformKind::Stitch,
        TransformKind::Prune,
        TransformKind::Quantize,
    ];

    /// Whether the child shares weight continuity with its parent (distilled
    /// students do not — they only inherit behaviour).
    pub fn preserves_weights(self) -> bool {
        !matches!(self, TransformKind::Distill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in TransformKind::ALL {
            assert_eq!(TransformKind::parse(k.name()), Some(k));
        }
        assert_eq!(TransformKind::parse("mystery"), None);
    }

    #[test]
    fn distill_breaks_weight_continuity() {
        assert!(!TransformKind::Distill.preserves_weights());
        assert!(TransformKind::FineTune.preserves_weights());
        assert!(TransformKind::Lora.preserves_weights());
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let names: std::collections::HashSet<_> =
            TransformKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 7);
    }
}
