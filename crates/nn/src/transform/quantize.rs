//! Simulated uniform weight quantisation.
//!
//! Quantised re-uploads are a common hub phenomenon (GGUF/INT8 variants of
//! popular checkpoints); they are near-duplicates of their parent with a
//! characteristic lattice-valued weight distribution.

use crate::mlp::Mlp;
use mlake_tensor::TensorError;

/// Returns a copy of `base` with every weight and bias rounded to a
/// symmetric uniform grid of `bits` (2..=16) per tensor, scaled by each
/// tensor's max magnitude.
pub fn quantize_mlp(base: &Mlp, bits: u32) -> crate::Result<Mlp> {
    if !(2..=16).contains(&bits) {
        return Err(TensorError::Numerical("quantize bits outside 2..=16"));
    }
    let levels = (1i64 << (bits - 1)) - 1; // symmetric signed grid
    let mut child = base.clone();
    for l in 0..child.num_layers() {
        quantize_slice(child.weight_mut(l).as_mut_slice(), levels);
        quantize_slice(child.bias_mut(l).as_mut_slice(), levels);
    }
    Ok(child)
}

fn quantize_slice(xs: &mut [f32], levels: i64) {
    let max = xs.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
    if max == 0.0 {
        return;
    }
    let scale = max / levels as f32;
    for x in xs {
        let q = (*x / scale).round().clamp(-(levels as f32), levels as f32);
        *x = q * scale;
    }
}

/// Counts distinct weight values in layer `l` — quantised layers have at
/// most `2^bits` of them, a fingerprintable property.
pub fn distinct_values(model: &Mlp, layer: usize) -> usize {
    let mut vals: Vec<u32> = model
        .weight(layer)
        .as_slice()
        .iter()
        .map(|w| w.to_bits())
        .collect();
    vals.sort_unstable();
    vals.dedup();
    vals.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use mlake_tensor::{init::Init, Pcg64};

    fn base() -> Mlp {
        let mut rng = Pcg64::new(51);
        Mlp::new(vec![6, 20, 4], Activation::Relu, Init::XavierNormal, &mut rng).unwrap()
    }

    #[test]
    fn quantized_values_are_few() {
        let m = base();
        let q = quantize_mlp(&m, 4).unwrap();
        // 4 bits => at most 2*7+1 = 15 distinct values per tensor.
        assert!(distinct_values(&q, 0) <= 15);
        assert!(distinct_values(&m, 0) > 50);
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let m = base();
        let q4 = quantize_mlp(&m, 4).unwrap();
        let q8 = quantize_mlp(&m, 8).unwrap();
        let err = |q: &Mlp| -> f32 {
            m.flat_params()
                .iter()
                .zip(q.flat_params())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        assert!(err(&q8) < err(&q4));
        assert!(err(&q8) > 0.0);
    }

    #[test]
    fn bits_validated() {
        let m = base();
        assert!(quantize_mlp(&m, 1).is_err());
        assert!(quantize_mlp(&m, 17).is_err());
    }

    #[test]
    fn zero_tensor_survives() {
        let mut m = base();
        m.weight_mut(0).scale_mut(0.0);
        let q = quantize_mlp(&m, 4).unwrap();
        assert!(q.weight(0).as_slice().iter().all(|&w| w == 0.0));
    }

    #[test]
    fn behaviour_approximately_preserved_at_high_bits() {
        let m = base();
        let q = quantize_mlp(&m, 12).unwrap();
        let input = vec![0.3f32; 6];
        let a = m.predict_probs(&input).unwrap();
        let b = q.predict_probs(&input).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.02);
        }
    }
}
