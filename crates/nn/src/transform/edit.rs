//! Targeted model editing — a rank-one weight surgery.
//!
//! Model editing (ROME/MEMIT-style, Meng et al.) updates a single association
//! inside one layer without retraining. For a linear layer `W`, forcing the
//! response to key direction `k` to become `v` is the rank-one update
//! `W' = W + (v − W k) kᵀ / (kᵀ k)`, which leaves the response to any input
//! orthogonal to `k` unchanged. The delta is exactly rank one and confined
//! to one layer — the sharpest signature in the transform-classification
//! taxonomy.

use crate::mlp::Mlp;
use mlake_tensor::{vector, Matrix, TensorError};
use serde::{Deserialize, Serialize};

/// Declarative description of an edit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EditSpec {
    /// Which weight layer to edit.
    pub layer: usize,
    /// Key direction in the layer's input space.
    pub key: Vec<f32>,
    /// Desired pre-activation response `W' k + b = value + b`, i.e. the new
    /// `W' k`.
    pub value: Vec<f32>,
}

/// Applies a rank-one edit to a copy of `base`.
pub fn edit_mlp(base: &Mlp, spec: &EditSpec) -> crate::Result<Mlp> {
    if spec.layer >= base.num_layers() {
        return Err(TensorError::OutOfBounds {
            index: (spec.layer, 0),
            shape: (base.num_layers(), 0),
        });
    }
    let w = base.weight(spec.layer);
    let (fan_out, fan_in) = w.shape();
    if spec.key.len() != fan_in || spec.value.len() != fan_out {
        return Err(TensorError::ShapeMismatch {
            op: "edit_mlp",
            lhs: (fan_out, fan_in),
            rhs: (spec.value.len(), spec.key.len()),
        });
    }
    let kk = vector::dot(&spec.key, &spec.key);
    if kk <= 1e-12 {
        return Err(TensorError::Numerical("edit key must be non-zero"));
    }
    // residual = v − W k
    let wk = w.matvec(&spec.key)?;
    let residual: Vec<f32> = spec.value.iter().zip(&wk).map(|(v, r)| v - r).collect();
    // ΔW = residual ⊗ kᵀ / (kᵀk)
    let delta = Matrix::from_fn(fan_out, fan_in, |r, c| residual[r] * spec.key[c] / kk);
    let mut child = base.clone();
    child.weight_mut(spec.layer).axpy(1.0, &delta)?;
    Ok(child)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use mlake_tensor::{init::Init, linalg, Pcg64};

    fn base() -> Mlp {
        let mut rng = Pcg64::new(21);
        Mlp::new(vec![3, 5, 2], Activation::Relu, Init::XavierNormal, &mut rng).unwrap()
    }

    #[test]
    fn edit_forces_target_response() {
        let m = base();
        let spec = EditSpec {
            layer: 0,
            key: vec![1.0, 0.5, -0.25],
            value: vec![1.0, -1.0, 0.5, 0.0, 2.0],
        };
        let child = edit_mlp(&m, &spec).unwrap();
        let response = child.weight(0).matvec(&spec.key).unwrap();
        for (r, v) in response.iter().zip(&spec.value) {
            assert!((r - v).abs() < 1e-4, "{response:?}");
        }
    }

    #[test]
    fn orthogonal_inputs_unchanged() {
        let m = base();
        let spec = EditSpec {
            layer: 0,
            key: vec![1.0, 0.0, 0.0],
            value: vec![0.0; 5],
        };
        let child = edit_mlp(&m, &spec).unwrap();
        // Input orthogonal to the key sees the original weights.
        let orth = [0.0f32, 1.0, -2.0];
        let before = m.weight(0).matvec(&orth).unwrap();
        let after = child.weight(0).matvec(&orth).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-5);
        }
    }

    #[test]
    fn delta_is_rank_one_and_confined() {
        let m = base();
        let spec = EditSpec {
            layer: 0,
            key: vec![0.3, -0.7, 1.1],
            value: vec![0.5, 0.5, -0.5, 1.0, 0.0],
        };
        let child = edit_mlp(&m, &spec).unwrap();
        let delta = child.weight(0).sub(m.weight(0)).unwrap();
        assert_eq!(linalg::effective_rank(&delta, 0.02).unwrap(), 1);
        assert_eq!(m.weight(1), child.weight(1));
        assert_eq!(m.bias(0), child.bias(0));
    }

    #[test]
    fn validation() {
        let m = base();
        assert!(edit_mlp(
            &m,
            &EditSpec { layer: 9, key: vec![1.0; 3], value: vec![0.0; 5] }
        )
        .is_err());
        assert!(edit_mlp(
            &m,
            &EditSpec { layer: 0, key: vec![1.0; 2], value: vec![0.0; 5] }
        )
        .is_err());
        assert!(edit_mlp(
            &m,
            &EditSpec { layer: 0, key: vec![0.0; 3], value: vec![0.0; 5] }
        )
        .is_err());
    }
}
