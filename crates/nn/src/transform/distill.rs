//! Knowledge distillation: behaviour transfer without weight continuity.
//!
//! A fresh student is trained on the teacher's soft outputs over an
//! (unlabelled) transfer set. Distilled children are the adversarial case
//! for weight-based version recovery — their parameters share no lineage
//! with the teacher even though their behaviour does — which is why the
//! paper argues lakes need *both* intrinsic and extrinsic views (§2, §5).

use crate::activation::Activation;
use crate::grad::backprop_soft;
use crate::loss::Loss;
use crate::mlp::Mlp;
use mlake_tensor::{init::Init, vector, Matrix, Seed};
use serde::{Deserialize, Serialize};

/// Distillation hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Student hidden sizes (input/output copied from the teacher).
    pub student_hidden: Vec<usize>,
    /// Student activation.
    pub activation: Activation,
    /// Softmax temperature applied to teacher logits.
    pub temperature: f32,
    /// Learning rate.
    pub lr: f32,
    /// Epochs over the transfer set.
    pub epochs: usize,
    /// Seed (fresh student init + shuffling).
    pub seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            student_hidden: vec![8],
            activation: Activation::Relu,
            temperature: 2.0,
            lr: 0.1,
            epochs: 40,
            seed: 0,
        }
    }
}

/// Trains a fresh student to mimic `teacher` on `transfer_inputs`.
pub fn distill_mlp(
    teacher: &Mlp,
    transfer_inputs: &Matrix,
    config: &DistillConfig,
) -> crate::Result<Mlp> {
    let sizes = teacher.layer_sizes();
    let input_dim = sizes[0];
    let output_dim = *sizes
        .last()
        .ok_or(mlake_tensor::TensorError::Empty("teacher layer_sizes"))?;
    let mut layer_sizes = Vec::with_capacity(config.student_hidden.len() + 2);
    layer_sizes.push(input_dim);
    layer_sizes.extend_from_slice(&config.student_hidden);
    layer_sizes.push(output_dim);

    let seed = Seed::new(config.seed);
    let mut init_rng = seed.derive("distill-init").rng();
    let mut student = Mlp::new(layer_sizes, config.activation, Init::HeNormal, &mut init_rng)?;
    let mut shuffle_rng = seed.derive("distill-shuffle").rng();

    let temp = config.temperature.max(1e-3);
    // Precompute tempered teacher targets.
    let mut targets: Vec<Vec<f32>> = Vec::with_capacity(transfer_inputs.rows());
    for row in transfer_inputs.rows_iter() {
        let logits = teacher.forward(row)?;
        let tempered: Vec<f32> = logits.iter().map(|&z| z / temp).collect();
        targets.push(vector::softmax(&tempered));
    }

    let mut order: Vec<usize> = (0..transfer_inputs.rows()).collect();
    for _ in 0..config.epochs {
        shuffle_rng.shuffle(&mut order);
        for &i in &order {
            let (_, grads) = backprop_soft(
                &student,
                transfer_inputs.row(i),
                &targets[i],
                Loss::CrossEntropy,
            )?;
            let mut params = student.flat_params();
            let flat = grads.flatten();
            for (p, g) in params.iter_mut().zip(&flat) {
                *p -= config.lr * g;
            }
            student.set_flat_params(&params)?;
        }
    }
    Ok(student)
}

/// Mean total-variation distance between two classifiers' output
/// distributions over a probe set — the behaviour-similarity measure used to
/// verify distillation quality.
pub fn behavioral_distance(a: &Mlp, b: &Mlp, probes: &Matrix) -> crate::Result<f32> {
    if probes.rows() == 0 {
        return Ok(0.0);
    }
    let mut acc = 0.0f64;
    for row in probes.rows_iter() {
        let pa = a.predict_probs(row)?;
        let pb = b.predict_probs(row)?;
        let tv: f32 = pa
            .iter()
            .zip(&pb)
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / 2.0;
        acc += f64::from(tv);
    }
    Ok((acc / probes.rows() as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::LabeledData;
    use crate::train::{train_mlp, TrainConfig};
    use mlake_tensor::Pcg64;

    fn teacher_and_probes() -> (Mlp, Matrix) {
        let mut rng = Seed::new(31).derive("init").rng();
        let mut teacher =
            Mlp::new(vec![2, 10, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap();
        // Train the teacher on two blobs.
        let mut data_rng = Seed::new(32).derive("data").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..150 {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            rows.push(vec![c + data_rng.normal() * 0.5, c + data_rng.normal() * 0.5]);
            labels.push(class);
        }
        let data = LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();
        train_mlp(&mut teacher, &data, &TrainConfig { epochs: 25, ..Default::default() }).unwrap();
        (teacher, data.x)
    }

    #[test]
    fn student_matches_teacher_behaviour_not_weights() {
        let (teacher, probes) = teacher_and_probes();
        let student = distill_mlp(
            &teacher,
            &probes,
            &DistillConfig {
                student_hidden: vec![6],
                epochs: 40,
                ..Default::default()
            },
        )
        .unwrap();
        // Behaviour close.
        let dist = behavioral_distance(&teacher, &student, &probes).unwrap();
        assert!(dist < 0.15, "behavioural distance {dist}");
        // Architectures differ, so weight lineage is impossible by shape.
        assert_ne!(teacher.architecture(), student.architecture());
    }

    #[test]
    fn same_arch_student_still_has_unrelated_weights() {
        let (teacher, probes) = teacher_and_probes();
        let student = distill_mlp(
            &teacher,
            &probes,
            &DistillConfig {
                student_hidden: vec![10],
                activation: Activation::Tanh,
                epochs: 30,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(teacher.architecture(), student.architecture());
        let cos = vector::cosine_similarity(&teacher.flat_params(), &student.flat_params());
        assert!(cos.abs() < 0.5, "weight cosine {cos} too high for distillation");
    }

    #[test]
    fn behavioral_distance_properties() {
        let (teacher, probes) = teacher_and_probes();
        assert_eq!(
            behavioral_distance(&teacher, &teacher, &probes).unwrap(),
            0.0
        );
        let empty = Matrix::zeros(0, 2);
        assert_eq!(behavioral_distance(&teacher, &teacher, &empty).unwrap(), 0.0);
        // Distance to an all-zero model (uniform output) is large because the
        // trained teacher is confident on its own training inputs.
        let mut rng = Pcg64::new(77);
        let uniform = Mlp::new(vec![2, 10, 2], Activation::Tanh, Init::Zeros, &mut rng).unwrap();
        let d = behavioral_distance(&teacher, &uniform, &probes).unwrap();
        assert!(d > 0.1, "distance {d}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (teacher, probes) = teacher_and_probes();
        let cfg = DistillConfig { epochs: 5, ..Default::default() };
        let a = distill_mlp(&teacher, &probes, &cfg).unwrap();
        let b = distill_mlp(&teacher, &probes, &cfg).unwrap();
        assert_eq!(a.flat_params(), b.flat_params());
    }
}
