//! Model stitching: composing layers from two parents (Lenc & Vedaldi 2015).
//!
//! A stitched child takes layers `[0, cut)` from parent `a` and layers
//! `[cut, L)` from parent `b`. Both parents must share an architecture.
//! Stitched models have *two* parents — the case the paper singles out as
//! hard for version recovery ("similar models with multiple shared parent
//! models need to be distinguished", §5 Weight-Space Modeling).

use crate::mlp::Mlp;
use mlake_tensor::TensorError;

/// Builds a stitched child from two architecture-compatible parents.
/// `cut` is the number of leading weight layers taken from `a`
/// (`0 < cut < num_layers` so both parents genuinely contribute).
pub fn stitch_mlp(a: &Mlp, b: &Mlp, cut: usize) -> crate::Result<Mlp> {
    if a.architecture() != b.architecture() {
        return Err(TensorError::ShapeMismatch {
            op: "stitch_mlp",
            lhs: (a.num_layers(), 0),
            rhs: (b.num_layers(), 0),
        });
    }
    if cut == 0 || cut >= a.num_layers() {
        return Err(TensorError::OutOfBounds {
            index: (cut, 0),
            shape: (a.num_layers(), 0),
        });
    }
    let mut weights = Vec::with_capacity(a.num_layers());
    let mut biases = Vec::with_capacity(a.num_layers());
    for l in 0..a.num_layers() {
        let src = if l < cut { a } else { b };
        weights.push(src.weight(l).clone());
        biases.push(src.bias(l).to_vec());
    }
    Mlp::from_parts(a.layer_sizes().to_vec(), a.activation(), weights, biases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use mlake_tensor::{init::Init, Pcg64};

    fn parents() -> (Mlp, Mlp) {
        let mut r1 = Pcg64::new(1);
        let mut r2 = Pcg64::new(2);
        let a = Mlp::new(vec![3, 6, 4, 2], Activation::Relu, Init::HeNormal, &mut r1).unwrap();
        let b = Mlp::new(vec![3, 6, 4, 2], Activation::Relu, Init::HeNormal, &mut r2).unwrap();
        (a, b)
    }

    #[test]
    fn child_mixes_parent_layers() {
        let (a, b) = parents();
        let child = stitch_mlp(&a, &b, 2).unwrap();
        assert_eq!(child.weight(0), a.weight(0));
        assert_eq!(child.weight(1), a.weight(1));
        assert_eq!(child.weight(2), b.weight(2));
        assert_eq!(child.bias(2), b.bias(2));
        assert_eq!(child.architecture(), a.architecture());
    }

    #[test]
    fn cut_bounds_enforced() {
        let (a, b) = parents();
        assert!(stitch_mlp(&a, &b, 0).is_err());
        assert!(stitch_mlp(&a, &b, 3).is_err());
        assert!(stitch_mlp(&a, &b, 1).is_ok());
    }

    #[test]
    fn incompatible_architectures_rejected() {
        let (a, _) = parents();
        let mut rng = Pcg64::new(3);
        let other = Mlp::new(vec![3, 5, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        assert!(stitch_mlp(&a, &other, 1).is_err());
        let diff_act =
            Mlp::new(vec![3, 6, 4, 2], Activation::Tanh, Init::HeNormal, &mut rng).unwrap();
        assert!(stitch_mlp(&a, &diff_act, 1).is_err());
    }

    #[test]
    fn stitching_same_parent_is_identity() {
        let (a, _) = parents();
        let child = stitch_mlp(&a, &a, 1).unwrap();
        assert_eq!(child, a);
    }
}
