//! Low-Rank Adaptation (LoRA, Hu et al. 2022) for MLPs.
//!
//! LoRA freezes the base weights and learns a rank-`r` update
//! `ΔW = (α/r) · B A` on one layer; merging produces a child whose weight
//! delta on that layer has rank ≤ `r` and whose other layers are bitwise
//! identical to the parent — the signature `mlake-versioning` detects.

use crate::data::LabeledData;
use crate::grad::backprop;
use crate::loss::Loss;
use crate::mlp::Mlp;
use mlake_tensor::{init::Init, Matrix, Pcg64, Seed, TensorError};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a LoRA run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoraConfig {
    /// Which weight layer carries the adapter.
    pub layer: usize,
    /// Adapter rank.
    pub rank: usize,
    /// Scaling numerator; the effective update is `(alpha / rank) · B A`.
    pub alpha: f32,
    /// Adapter learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Shuffle/init seed.
    pub seed: u64,
}

impl Default for LoraConfig {
    fn default() -> Self {
        LoraConfig {
            layer: 0,
            rank: 2,
            alpha: 2.0,
            lr: 0.1,
            epochs: 20,
            seed: 0,
        }
    }
}

/// Per-step gradient-norm ceiling for adapter updates.
const GRAD_CLIP: f32 = 5.0;

/// A trained adapter pair, storable separately from the base model
/// (parameter-efficient sharing, as on model hubs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraAdapter {
    /// Target layer.
    pub layer: usize,
    /// `B`: `(fan_out, rank)`.
    pub b: Matrix,
    /// `A`: `(rank, fan_in)`.
    pub a: Matrix,
    /// Effective scale `alpha / rank`.
    pub scale: f32,
}

impl LoraAdapter {
    /// The dense update `scale · B A` this adapter represents.
    pub fn delta(&self) -> crate::Result<Matrix> {
        Ok(self.b.matmul(&self.a)?.scale(self.scale))
    }

    /// Merges the adapter into a copy of `base`.
    pub fn merge_into(&self, base: &Mlp) -> crate::Result<Mlp> {
        if self.layer >= base.num_layers() {
            return Err(TensorError::OutOfBounds {
                index: (self.layer, 0),
                shape: (base.num_layers(), 0),
            });
        }
        let mut child = base.clone();
        let delta = self.delta()?;
        child.weight_mut(self.layer).axpy(1.0, &delta)?;
        Ok(child)
    }

    /// Number of trainable parameters in the adapter.
    pub fn num_params(&self) -> usize {
        self.a.len() + self.b.len()
    }
}

/// Trains a LoRA adapter on `data` against a *frozen* copy of `base`, then
/// merges it. Returns `(child, adapter)`.
///
/// Gradient derivation: with `W_eff = W + s·B A`, backprop through the model
/// at `W_eff` yields `∂L/∂W_eff = G`; then `∂L/∂B = s·G Aᵀ` and
/// `∂L/∂A = s·Bᵀ G`. We realise this by materialising `W_eff` each step
/// (layers are small) and reading `G` for the target layer.
pub fn lora_finetune(
    base: &Mlp,
    data: &LabeledData,
    config: &LoraConfig,
) -> crate::Result<(Mlp, LoraAdapter)> {
    if config.layer >= base.num_layers() {
        return Err(TensorError::OutOfBounds {
            index: (config.layer, 0),
            shape: (base.num_layers(), 0),
        });
    }
    if config.rank == 0 {
        return Err(TensorError::Empty("lora rank"));
    }
    let (fan_out, fan_in) = base.weight(config.layer).shape();
    let rank = config.rank.min(fan_in).min(fan_out);
    let scale = config.alpha / rank as f32;
    let seed = Seed::new(config.seed);
    let mut init_rng: Pcg64 = seed.derive("lora-init").rng();
    // Standard LoRA init: A ~ N(0, σ), B = 0 so the adapter starts as a no-op.
    let mut a = Init::normal(0.1).matrix(rank, fan_in, &mut init_rng);
    let mut b = Matrix::zeros(fan_out, rank);
    let mut shuffle_rng: Pcg64 = seed.derive("lora-shuffle").rng();

    let mut work = base.clone();
    for _ in 0..config.epochs {
        let order = data.epoch_order(&mut shuffle_rng);
        for &i in &order {
            // W_eff = W + s·B A.
            let delta = b.matmul(&a)?.scale(scale);
            let mut w_eff = base.weight(config.layer).clone();
            w_eff.axpy(1.0, &delta)?;
            *work.weight_mut(config.layer) = w_eff;

            let (_, grads) = backprop(&work, data.x.row(i), data.y[i], Loss::CrossEntropy)?;
            let g = &grads.d_weights[config.layer];
            // ∂L/∂B = s · G Aᵀ ; ∂L/∂A = s · Bᵀ G.
            let mut db = g.matmul(&a.transpose())?.scale(scale);
            let mut da = b.transpose().matmul(g)?.scale(scale);
            // Per-step norm clipping: the multiplicative B·A parameterisation
            // can blow up under per-sample SGD; clipping keeps every adapter
            // run finite without touching well-behaved ones.
            for m in [&mut db, &mut da] {
                let n = m.frobenius_norm();
                if n > GRAD_CLIP {
                    m.scale_mut(GRAD_CLIP / n);
                }
            }
            b.axpy(-config.lr, &db)?;
            a.axpy(-config.lr, &da)?;
        }
    }
    let adapter = LoraAdapter {
        layer: config.layer,
        b,
        a,
        scale,
    };
    let child = adapter.merge_into(base)?;
    Ok((child, adapter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::train::{accuracy, train_mlp, TrainConfig};
    use mlake_tensor::linalg;

    fn blobs(n: usize, seed: u64, flip: bool) -> LabeledData {
        let mut rng = Seed::new(seed).derive("lora-blobs").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            rows.push(vec![c + rng.normal() * 0.4, c + rng.normal() * 0.4]);
            labels.push(if flip { 1 - class } else { class });
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    fn trained_base() -> Mlp {
        let mut rng = Seed::new(11).derive("init").rng();
        let mut base =
            Mlp::new(vec![2, 8, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap();
        train_mlp(&mut base, &blobs(128, 1, false), &TrainConfig { epochs: 20, ..Default::default() })
            .unwrap();
        base
    }

    #[test]
    fn lora_adapts_to_flipped_labels() {
        let base = trained_base();
        let target = blobs(128, 9, true);
        let before = accuracy(&base, &target).unwrap();
        let (child, adapter) = lora_finetune(
            &base,
            &target,
            &LoraConfig {
                layer: 1,
                rank: 2,
                epochs: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let after = accuracy(&child, &target).unwrap();
        assert!(after > before + 0.2, "{after} !> {before}");
        assert!(adapter.num_params() < base.num_params());
    }

    #[test]
    fn delta_is_low_rank_and_confined() {
        let base = trained_base();
        let (child, adapter) = lora_finetune(
            &base,
            &blobs(64, 3, true),
            &LoraConfig {
                layer: 0,
                rank: 1,
                epochs: 10,
                ..Default::default()
            },
        )
        .unwrap();
        // Untouched layers are bitwise identical.
        assert_eq!(base.weight(1), child.weight(1));
        assert_eq!(base.bias(0), child.bias(0));
        // Target layer delta has rank <= 1.
        let delta = child.weight(0).sub(base.weight(0)).unwrap();
        let rank = linalg::effective_rank(&delta, 0.05).unwrap();
        assert!(rank <= 1, "rank {rank}");
        // Adapter delta equals the realised delta.
        let ad = adapter.delta().unwrap();
        for (x, y) in ad.as_slice().iter().zip(delta.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn config_validation() {
        let base = trained_base();
        let data = blobs(16, 5, false);
        assert!(lora_finetune(&base, &data, &LoraConfig { layer: 7, ..Default::default() }).is_err());
        assert!(lora_finetune(&base, &data, &LoraConfig { rank: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn merge_into_rejects_bad_layer() {
        let base = trained_base();
        let adapter = LoraAdapter {
            layer: 9,
            b: Matrix::zeros(2, 1),
            a: Matrix::zeros(1, 2),
            scale: 1.0,
        };
        assert!(adapter.merge_into(&base).is_err());
    }

    #[test]
    fn zero_adapter_is_identity_merge() {
        let base = trained_base();
        let adapter = LoraAdapter {
            layer: 0,
            b: Matrix::zeros(8, 2),
            a: Matrix::zeros(2, 2),
            scale: 1.0,
        };
        let child = adapter.merge_into(&base).unwrap();
        assert_eq!(base, child);
    }
}
