//! Architecture descriptors — the paper's `f*`.
//!
//! An [`Architecture`] fully determines the *shape* of a model's parameter
//! vector without fixing its values; two models are architecture-compatible
//! (comparable weight-by-weight, stitchable, LoRA-transferable) exactly when
//! their descriptors are equal. The [`Architecture::signature`] string is the
//! stable identifier stored in model cards and registry metadata.

use crate::activation::Activation;
use serde::{Deserialize, Serialize};

/// The function family `f*` of a model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Multi-layer perceptron: `layer_sizes` includes input and output, so
    /// `[d, h, c]` is a one-hidden-layer network.
    Mlp {
        /// Sizes of every layer, input first, output (class logits) last.
        layer_sizes: Vec<usize>,
        /// Hidden-layer activation (output layer is always linear logits).
        activation: Activation,
    },
    /// Count-based n-gram language model over a small token vocabulary.
    NgramLm {
        /// Vocabulary size.
        vocab: usize,
        /// Context length + 1, i.e. `order = 2` is a bigram model.
        order: usize,
    },
}

impl Architecture {
    /// Convenience constructor for an MLP.
    pub fn mlp(layer_sizes: Vec<usize>, activation: Activation) -> Architecture {
        Architecture::Mlp {
            layer_sizes,
            activation,
        }
    }

    /// Convenience constructor for an n-gram LM.
    pub fn ngram(vocab: usize, order: usize) -> Architecture {
        Architecture::NgramLm { vocab, order }
    }

    /// Input dimensionality (feature count or vocabulary size).
    pub fn input_dim(&self) -> usize {
        match self {
            Architecture::Mlp { layer_sizes, .. } => layer_sizes.first().copied().unwrap_or(0),
            Architecture::NgramLm { vocab, .. } => *vocab,
        }
    }

    /// Output dimensionality (class count or vocabulary size).
    pub fn output_dim(&self) -> usize {
        match self {
            Architecture::Mlp { layer_sizes, .. } => layer_sizes.last().copied().unwrap_or(0),
            Architecture::NgramLm { vocab, .. } => *vocab,
        }
    }

    /// Total number of scalar parameters a model of this architecture holds.
    pub fn num_params(&self) -> usize {
        match self {
            Architecture::Mlp { layer_sizes, .. } => layer_sizes
                .windows(2)
                .map(|w| w[0] * w[1] + w[1])
                .sum(),
            Architecture::NgramLm { vocab, order } => {
                vocab.pow((*order - 1) as u32) * vocab
            }
        }
    }

    /// Stable textual signature, e.g. `mlp:8-32-4:relu` or `ngram:32:2`.
    pub fn signature(&self) -> String {
        match self {
            Architecture::Mlp {
                layer_sizes,
                activation,
            } => {
                let sizes: Vec<String> = layer_sizes.iter().map(|s| s.to_string()).collect();
                format!("mlp:{}:{}", sizes.join("-"), activation.name())
            }
            Architecture::NgramLm { vocab, order } => format!("ngram:{vocab}:{order}"),
        }
    }

    /// Parses a [`signature`](Self::signature) string.
    pub fn parse_signature(s: &str) -> Option<Architecture> {
        let mut parts = s.split(':');
        match parts.next()? {
            "mlp" => {
                let sizes: Option<Vec<usize>> =
                    parts.next()?.split('-').map(|t| t.parse().ok()).collect();
                let activation = Activation::parse(parts.next()?)?;
                Some(Architecture::Mlp {
                    layer_sizes: sizes?,
                    activation,
                })
            }
            "ngram" => {
                let vocab = parts.next()?.parse().ok()?;
                let order = parts.next()?.parse().ok()?;
                Some(Architecture::NgramLm { vocab, order })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_param_count() {
        // 8 -> 32 -> 4: (8*32 + 32) + (32*4 + 4) = 288 + 132 = 420
        let a = Architecture::mlp(vec![8, 32, 4], Activation::Relu);
        assert_eq!(a.num_params(), 420);
        assert_eq!(a.input_dim(), 8);
        assert_eq!(a.output_dim(), 4);
    }

    #[test]
    fn ngram_param_count() {
        let a = Architecture::ngram(16, 2);
        assert_eq!(a.num_params(), 16 * 16);
        let tri = Architecture::ngram(8, 3);
        assert_eq!(tri.num_params(), 64 * 8);
    }

    #[test]
    fn signature_round_trip() {
        let archs = [
            Architecture::mlp(vec![4, 16, 3], Activation::Tanh),
            Architecture::ngram(32, 2),
        ];
        for a in archs {
            let sig = a.signature();
            assert_eq!(Architecture::parse_signature(&sig), Some(a));
        }
        assert_eq!(Architecture::parse_signature("cnn:bogus"), None);
        assert_eq!(Architecture::parse_signature("mlp:1-x:relu"), None);
    }

    #[test]
    fn signatures_are_distinct() {
        let a = Architecture::mlp(vec![4, 8, 2], Activation::Relu).signature();
        let b = Architecture::mlp(vec![4, 8, 2], Activation::Tanh).signature();
        let c = Architecture::mlp(vec![4, 9, 2], Activation::Relu).signature();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
