//! Activation functions with analytic derivatives for hand-coded backprop.

use serde::{Deserialize, Serialize};

/// Supported element-wise activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Pass-through (used on the output layer — losses own the final
    /// non-linearity, e.g. softmax inside cross-entropy).
    Identity,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *pre-activation* input `x`.
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies in place over a slice.
    pub fn apply_slice(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Short stable name used in architecture signatures.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Identity => "id",
        }
    }

    /// Parses the [`name`](Self::name) form back.
    pub fn parse(s: &str) -> Option<Activation> {
        match s {
            "relu" => Some(Activation::Relu),
            "tanh" => Some(Activation::Tanh),
            "sigmoid" => Some(Activation::Sigmoid),
            "id" => Some(Activation::Identity),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply(10.0) > 0.999);
        assert!(s.apply(-10.0) < 0.001);
        assert!((s.derivative(0.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Identity] {
            for &x in &[-1.7f32, -0.3, 0.4, 2.1] {
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let an = act.derivative(x);
                assert!(
                    (fd - an).abs() < 1e-2,
                    "{:?} at {x}: fd {fd} vs analytic {an}",
                    act
                );
            }
        }
    }

    #[test]
    fn name_round_trip() {
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Identity] {
            assert_eq!(Activation::parse(act.name()), Some(act));
        }
        assert_eq!(Activation::parse("swish"), None);
    }

    #[test]
    fn apply_slice_works() {
        let mut xs = vec![-1.0, 0.5];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, vec![0.0, 0.5]);
    }
}
