//! The training algorithm `A`: seeded mini-batch training with optional
//! checkpointing (checkpoints feed TracIn-style attribution).

use crate::data::LabeledData;
use crate::grad::batch_backprop;
use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optim::OptimizerSpec;
use mlake_tensor::{Pcg64, Seed};
use serde::{Deserialize, Serialize};

/// Declarative description of a training run. Together with the dataset id
/// this is exactly the *history* `(D, A)` of the resulting model, and is what
/// a truthful model card records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimiser.
    pub optimizer: OptimizerSpec,
    /// Loss function.
    pub loss: Loss,
    /// Root seed for shuffling (initialisation is seeded separately by the
    /// caller so that "same data, different init" populations exist).
    pub seed: u64,
    /// Keep a parameter snapshot every `n` epochs (0 disables). Snapshots
    /// are flattened parameter vectors in [`Mlp::flat_params`] layout.
    pub checkpoint_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            optimizer: OptimizerSpec::sgd(0.1),
            loss: Loss::CrossEntropy,
            seed: 0,
            checkpoint_every: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss at the end of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Flattened parameter snapshots (see [`TrainConfig::checkpoint_every`]).
    pub checkpoints: Vec<Vec<f32>>,
    /// Number of gradient steps performed.
    pub steps: u64,
}

impl TrainReport {
    /// Final training loss (NaN-free; 0 when no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(0.0)
    }
}

/// Trains `model` in place on `data` according to `config`.
pub fn train_mlp(model: &mut Mlp, data: &LabeledData, config: &TrainConfig) -> crate::Result<TrainReport> {
    let mut opt = config.optimizer.build(model);
    let mut rng: Pcg64 = Seed::new(config.seed).derive("train-shuffle").rng();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut checkpoints = Vec::new();
    let batch = config.batch_size.max(1);

    for epoch in 0..config.epochs {
        let order = data.epoch_order(&mut rng);
        let mut loss_acc = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let sub = data.select(chunk)?;
            let (loss, grads) = batch_backprop(model, &sub.x, &sub.y, config.loss)?;
            opt.apply(model, &grads)?;
            loss_acc += f64::from(loss);
            batches += 1;
        }
        epoch_losses.push((loss_acc / batches.max(1) as f64) as f32);
        if config.checkpoint_every > 0 && (epoch + 1) % config.checkpoint_every == 0 {
            checkpoints.push(model.flat_params());
        }
    }
    Ok(TrainReport {
        epoch_losses,
        checkpoints,
        steps: opt.steps(),
    })
}

/// Classification accuracy of `model` on `data`.
pub fn accuracy(model: &Mlp, data: &LabeledData) -> crate::Result<f32> {
    if data.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (row, &t) in data.x.rows_iter().zip(&data.y) {
        if model.predict_class(row)? == t {
            correct += 1;
        }
    }
    Ok(correct as f32 / data.len() as f32)
}

/// Mean loss of `model` on `data` under `loss`.
pub fn mean_loss(model: &Mlp, data: &LabeledData, loss: Loss) -> crate::Result<f32> {
    if data.is_empty() {
        return Ok(0.0);
    }
    let mut acc = 0.0f64;
    for (row, &t) in data.x.rows_iter().zip(&data.y) {
        acc += f64::from(loss.value(&model.forward(row)?, t));
    }
    Ok((acc / data.len() as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use mlake_tensor::{init::Init, Matrix};

    /// Two well-separated Gaussian blobs.
    fn blobs(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("blobs").rng();
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            rows.push(vec![
                center + rng.normal() * 0.5,
                center + rng.normal() * 0.5,
            ]);
            labels.push(class);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn training_learns_separable_blobs() {
        let data = blobs(200, 1);
        let mut rng = Seed::new(2).derive("init").rng();
        let mut model =
            Mlp::new(vec![2, 8, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        let config = TrainConfig {
            epochs: 25,
            batch_size: 16,
            optimizer: OptimizerSpec::sgd(0.2),
            ..TrainConfig::default()
        };
        let report = train_mlp(&mut model, &data, &config).unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
        let acc = accuracy(&model, &data).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = blobs(64, 3);
        let make = || {
            let mut rng = Seed::new(9).derive("init").rng();
            Mlp::new(vec![2, 4, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap()
        };
        let config = TrainConfig {
            epochs: 5,
            seed: 77,
            ..TrainConfig::default()
        };
        let mut a = make();
        let mut b = make();
        train_mlp(&mut a, &data, &config).unwrap();
        train_mlp(&mut b, &data, &config).unwrap();
        assert_eq!(a.flat_params(), b.flat_params());
    }

    #[test]
    fn different_seed_different_model() {
        let data = blobs(64, 3);
        let make = || {
            let mut rng = Seed::new(9).derive("init").rng();
            Mlp::new(vec![2, 4, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap()
        };
        let mut a = make();
        let mut b = make();
        train_mlp(&mut a, &data, &TrainConfig { epochs: 5, seed: 1, ..Default::default() }).unwrap();
        train_mlp(&mut b, &data, &TrainConfig { epochs: 5, seed: 2, ..Default::default() }).unwrap();
        assert_ne!(a.flat_params(), b.flat_params());
    }

    #[test]
    fn checkpoints_are_collected() {
        let data = blobs(32, 4);
        let mut rng = Seed::new(5).derive("init").rng();
        let mut model =
            Mlp::new(vec![2, 4, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap();
        let config = TrainConfig {
            epochs: 6,
            checkpoint_every: 2,
            ..TrainConfig::default()
        };
        let report = train_mlp(&mut model, &data, &config).unwrap();
        assert_eq!(report.checkpoints.len(), 3);
        assert_eq!(report.checkpoints[0].len(), model.num_params());
        // Final checkpoint equals final parameters.
        assert_eq!(report.checkpoints[2], model.flat_params());
    }

    #[test]
    fn metrics_on_empty_data() {
        let mut rng = Seed::new(5).derive("init").rng();
        let model =
            Mlp::new(vec![2, 4, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap();
        let empty = LabeledData::new(Matrix::zeros(0, 2), vec![]).unwrap();
        assert_eq!(accuracy(&model, &empty).unwrap(), 0.0);
        assert_eq!(mean_loss(&model, &empty, Loss::CrossEntropy).unwrap(), 0.0);
    }

    #[test]
    fn train_report_final_loss_empty() {
        let r = TrainReport {
            epoch_losses: vec![],
            checkpoints: vec![],
            steps: 0,
        };
        assert_eq!(r.final_loss(), 0.0);
    }
}
