//! Property-based invariants for models, losses and transforms.

use mlake_nn::transform::{prune::prune_mlp, quantize::quantize_mlp, stitch::stitch_mlp};
use mlake_nn::{Activation, Loss, Mlp, Model, NgramLm};
use mlake_tensor::{init::Init, vector, Pcg64};
use proptest::prelude::*;

fn arb_mlp() -> impl Strategy<Value = Mlp> {
    (1usize..4, 2usize..6, 2usize..4, any::<u64>()).prop_map(|(din, hidden, classes, seed)| {
        let mut rng = Pcg64::new(seed);
        Mlp::new(
            vec![din, hidden, classes],
            Activation::Tanh,
            Init::XavierNormal,
            &mut rng,
        )
        .unwrap()
    })
}

proptest! {
    #[test]
    fn flat_params_round_trip(m in arb_mlp()) {
        let params = m.flat_params();
        prop_assert_eq!(params.len(), m.num_params());
        let mut m2 = m.clone();
        m2.set_flat_params(&params).unwrap();
        prop_assert_eq!(m, m2);
    }

    #[test]
    fn predict_probs_is_distribution(m in arb_mlp(), x in proptest::collection::vec(-3.0f32..3.0, 1..4)) {
        if x.len() == m.layer_sizes()[0] {
            let p = m.predict_probs(&x).unwrap();
            let total: f32 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn loss_nonnegative_ce(logits in proptest::collection::vec(-20.0f32..20.0, 2..6)) {
        for target in 0..logits.len() {
            prop_assert!(Loss::CrossEntropy.value(&logits, target) >= -1e-5);
            prop_assert!(Loss::MseOneHot.value(&logits, target) >= 0.0);
        }
    }

    #[test]
    fn ce_gradient_sums_to_zero(logits in proptest::collection::vec(-10.0f32..10.0, 2..6)) {
        // Softmax CE gradient components sum to zero (shift invariance).
        let g = Loss::CrossEntropy.grad(&logits, 0);
        let total: f32 = g.iter().sum();
        prop_assert!(total.abs() < 1e-4, "sum {total}");
    }

    #[test]
    fn prune_is_monotone_in_fraction(m in arb_mlp(), f1 in 0.0f32..0.5, f2 in 0.5f32..1.0) {
        let zeros = |m: &Mlp| -> usize {
            (0..m.num_layers())
                .flat_map(|l| m.weight(l).as_slice().iter())
                .filter(|&&w| w == 0.0)
                .count()
        };
        let p1 = prune_mlp(&m, f1).unwrap();
        let p2 = prune_mlp(&m, f2).unwrap();
        prop_assert!(zeros(&p2) >= zeros(&p1));
        // Pruning is idempotent at the same fraction.
        let p1b = prune_mlp(&p1, f1).unwrap();
        prop_assert!(zeros(&p1b) >= zeros(&p1));
    }

    #[test]
    fn quantize_is_idempotent(m in arb_mlp(), bits in 3u32..9) {
        let q1 = quantize_mlp(&m, bits).unwrap();
        let q2 = quantize_mlp(&q1, bits).unwrap();
        for (a, b) in q1.flat_params().iter().zip(q2.flat_params()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn stitch_cut_boundaries(a in arb_mlp(), seed in any::<u64>()) {
        let mut rng = Pcg64::new(seed);
        let b = Mlp::new(
            a.layer_sizes().to_vec(),
            a.activation(),
            Init::XavierNormal,
            &mut rng,
        )
        .unwrap();
        for cut in 1..a.num_layers() {
            let child = stitch_mlp(&a, &b, cut).unwrap();
            for l in 0..a.num_layers() {
                let src = if l < cut { &a } else { &b };
                prop_assert_eq!(child.weight(l), src.weight(l));
            }
        }
    }

    #[test]
    fn ngram_dist_normalised_after_updates(tokens in proptest::collection::vec(0usize..6, 1..100), w in 0.5f64..4.0) {
        let mut lm = NgramLm::new(6, 2, 0.1).unwrap();
        lm.add_counts(&tokens, w).unwrap();
        for ctx in 0..6 {
            let d = lm.next_dist(&[ctx]).unwrap();
            let total: f32 = d.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
        // Perplexity of the training text is finite and >= 1.
        let ppl = lm.perplexity(&tokens).unwrap();
        prop_assert!(ppl.is_finite() && ppl >= 0.99, "ppl {ppl}");
    }

    #[test]
    fn artifact_codec_round_trips(m in arb_mlp()) {
        let model = Model::Mlp(m);
        let bytes = model.to_bytes().unwrap();
        let back = Model::from_bytes(&bytes).unwrap();
        prop_assert_eq!(model, back);
    }

    #[test]
    fn lm_edit_hits_requested_probability(ctx in 0usize..6, tok in 0usize..6, p in 0.1f32..0.9) {
        let mut lm = NgramLm::new(6, 2, 0.1).unwrap();
        // Cover two distinct cycles so every context row carries mass on at
        // least two tokens; otherwise Laplace smoothing bounds how far an
        // edit can push a probability *down* (documented in `NgramLm::edit`).
        lm.add_counts(&(0..60).map(|i| i % 6).collect::<Vec<_>>(), 1.0).unwrap();
        lm.add_counts(&(0..60).map(|i| (i * 5) % 6).collect::<Vec<_>>(), 1.0).unwrap();
        lm.edit(&[ctx], tok, p).unwrap();
        let got = lm.prob(&[ctx], tok).unwrap();
        prop_assert!((got - p).abs() < 0.02, "requested {p}, got {got}");
    }

    #[test]
    fn behavioral_distance_is_metric_like(m in arb_mlp()) {
        // d(m, m) = 0 and d >= 0 against a perturbed copy.
        let probes = mlake_tensor::Matrix::from_fn(8, m.layer_sizes()[0], |r, c| {
            ((r * 3 + c) as f32).sin()
        });
        let zero = mlake_nn::transform::distill::behavioral_distance(&m, &m, &probes).unwrap();
        prop_assert!(zero.abs() < 1e-6);
        let mut perturbed = m.clone();
        let mut params = perturbed.flat_params();
        for v in &mut params {
            *v += 0.5;
        }
        perturbed.set_flat_params(&params).unwrap();
        let d = mlake_nn::transform::distill::behavioral_distance(&m, &perturbed, &probes).unwrap();
        prop_assert!(d >= 0.0);
        let _ = vector::l2_norm(&[0.0]); // keep import used
    }
}
