//! Wire protocol for the lake service (DESIGN.md §14).
//!
//! `mlake-server` exposes the [`mlake_core::ModelLake`] facade over
//! HTTP/1.1; this crate defines everything both ends of that wire agree
//! on, with no networking of its own:
//!
//! * [`ApiRequest`] / [`ApiResponse`] — one variant per facade operation,
//!   serialized as JSON through the vendored serde shim's standard
//!   external enum representation (`{"Variant": {..fields..}}`, bare
//!   `"Variant"` for unit variants).
//! * [`WireRef`] — the owned, wire-stable form of
//!   [`mlake_core::ModelRef`]: a model is addressed by lake-local id,
//!   unique name, or hex content digest, and every read route accepts any
//!   of the three.
//! * [`ApiError`] + [`status_for`] — the canonical mapping from the
//!   facade's [`ErrorKind`] taxonomy to HTTP status codes. Servers
//!   dispatch on `LakeError::kind()`, never on error strings.
//!
//! The payload types themselves (`Model`, `ModelCard`, `Citation`,
//! `AuditReport`, `QueryHit`, `MetricsSnapshot`, `LakeConfig`) are the
//! facade's own types — the protocol cannot drift from the library
//! because it *is* the library's types on the wire. `LakeConfig` is the
//! one type whose invariants JSON cannot express; [`decode_config`]
//! funnels every deserialized config back through the builder's
//! validation.

use mlake_cards::audit::AuditReport;
use mlake_cards::{Citation, ModelCard};

// Re-exported so wire clients (the load generator, external tools) can
// build typed requests without depending on the card crate directly.
pub use mlake_cards::ModelCard as WireModelCard;
use mlake_core::hash::Digest;
use mlake_core::{ErrorKind, GcReport, LakeConfig, LakeError, ModelId, ModelRef};
use mlake_fingerprint::FingerprintKind;
use mlake_nn::Model;
use mlake_obs::MetricsSnapshot;
use mlake_query::QueryHit;

/// Owned model reference as it travels on the wire. The borrowed
/// [`ModelRef`] stays the in-process API; `WireRef` is its serializable
/// twin, convertible in both directions ([`WireRef::from`] /
/// [`WireRef::as_model_ref`]).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WireRef {
    /// Lake-local identifier.
    Id(u64),
    /// Unique registered name.
    Name(String),
    /// Hex-encoded content digest (64 lowercase hex chars).
    Digest(String),
}

impl WireRef {
    /// Borrowed [`ModelRef`] view for the facade's `impl Into<ModelRef>`
    /// entry points. A `Digest` ref parses its hex first; a malformed
    /// digest is the caller's input error.
    pub fn as_model_ref<'a>(
        &'a self,
        scratch: &'a mut Option<Digest>,
    ) -> Result<ModelRef<'a>, LakeError> {
        match self {
            WireRef::Id(id) => Ok(ModelRef::Id(ModelId(*id))),
            WireRef::Name(name) => Ok(ModelRef::Name(name)),
            WireRef::Digest(hex) => {
                let digest = Digest::from_hex(hex).ok_or_else(|| {
                    LakeError::Config(format!("malformed digest ref: '{hex}'"))
                })?;
                Ok(ModelRef::Digest(scratch.insert(digest)))
            }
        }
    }
}

impl From<ModelRef<'_>> for WireRef {
    fn from(r: ModelRef<'_>) -> WireRef {
        match r {
            ModelRef::Id(id) => WireRef::Id(id.0),
            ModelRef::Name(n) => WireRef::Name(n.to_string()),
            ModelRef::Digest(d) => WireRef::Digest(d.to_hex()),
        }
    }
}

impl From<ModelId> for WireRef {
    fn from(id: ModelId) -> WireRef {
        WireRef::Id(id.0)
    }
}

impl std::fmt::Display for WireRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireRef::Id(id) => write!(f, "{}", ModelId(*id)),
            WireRef::Name(n) => f.write_str(n),
            WireRef::Digest(d) => write!(f, "sha256:{}", &d[..d.len().min(12)]),
        }
    }
}

/// One request to the lake service. Every variant maps 1:1 onto a typed
/// [`mlake_core::ModelLake`] facade call — the server contains no lake
/// logic of its own.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ApiRequest {
    /// `ModelLake::ingest_model`: store, fingerprint and index a model.
    Ingest {
        /// Unique model name.
        name: String,
        /// The artifact itself.
        model: Model,
        /// Card to install (`None` installs a skeleton).
        #[serde(default)]
        card: Option<ModelCard>,
    },
    /// `ModelLake::similar`: content-based related-model search.
    Similar {
        /// Query model.
        model: WireRef,
        /// Fingerprint viewpoint.
        kind: FingerprintKind,
        /// Result count.
        k: usize,
    },
    /// `ModelLake::text_search`: BM25 full-text search over card text.
    TextSearch {
        /// Free-text query.
        query: String,
        /// Result count.
        k: usize,
    },
    /// `ModelLake::hybrid_search`: reciprocal-rank fusion of the BM25
    /// text ranking with the vector ranking around an anchor model.
    HybridSearch {
        /// Free-text query.
        query: String,
        /// Anchor model for the vector branch.
        model: WireRef,
        /// Fingerprint viewpoint of the vector branch.
        kind: FingerprintKind,
        /// Result count.
        k: usize,
    },
    /// `ModelLake::prepare(..).run()`: execute an MLQL query.
    Query {
        /// MLQL text.
        mlql: String,
    },
    /// `ModelLake::prepare(..).explain()`: plan without executing.
    Explain {
        /// MLQL text.
        mlql: String,
    },
    /// `ModelLake::resolve` + `entry`: canonicalize any ref to all three
    /// identities.
    Resolve {
        /// Any model identity.
        model: WireRef,
    },
    /// `ModelLake::cite`: graph-timestamped citation.
    Cite {
        /// Any model identity.
        model: WireRef,
    },
    /// `ModelLake::audit_model`: standard questionnaire audit.
    Audit {
        /// Any model identity.
        model: WireRef,
    },
    /// `ModelLake::update_card`: replace a model's card.
    UpdateCard {
        /// Any model identity.
        model: WireRef,
        /// Replacement card.
        card: ModelCard,
    },
    /// `ModelLake::model_names`: list registered models.
    ListModels,
    /// `ModelLake::sync`: flush group-commit-buffered WAL records.
    Sync,
    /// `ModelLake::gc`: collect unreachable blobs and segments.
    Gc,
    /// `mlake_obs::snapshot`: point-in-time metrics.
    Metrics,
}

impl ApiRequest {
    /// Stable label for spans/histograms (`http.<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            ApiRequest::Ingest { .. } => "ingest",
            ApiRequest::Similar { .. } => "similar",
            ApiRequest::TextSearch { .. } => "text_search",
            ApiRequest::HybridSearch { .. } => "hybrid_search",
            ApiRequest::Query { .. } => "query",
            ApiRequest::Explain { .. } => "explain",
            ApiRequest::Resolve { .. } => "resolve",
            ApiRequest::Cite { .. } => "cite",
            ApiRequest::Audit { .. } => "audit",
            ApiRequest::UpdateCard { .. } => "update_card",
            ApiRequest::ListModels => "list_models",
            ApiRequest::Sync => "sync",
            ApiRequest::Gc => "gc",
            ApiRequest::Metrics => "metrics",
        }
    }

    /// Whether this request mutates the lake (drives read/write mixes in
    /// `mlake-load` and write-loss accounting in the hammer test).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            ApiRequest::Ingest { .. }
                | ApiRequest::UpdateCard { .. }
                | ApiRequest::Sync
                | ApiRequest::Gc
        )
    }
}

/// One similarity hit on the wire.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimilarHit {
    /// Model id.
    pub id: u64,
    /// Similarity in `[0, 1]`-ish (1 − cosine distance).
    pub similarity: f32,
}

/// One relevance-ranked hit on the wire (text or hybrid search). The
/// score is a BM25 value for text search and RRF mass for hybrid —
/// comparable within one response, not across searches.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScoredHit {
    /// Model id.
    pub id: u64,
    /// Relevance score, descending within the response.
    pub score: f32,
}

/// Success payloads, one variant per [`ApiRequest`] variant.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ApiResponse {
    /// Ingest succeeded; the write is durable per the lake's `SyncPolicy`.
    Ingested {
        /// Assigned lake-local id.
        id: u64,
    },
    /// Similarity results, best first.
    Similar {
        /// Hits.
        hits: Vec<SimilarHit>,
    },
    /// Text / hybrid search results, best first.
    Scored {
        /// Hits, score descending.
        hits: Vec<ScoredHit>,
    },
    /// MLQL result rows.
    Hits {
        /// Result rows.
        hits: Vec<QueryHit>,
    },
    /// MLQL plan description.
    Plan {
        /// One line per plan step.
        steps: Vec<String>,
    },
    /// All three identities of a resolved model.
    Resolved {
        /// Lake-local id.
        id: u64,
        /// Unique name.
        name: String,
        /// Hex content digest.
        digest: String,
    },
    /// A citation.
    Cited {
        /// The citation record.
        citation: Citation,
        /// Its stable key (`lake/model@vN`).
        key: String,
    },
    /// An audit report.
    Audited {
        /// The report.
        report: AuditReport,
    },
    /// Card replaced.
    CardUpdated,
    /// Registered model names in id order.
    Models {
        /// Names.
        names: Vec<String>,
    },
    /// WAL flushed to stable storage.
    Synced,
    /// Garbage collection finished; what it reclaimed.
    GcDone {
        /// Orphan/dead file counts and bytes reclaimed.
        report: GcReport,
    },
    /// Metrics snapshot (empty when `MLAKE_OBS=off`).
    Metrics {
        /// The snapshot.
        snapshot: MetricsSnapshot,
    },
    /// The operation failed; see [`ApiError`].
    Error(ApiError),
}

/// Wire form of a failed operation: the stable kind, the HTTP status the
/// server used, and a human-readable message (diagnostic only — clients
/// must dispatch on `kind`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ApiError {
    /// Stable error classification.
    pub kind: ErrorKind,
    /// HTTP status the mapping assigns this kind.
    pub status: u16,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Classifies a facade error for the wire.
    pub fn from_lake(e: &LakeError) -> ApiError {
        let kind = e.kind();
        ApiError {
            kind,
            status: status_for(kind),
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}): {}", self.kind, self.status, self.message)
    }
}

/// The documented [`ErrorKind`] → HTTP status mapping (DESIGN.md §14).
/// Exhaustive by construction: a new kind fails compilation here.
pub fn status_for(kind: ErrorKind) -> u16 {
    match kind {
        ErrorKind::NotFound => 404,
        ErrorKind::Conflict => 409,
        ErrorKind::InvalidInput => 400,
        ErrorKind::Corrupt => 500,
        ErrorKind::Unavailable => 503,
        ErrorKind::Internal => 500,
    }
}

/// Protocol-level failure: bytes that are not a valid request/response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Serializes a request to its JSON wire form.
pub fn encode_request(req: &ApiRequest) -> Vec<u8> {
    serde_json::to_vec(req).unwrap_or_default()
}

/// Parses a request from its JSON wire form.
pub fn decode_request(bytes: &[u8]) -> Result<ApiRequest, WireError> {
    serde_json::from_slice(bytes).map_err(|e| WireError(e.to_string()))
}

/// Serializes a response to its JSON wire form.
pub fn encode_response(resp: &ApiResponse) -> Vec<u8> {
    serde_json::to_vec(resp).unwrap_or_default()
}

/// Parses a response from its JSON wire form.
pub fn decode_response(bytes: &[u8]) -> Result<ApiResponse, WireError> {
    serde_json::from_slice(bytes).map_err(|e| WireError(e.to_string()))
}

/// Parses a [`LakeConfig`] from JSON **and re-runs the builder's
/// validation** — the only sanctioned way to deserialize a config.
/// Deserialization bypasses `LakeConfigBuilder::build`, so a raw
/// `from_slice` could smuggle in an invalid config (zero probes, 3
/// shards); this funnel makes that impossible.
pub fn decode_config(bytes: &[u8]) -> Result<LakeConfig, LakeError> {
    let config: LakeConfig = serde_json::from_slice(bytes)
        .map_err(|e| LakeError::Config(format!("config decode: {e}")))?;
    config.validated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            ApiRequest::Similar {
                model: WireRef::Name("legal-base".into()),
                kind: FingerprintKind::Hybrid,
                k: 5,
            },
            ApiRequest::TextSearch { query: "sentiment finance".into(), k: 10 },
            ApiRequest::HybridSearch {
                query: "legal tabular".into(),
                model: WireRef::Name("legal-base".into()),
                kind: FingerprintKind::Intrinsic,
                k: 5,
            },
            ApiRequest::Query { mlql: "FIND MODELS WHERE domain = 'legal'".into() },
            ApiRequest::Query { mlql: "FIND MODELS MATCHES 'rnn news' TOP 4".into() },
            ApiRequest::Resolve { model: WireRef::Id(3) },
            ApiRequest::Cite { model: WireRef::Digest("ab".repeat(32)) },
            ApiRequest::ListModels,
            ApiRequest::Sync,
            ApiRequest::Gc,
            ApiRequest::Metrics,
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).expect("decode");
            assert_eq!(req, back);
            assert!(!req.label().is_empty());
        }
    }

    #[test]
    fn error_mapping_is_stable() {
        let e = LakeError::NotFound { kind: "model", name: "ghost".into() };
        let api = ApiError::from_lake(&e);
        assert_eq!(api.kind, ErrorKind::NotFound);
        assert_eq!(api.status, 404);
        let resp = ApiResponse::Error(api);
        let back = decode_response(&encode_response(&resp)).expect("decode");
        assert_eq!(resp, back);
    }

    #[test]
    fn config_decode_is_builder_validated() {
        let good = LakeConfig::default();
        let bytes = serde_json::to_vec(&good).expect("encode");
        let back = decode_config(&bytes).expect("valid config decodes");
        assert_eq!(back, good);

        let mut bad = LakeConfig::default();
        bad.shards = 3; // not a power of two — builder rejects this
        let bytes = serde_json::to_vec(&bad).expect("encode");
        let err = decode_config(&bytes).expect_err("invalid config must not decode");
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }

    #[test]
    fn malformed_digest_is_invalid_input() {
        let r = WireRef::Digest("not-hex".into());
        let mut scratch = None;
        let err = r.as_model_ref(&mut scratch).expect_err("must reject");
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }
}
