//! Property tests pinning the wire protocol to the facade types: for any
//! value a client can legally hold, serialize → deserialize is identity.
//! This is what stops `mlake-proto` drifting from the library — the wire
//! representation *is* the library type, proven round-trip-stable here.

use mlake_core::{CompactionPolicy, ErrorKind, LakeConfig};
use mlake_index::{HnswConfig, Precision};
use mlake_proto::{
    decode_config, decode_request, decode_response, encode_request, encode_response, status_for,
    ApiError, ApiRequest, ApiResponse, ScoredHit, SimilarHit, WireRef,
};
use mlake_query::QueryHit;
use mlake_wal::SyncPolicy;
use proptest::prelude::*;
use proptest::prop_oneof;

fn wire_ref() -> impl Strategy<Value = WireRef> {
    prop_oneof![
        any::<u64>().prop_map(WireRef::Id),
        "[a-z][a-z0-9-]{0,20}".prop_map(WireRef::Name),
        "[0-9a-f]{64}".prop_map(WireRef::Digest),
    ]
}

fn precision() -> impl Strategy<Value = Precision> {
    prop_oneof![Just(Precision::F32), Just(Precision::Sq8Rescore)]
}

fn sync_policy() -> impl Strategy<Value = SyncPolicy> {
    prop_oneof![
        Just(SyncPolicy::Always),
        (1u32..256).prop_map(|every| SyncPolicy::Batch { every }),
    ]
}

fn hnsw_config() -> impl Strategy<Value = HnswConfig> {
    (2usize..32, 1usize..128, 1usize..128, any::<u64>(), precision(), 1usize..8).prop_map(
        |(m, ef_construction, ef_search, seed, precision, rescore_factor)| HnswConfig {
            m,
            ef_construction,
            ef_search,
            seed,
            precision,
            rescore_factor,
        },
    )
}

/// Only builder-valid configs: the wire funnel (`decode_config`) rejects
/// everything else by construction, so invalid configs are not part of
/// the round-trippable domain.
fn lake_config() -> impl Strategy<Value = LakeConfig> {
    let base = (
        "[a-z][a-z0-9-]{0,12}",
        any::<u64>(),
        1usize..256,
        (1usize..64, 1usize..32, 0.1f32..8.0),
        (1usize..32, 1usize..8, 2usize..64),
    );
    let rest = (
        hnsw_config(),
        0usize..512,
        sync_policy(),
        0u32..4,
        proptest::option::of((1u64..1_000_000, 0usize..8)),
        0u64..1_000_000_000,
    );
    (base, rest).prop_map(
        |(
            (name, seed, sketch_dim, probes, lm_probes),
            (hnsw, query_cache, wal_sync, shard_pow, compaction, resident_bytes),
        )| {
            LakeConfig {
                name,
                seed,
                sketch_dim,
                probes,
                lm_probes,
                hnsw,
                query_cache,
                wal_sync,
                shards: 1 << shard_pow,
                resident_bytes,
                compaction: compaction.map(|(wal_bytes, wal_segments)| CompactionPolicy {
                    // wal_bytes > 0 keeps the policy builder-valid even
                    // when wal_segments lands on 0.
                    wal_bytes,
                    wal_segments,
                }),
            }
        },
    )
}

fn query_hit() -> impl Strategy<Value = QueryHit> {
    (
        any::<u64>(),
        proptest::option::of(-1.0f32..1.0),
        proptest::option::of(0.0f32..50.0),
        proptest::option::of(-100.0f64..100.0),
    )
        .prop_map(|(id, similarity, text_score, score)| QueryHit {
            id,
            similarity,
            text_score,
            score,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn model_ref_round_trips(r in wire_ref()) {
        let req = ApiRequest::Resolve { model: r };
        let back = decode_request(&encode_request(&req)).expect("decode");
        prop_assert_eq!(req, back);
    }

    #[test]
    fn lake_config_round_trips_through_validated_decode(config in lake_config()) {
        let bytes = serde_json::to_vec(&config).expect("encode");
        let back = decode_config(&bytes).expect("builder-valid config decodes");
        prop_assert_eq!(back, config);
    }

    #[test]
    fn precision_and_sync_policy_round_trip(p in precision(), s in sync_policy()) {
        let p2: Precision = serde_json::from_slice(&serde_json::to_vec(&p).unwrap()).unwrap();
        prop_assert_eq!(p2, p);
        let s2: SyncPolicy = serde_json::from_slice(&serde_json::to_vec(&s).unwrap()).unwrap();
        prop_assert_eq!(s2, s);
    }

    #[test]
    fn query_results_round_trip(hits in proptest::collection::vec(query_hit(), 0..24)) {
        let resp = ApiResponse::Hits { hits };
        let back = decode_response(&encode_response(&resp)).expect("decode");
        prop_assert_eq!(resp, back);
    }

    #[test]
    fn similar_hits_round_trip(
        raw in proptest::collection::vec((any::<u64>(), 0.0f32..1.0), 0..16)
    ) {
        let hits = raw
            .into_iter()
            .map(|(id, similarity)| SimilarHit { id, similarity })
            .collect();
        let resp = ApiResponse::Similar { hits };
        let back = decode_response(&encode_response(&resp)).expect("decode");
        prop_assert_eq!(resp, back);
    }

    #[test]
    fn scored_hits_round_trip(
        raw in proptest::collection::vec((any::<u64>(), 0.0f32..50.0), 0..16)
    ) {
        let hits = raw
            .into_iter()
            .map(|(id, score)| ScoredHit { id, score })
            .collect();
        let resp = ApiResponse::Scored { hits };
        let back = decode_response(&encode_response(&resp)).expect("decode");
        prop_assert_eq!(resp, back);
    }
}

#[test]
fn every_error_kind_has_a_status_and_round_trips() {
    let kinds = [
        ErrorKind::NotFound,
        ErrorKind::Conflict,
        ErrorKind::InvalidInput,
        ErrorKind::Corrupt,
        ErrorKind::Unavailable,
        ErrorKind::Internal,
    ];
    for kind in kinds {
        let status = status_for(kind);
        assert!((400..600).contains(&status), "{kind}: {status}");
        let resp = ApiResponse::Error(ApiError {
            kind,
            status,
            message: format!("synthetic {kind}"),
        });
        let back = decode_response(&encode_response(&resp)).expect("decode");
        assert_eq!(resp, back);
    }
}
