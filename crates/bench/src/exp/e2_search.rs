//! E2 — Content-based model search (§3 Model Search; Example 1.1; Lu et
//! al.'s model-as-query generalised). Every lake model is used as a query;
//! retrieval quality is graded against lineage/domain ground truth for each
//! fingerprint kind versus keyword and random baselines.

use crate::table::{f3, Table};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, GroundTruth, LakeSpec};
use mlake_fingerprint::FingerprintKind;
use mlake_tensor::Pcg64;

/// Precision@k of one ranked list against a relevance oracle.
fn precision_at_k(ranked: &[usize], relevant: impl Fn(usize) -> bool, k: usize) -> f32 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked.iter().take(k).filter(|&&m| relevant(m)).count();
    hits as f32 / k.min(ranked.len()).max(1) as f32
}

/// Reciprocal rank of the first relevant item.
fn reciprocal_rank(ranked: &[usize], relevant: impl Fn(usize) -> bool) -> f32 {
    ranked
        .iter()
        .position(|&m| relevant(m))
        .map(|r| 1.0 / (r + 1) as f32)
        .unwrap_or(0.0)
}

struct SearchQuality {
    p5_family: f32,
    p5_domain: f32,
    mrr_family: f32,
}

fn grade(gt: &GroundTruth, rankings: &[(usize, Vec<usize>)]) -> SearchQuality {
    let mut p5f = 0.0f32;
    let mut p5d = 0.0f32;
    let mut mrr = 0.0f32;
    let mut counted = 0usize;
    for (q, ranked) in rankings {
        let fam = gt.models[*q].family;
        let family_size = gt.family_members(fam).len() - 1;
        if family_size == 0 {
            continue;
        }
        counted += 1;
        let by_family = |m: usize| gt.models[m].family == fam;
        let by_domain = |m: usize| gt.relevance(*q, m) >= 1;
        let k = 5.min(family_size.max(1));
        p5f += precision_at_k(ranked, by_family, k);
        p5d += precision_at_k(ranked, by_domain, 5);
        mrr += reciprocal_rank(ranked, by_family);
    }
    let n = counted.max(1) as f32;
    SearchQuality {
        p5_family: p5f / n,
        p5_domain: p5d / n,
        mrr_family: mrr / n,
    }
}

/// Runs E2.
pub fn run(quick: bool) -> Vec<Table> {
    let spec = if quick {
        LakeSpec::tiny(11)
    } else {
        LakeSpec::builder()
            .seed(11)
            .num_base_models(10)
            .derivations_per_base(5)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let lake = ModelLake::new(LakeConfig::builder().name("e2-lake").build().expect("valid config"));
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).expect("populate");
    let n = gt.models.len();

    let mut t = Table::new(
        format!("E2: model-as-query search over {n} models (top-5)"),
        &["method", "P@5 (lineage)", "P@5 (domain)", "MRR (lineage)"],
    );

    for kind in FingerprintKind::ALL {
        let mut rankings = Vec::with_capacity(n);
        for q in 0..n {
            let hits = lake
                .similar(ModelId(q as u64), kind, 10)
                .expect("search succeeds");
            rankings.push((q, hits.into_iter().map(|(m, _)| m.0 as usize).collect()));
        }
        let sq = grade(&gt, &rankings);
        t.row(vec![
            format!("fingerprint: {}", kind.name()),
            f3(sq.p5_family),
            f3(sq.p5_domain),
            f3(sq.mrr_family),
        ]);
    }

    // Keyword baseline: rank by shared name tokens (hub search today).
    let mut rankings = Vec::with_capacity(n);
    for q in 0..n {
        let qtokens: Vec<&str> = gt.models[q].name.split('-').collect();
        let mut scored: Vec<(usize, usize)> = (0..n)
            .filter(|&m| m != q)
            .map(|m| {
                let overlap = gt.models[m]
                    .name
                    .split('-')
                    .filter(|tok| qtokens.contains(tok))
                    .count();
                (m, overlap)
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rankings.push((q, scored.into_iter().map(|(m, _)| m).take(10).collect()));
    }
    let sq = grade(&gt, &rankings);
    t.row(vec![
        "keyword overlap (hub baseline)".into(),
        f3(sq.p5_family),
        f3(sq.p5_domain),
        f3(sq.mrr_family),
    ]);

    // Random floor.
    let mut rng = Pcg64::new(99);
    let mut rankings = Vec::with_capacity(n);
    for q in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&m| m != q).collect();
        rng.shuffle(&mut others);
        others.truncate(10);
        rankings.push((q, others));
    }
    let sq = grade(&gt, &rankings);
    t.row(vec![
        "random (floor)".into(),
        f3(sq.p5_family),
        f3(sq.p5_domain),
        f3(sq.mrr_family),
    ]);

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_runs_and_beats_random() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 5);
        let mrr = |r: usize| t.rows[r][3].parse::<f32>().unwrap();
        // Hybrid fingerprint must beat the random floor on lineage MRR.
        assert!(mrr(2) > mrr(4), "hybrid {} !> random {}", mrr(2), mrr(4));
    }

    #[test]
    fn grading_helpers() {
        assert_eq!(precision_at_k(&[1, 2, 3], |m| m == 2, 3), 1.0 / 3.0);
        assert_eq!(precision_at_k(&[], |_| true, 0), 0.0);
        assert_eq!(reciprocal_rank(&[5, 6, 7], |m| m == 7), 1.0 / 3.0);
        assert_eq!(reciprocal_rank(&[5], |_| false), 0.0);
    }
}
