//! E3 — Training-data attribution (§3 Model Attribution). Exact
//! leave-one-out ground truth versus influence functions, TracIn and the
//! gradient-dot baseline: agreement (Pearson/Spearman/top-10 overlap) and
//! wall-clock cost.

use crate::table::{f3, ms, Table};
use mlake_attribution::eval::agreement;
use mlake_attribution::influence::{gradient_dot_scores, influence_scores};
use mlake_attribution::loo::loo_scores;
use mlake_attribution::softmax::{SoftmaxConfig, SoftmaxRegression};
use mlake_attribution::tracin::{tracin_scores, train_with_checkpoints};
use mlake_datagen::{tabular, Domain};
use mlake_nn::LabeledData;
use mlake_tensor::Seed;
use std::time::Instant;

fn domain_data(n: usize, seed: u64) -> LabeledData {
    tabular::sample_tabular(
        &Domain::new("legal"),
        &tabular::TabularSpec {
            dim: 4,
            num_classes: 2,
            separation: 1.6,
            noise: 0.8,
        },
        n,
        Seed::new(3),
        Seed::new(seed),
    )
}

/// Runs E3.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 20 } else { 48 };
    let num_tests = if quick { 2 } else { 6 };
    let cfg = SoftmaxConfig {
        l2: 0.05,
        steps: if quick { 200 } else { 400 },
        lr: 0.5,
    };
    let data = domain_data(n, 21);
    let tests = domain_data(num_tests, 22);
    let model = SoftmaxRegression::train(&data, &cfg).expect("train");
    let (_, checkpoints) =
        train_with_checkpoints(&data, &cfg, 6).expect("checkpointed train");

    // Accumulators per estimator: (pearson, spearman, top10, duration).
    let mut acc: Vec<(String, f64, f64, f64, std::time::Duration)> = vec![
        ("influence function (H^-1 via CG)".into(), 0.0, 0.0, 0.0, Default::default()),
        ("TracIn (6 checkpoints)".into(), 0.0, 0.0, 0.0, Default::default()),
        ("gradient-dot (H = I baseline)".into(), 0.0, 0.0, 0.0, Default::default()),
    ];
    let mut loo_time = std::time::Duration::default();

    for (row, &y) in tests.x.rows_iter().zip(&tests.y) {
        let t0 = Instant::now();
        let loo = loo_scores(&data, row, y, &cfg).expect("loo");
        loo_time += t0.elapsed();

        let t0 = Instant::now();
        let inf = influence_scores(&model, &data, row, y, 0.01).expect("influence");
        acc[0].4 += t0.elapsed();
        let t0 = Instant::now();
        let tr = tracin_scores(&checkpoints, cfg.lr, &data, row, y).expect("tracin");
        acc[1].4 += t0.elapsed();
        let t0 = Instant::now();
        let gd = gradient_dot_scores(&model, &data, row, y).expect("grad-dot");
        acc[2].4 += t0.elapsed();

        for (slot, scores) in [(0, &inf), (1, &tr), (2, &gd)] {
            let a = agreement(&loo, scores);
            acc[slot].1 += f64::from(a.pearson.unwrap_or(0.0));
            acc[slot].2 += f64::from(a.spearman.unwrap_or(0.0));
            acc[slot].3 += f64::from(a.top10);
        }
    }

    let mut t = Table::new(
        format!(
            "E3: attribution vs exact LOO (n={n} train, {num_tests} test points; LOO cost {})",
            ms(loo_time)
        ),
        &["estimator", "pearson", "spearman", "top-10 overlap", "cost"],
    );
    let k = num_tests as f64;
    for (name, p, s, o, d) in acc {
        t.row(vec![
            name,
            f3((p / k) as f32),
            f3((s / k) as f32),
            f3((o / k) as f32),
            ms(d),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_influence_tracks_loo() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);
        let pearson_inf: f32 = t.rows[0][1].parse().unwrap();
        assert!(pearson_inf > 0.5, "influence pearson {pearson_inf}");
        // All estimators are orders of magnitude cheaper than LOO; at least
        // they must finish and report costs.
        assert!(t.rows.iter().all(|r| r[4].ends_with("ms")));
    }
}
