//! E5 — Indexer scaling (§5 Indexer; Malkov & Yashunin). HNSW vs LSH vs
//! exact flat scan over synthetic model embeddings: recall@10, query
//! latency, build time — the sublinear-vs-linear crossover the paper's
//! indexer component banks on — plus the HNSW `ef` recall/latency knob.

use crate::table::{f3, metrics_tables, ms, Table};
use mlake_index::{
    recall_at_k, FlatIndex, HnswConfig, HnswIndex, LshConfig, LshIndex, Precision, VectorIndex,
};
use mlake_tensor::Pcg64;
use std::time::{Duration, Instant};

/// Clustered synthetic "model embeddings": base-family centroids plus
/// derivation-scale noise — the geometry real fingerprints have.
pub fn embeddings(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Pcg64::new(seed);
    let clusters = (n / 16).clamp(4, 64);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.normal() * 3.0).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % clusters];
            c.iter().map(|&x| x + rng.normal() * 0.4).collect()
        })
        .collect()
}

struct IndexRun {
    build: Duration,
    query: Duration,
    recall: f32,
}

fn run_index(
    index: &mut dyn VectorIndex,
    vectors: &[Vec<f32>],
    queries: &[Vec<f32>],
    truth: &FlatIndex,
) -> IndexRun {
    let items: Vec<(u64, Vec<f32>)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v.clone()))
        .collect();
    let t0 = Instant::now();
    index.insert_batch(&items).expect("insert");
    let build = t0.elapsed();
    let t0 = Instant::now();
    index.search_many(queries, 10).expect("search");
    let query = t0.elapsed() / queries.len().max(1) as u32;
    let recall = recall_at_k(index, truth, queries, 10).expect("recall");
    IndexRun {
        build,
        query,
        recall,
    }
}

/// Runs E5.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[1_000, 5_000, 20_000, 50_000]
    };
    let dim = 64;
    let num_queries = if quick { 20 } else { 50 };
    // Start from a clean slate so the trailing metrics tables describe
    // exactly this experiment's index traffic.
    mlake_obs::registry().reset();

    let mut t = Table::new(
        format!("E5a: index scaling (d={dim}, k=10, {num_queries} queries)"),
        &["n", "index", "precision", "build", "query", "recall@10"],
    );
    for &n in sizes {
        let vectors = embeddings(n, dim, 31);
        let mut qrng = Pcg64::new(32);
        let queries: Vec<Vec<f32>> = (0..num_queries)
            .map(|i| {
                vectors[(i * 37) % n]
                    .iter()
                    .map(|&x| x + qrng.normal() * 0.1)
                    .collect()
            })
            .collect();
        let mut truth = FlatIndex::new();
        for (i, v) in vectors.iter().enumerate() {
            truth.insert(i as u64, v).expect("insert");
        }

        let mut flat = FlatIndex::new();
        let r = run_index(&mut flat, &vectors, &queries, &truth);
        t.row(vec![n.to_string(), "flat (exact)".into(), "f32".into(), ms(r.build), ms(r.query), f3(r.recall)]);

        let mut flat_sq8 = FlatIndex::with_precision(Precision::Sq8Rescore);
        let r = run_index(&mut flat_sq8, &vectors, &queries, &truth);
        let sq8_tag = format!("sq8x{}", flat_sq8.rescore_factor());
        t.row(vec![n.to_string(), "flat".into(), sq8_tag.clone(), ms(r.build), ms(r.query), f3(r.recall)]);

        let hnsw_config = HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 5,
            ..Default::default()
        };
        let mut hnsw = HnswIndex::new(hnsw_config);
        let r = run_index(&mut hnsw, &vectors, &queries, &truth);
        t.row(vec![n.to_string(), "hnsw".into(), "f32".into(), ms(r.build), ms(r.query), f3(r.recall)]);

        let mut hnsw_sq8 = HnswIndex::new(HnswConfig {
            precision: Precision::Sq8Rescore,
            ..hnsw_config
        });
        let r = run_index(&mut hnsw_sq8, &vectors, &queries, &truth);
        t.row(vec![n.to_string(), "hnsw".into(), sq8_tag, ms(r.build), ms(r.query), f3(r.recall)]);

        let mut lsh = LshIndex::new(LshConfig {
            tables: 12,
            bits: 12,
            seed: 5,
        });
        let r = run_index(&mut lsh, &vectors, &queries, &truth);
        t.row(vec![n.to_string(), "lsh".into(), "f32".into(), ms(r.build), ms(r.query), f3(r.recall)]);
    }

    // ---- ef sweep --------------------------------------------------------
    // Unstructured (pure Gaussian) vectors: the hard regime where the beam
    // width genuinely trades recall for latency. (Clustered embeddings are
    // easy enough that even ef=8 saturates.)
    let n = if quick { 2_000 } else { 20_000 };
    let mut vrng = Pcg64::new(33);
    let vectors: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..dim).map(|_| vrng.normal()).collect())
        .collect();
    let mut qrng = Pcg64::new(34);
    let queries: Vec<Vec<f32>> = (0..num_queries)
        .map(|_| (0..dim).map(|_| qrng.normal()).collect())
        .collect();
    let mut truth = FlatIndex::new();
    for (i, v) in vectors.iter().enumerate() {
        truth.insert(i as u64, v).expect("insert");
    }
    // Precompute the exact answers outside any timed region.
    let exact: Vec<std::collections::HashSet<u64>> = queries
        .iter()
        .map(|q| {
            truth
                .search(q, 10)
                .expect("truth")
                .iter()
                .map(|h| h.id)
                .collect()
        })
        .collect();
    let mut hnsw = HnswIndex::new(HnswConfig {
        m: 16,
        ef_construction: 100,
        ef_search: 8,
        seed: 5,
        ..Default::default()
    });
    let items: Vec<(u64, Vec<f32>)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v.clone()))
        .collect();
    hnsw.insert_batch(&items).expect("insert");
    let mut t2 = Table::new(
        format!("E5b: HNSW recall/latency vs ef (n={n}, unstructured vectors)"),
        &["ef", "query", "recall@10"],
    );
    for &ef in &[8usize, 16, 32, 64, 128, 256] {
        // Time the searches alone; grade recall outside the timed region.
        let t0 = Instant::now();
        let results: Vec<Vec<mlake_index::Hit>> = queries
            .iter()
            .map(|q| hnsw.search_ef(q, 10, ef).expect("search"))
            .collect();
        let per_query = t0.elapsed() / queries.len().max(1) as u32;
        let mut acc = 0.0f32;
        for (hits, truth_set) in results.iter().zip(&exact) {
            acc += hits.iter().filter(|h| truth_set.contains(&h.id)).count() as f32
                / truth_set.len().max(1) as f32;
        }
        t2.row(vec![
            ef.to_string(),
            ms(per_query),
            f3(acc / queries.len() as f32),
        ]);
    }
    let mut tables = vec![t, t2];
    // Observability readout: HNSW build/search latency distributions,
    // per-layer visit counters and beam expansions collected by mlake-obs
    // while the experiment ran. Empty (and therefore omitted) when
    // MLAKE_OBS=off — recall/latency numbers above are unaffected.
    tables.extend(metrics_tables("E5c", &mlake_obs::registry().snapshot()));
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_hnsw_has_high_recall() {
        let tables = run(true);
        let t = &tables[0];
        // Rows come in quintuples (flat f32, flat sq8, hnsw f32, hnsw sq8,
        // lsh) per size; recall is the last column.
        let flat_recall: f32 = t.rows[0][5].parse().unwrap();
        assert!((flat_recall - 1.0).abs() < 1e-6);
        let flat_sq8_recall: f32 = t.rows[1][5].parse().unwrap();
        assert!(flat_sq8_recall >= 0.95 * flat_recall, "flat sq8 recall {flat_sq8_recall}");
        let hnsw_recall: f32 = t.rows[2][5].parse().unwrap();
        assert!(hnsw_recall > 0.85, "hnsw recall {hnsw_recall}");
        let hnsw_sq8_recall: f32 = t.rows[3][5].parse().unwrap();
        assert!(
            hnsw_sq8_recall >= 0.95 * hnsw_recall,
            "hnsw sq8 recall {hnsw_sq8_recall} vs f32 {hnsw_recall}"
        );
        // ef sweep is monotone-ish: recall at ef=256 >= recall at ef=8.
        let t2 = &tables[1];
        let lo: f32 = t2.rows[0][2].parse().unwrap();
        let hi: f32 = t2.rows[5][2].parse().unwrap();
        assert!(hi >= lo);
    }
}
