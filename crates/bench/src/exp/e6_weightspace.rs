//! E6 — Weight-space modeling (§5; Eilertsen et al., Schürholt et al.,
//! Zhou et al.). Train property classifiers on intrinsic fingerprints alone
//! (no behavioural access) to predict domain, model family and transform
//! kind; check the fine-tuned-sibling linear-connectivity observation.

use crate::table::{f3, Table};
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_fingerprint::weightspace::{majority_baseline, PropertyClassifier, WeightSpaceConfig};
use mlake_fingerprint::{model_dna, moment_features, structural_features};
use mlake_tensor::{vector, Pcg64};

/// Runs E6.
pub fn run(quick: bool) -> Vec<Table> {
    // A larger population than the other experiments: weight-space models
    // need samples.
    let spec = if quick {
        LakeSpec {
            seed: 17,
            num_base_models: 6,
            derivations_per_base: 4,
            ..LakeSpec::tiny(17)
        }
    } else {
        LakeSpec::builder()
            .seed(17)
            .num_base_models(16)
            .derivations_per_base(7)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let n = gt.models.len();

    // Features: Model DNA plus structural statistics (weights only).
    let features: Vec<Vec<f32>> = gt
        .models
        .iter()
        .map(|m| {
            let mut f = model_dna(&m.model, 48, 7);
            f.extend_from_slice(&structural_features(&m.model));
            f
        })
        .collect();

    // Train/test split.
    let mut rng = Pcg64::new(9);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let cut = (n * 7) / 10;
    let (train_idx, test_idx) = order.split_at(cut);

    let mut t = Table::new(
        format!("E6: weight-space property prediction ({n} models, 70/30 split)"),
        &["property", "weight-space acc", "majority baseline", "classes"],
    );

    let properties: Vec<(&str, Vec<String>)> = vec![
        (
            "domain",
            gt.models.iter().map(|m| m.domain.name().to_string()).collect(),
        ),
        (
            "family",
            gt.models.iter().map(|m| format!("f{}", m.family)).collect(),
        ),
        (
            "transform",
            gt.models
                .iter()
                .map(|m| {
                    m.transform
                        .map(|k| k.name().to_string())
                        .unwrap_or_else(|| "base".into())
                })
                .collect(),
        ),
    ];
    for (name, labels) in &properties {
        let train_f: Vec<Vec<f32>> = train_idx.iter().map(|&i| features[i].clone()).collect();
        let train_l: Vec<&str> = train_idx.iter().map(|&i| labels[i].as_str()).collect();
        let test_f: Vec<Vec<f32>> = test_idx.iter().map(|&i| features[i].clone()).collect();
        let test_l: Vec<&str> = test_idx.iter().map(|&i| labels[i].as_str()).collect();
        let clf = PropertyClassifier::train(
            &train_f,
            &train_l,
            &WeightSpaceConfig {
                hidden: 24,
                epochs: if quick { 40 } else { 120 },
                ..Default::default()
            },
        )
        .expect("train weight-space classifier");
        let acc = clf.accuracy(&test_f, &test_l).expect("accuracy");
        t.row(vec![
            name.to_string(),
            f3(acc),
            f3(majority_baseline(&test_l)),
            clf.labels().len().to_string(),
        ]);
    }

    // ---- Linear connectivity between fine-tuned siblings ----------------
    // Zhou et al. observe fine-tuned children of one base lie in a nearly
    // linear region: delta directions of siblings correlate far more than
    // those of unrelated models.
    let mut sib_cos = Vec::new();
    let mut unrel_cos = Vec::new();
    for e1 in &gt.edges {
        for e2 in &gt.edges {
            if e1.child >= e2.child {
                continue;
            }
            let (p1, c1) = (&gt.models[e1.parent].model, &gt.models[e1.child].model);
            let (p2, c2) = (&gt.models[e2.parent].model, &gt.models[e2.child].model);
            let (f1, f2) = (p1.flat_params(), p2.flat_params());
            if f1.len() != c1.flat_params().len() || f2.len() != c2.flat_params().len() {
                continue;
            }
            let d1: Vec<f32> = c1.flat_params().iter().zip(&f1).map(|(a, b)| a - b).collect();
            let d2: Vec<f32> = c2.flat_params().iter().zip(&f2).map(|(a, b)| a - b).collect();
            if d1.len() != d2.len() || vector::l2_norm(&d1) == 0.0 || vector::l2_norm(&d2) == 0.0 {
                continue;
            }
            let cos = vector::cosine_similarity(&d1, &d2).abs();
            if e1.parent == e2.parent {
                sib_cos.push(cos);
            } else {
                unrel_cos.push(cos);
            }
        }
    }
    let mut t2 = Table::new(
        "E6b: delta-direction alignment (|cos| of weight deltas)",
        &["pair type", "pairs", "mean |cos|"],
    );
    t2.row(vec![
        "siblings (same parent)".into(),
        sib_cos.len().to_string(),
        f3(vector::mean(&sib_cos)),
    ]);
    t2.row(vec![
        "unrelated derivations".into(),
        unrel_cos.len().to_string(),
        f3(vector::mean(&unrel_cos)),
    ]);

    // Moment-only ablation: 8 features instead of full DNA.
    let mut t3 = Table::new(
        "E6c: ablation — moment features only (8-d) vs full Model DNA",
        &["features", "domain acc"],
    );
    let labels: Vec<String> = gt.models.iter().map(|m| m.domain.name().to_string()).collect();
    for (fname, feats) in [
        (
            "moments only (8)",
            gt.models
                .iter()
                .map(|m| moment_features(&m.model).to_vec())
                .collect::<Vec<_>>(),
        ),
        ("DNA + structural (8+48+6)", features.clone()),
    ] {
        let train_f: Vec<Vec<f32>> = train_idx.iter().map(|&i| feats[i].clone()).collect();
        let train_l: Vec<&str> = train_idx.iter().map(|&i| labels[i].as_str()).collect();
        let test_f: Vec<Vec<f32>> = test_idx.iter().map(|&i| feats[i].clone()).collect();
        let test_l: Vec<&str> = test_idx.iter().map(|&i| labels[i].as_str()).collect();
        let clf = PropertyClassifier::train(
            &train_f,
            &train_l,
            &WeightSpaceConfig {
                hidden: 24,
                epochs: if quick { 40 } else { 120 },
                ..Default::default()
            },
        )
        .expect("train");
        t3.row(vec![fname.into(), f3(clf.accuracy(&test_f, &test_l).expect("acc"))]);
    }
    vec![t, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_runs_and_siblings_align_more() {
        let tables = run(true);
        assert_eq!(tables.len(), 3);
        let t2 = &tables[1];
        let sib: f32 = t2.rows[0][2].parse().unwrap();
        let unrel: f32 = t2.rows[1][2].parse().unwrap();
        // Sibling deltas align at least as much as unrelated ones.
        assert!(sib >= unrel - 0.05, "sibling {sib} vs unrelated {unrel}");
    }
}
