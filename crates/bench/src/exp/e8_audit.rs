//! E8 — Auditing and citation (§6). Audit coverage under three
//! documentation regimes (skeleton / honest / auto-generated), and citation
//! stability under lake evolution.

use crate::table::{f3, Table};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, LakeSpec};

fn mean_coverage(lake: &ModelLake, n: usize) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..n {
        acc += lake.audit_model(ModelId(i as u64)).expect("audit").coverage();
    }
    acc / n as f32
}

/// Runs E8.
pub fn run(quick: bool) -> Vec<Table> {
    let spec = if quick {
        LakeSpec::tiny(23)
    } else {
        LakeSpec::builder()
            .seed(23)
            .num_base_models(8)
            .derivations_per_base(4)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let n = gt.models.len();
    let known: Vec<ModelId> = (0..n)
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();

    let mut t1 = Table::new(
        format!("E8a: audit coverage by documentation regime ({n} models)"),
        &["regime", "mean audit coverage"],
    );
    // Skeleton cards.
    let lake = ModelLake::new(LakeConfig::builder().name("e8-lake").build().expect("valid config"));
    populate_from_ground_truth(&lake, &gt, CardPolicy::Skeleton).expect("populate");
    lake.rebuild_version_graph(Some(known.clone())).expect("graph");
    t1.row(vec!["undocumented (skeleton cards)".into(), f3(mean_coverage(&lake, n))]);
    // Auto-generated cards installed on the same lake.
    for i in 0..n {
        let id = ModelId(i as u64);
        let card = lake.generate_card(id).expect("generate");
        lake.update_card(id, card).expect("update");
    }
    t1.row(vec!["lake auto-generated cards".into(), f3(mean_coverage(&lake, n))]);
    // Honest uploads.
    let honest = ModelLake::new(LakeConfig::builder().name("e8-honest-lake").build().expect("valid config"));
    populate_from_ground_truth(&honest, &gt, CardPolicy::Honest).expect("populate");
    honest.rebuild_version_graph(Some(known.clone())).expect("graph");
    t1.row(vec!["honest uploaded cards".into(), f3(mean_coverage(&honest, n))]);

    // ---- citation stability ---------------------------------------------
    let mut t2 = Table::new(
        "E8b: citation keys under lake evolution",
        &["event", "graph timestamp", "citation key (model 1)"],
    );
    let c0 = honest.cite(ModelId(1)).expect("cite");
    t2.row(vec!["initial graph".into(), c0.graph_timestamp.to_string(), c0.key()]);
    // New model arrives; graph rebuilt; citations change.
    honest
        .ingest_model("late-arrival", &gt.models[0].model, None)
        .expect("ingest");
    honest.rebuild_version_graph(Some(known)).expect("graph");
    let c1 = honest.cite(ModelId(1)).expect("cite");
    t2.row(vec![
        "after ingest + rebuild".into(),
        c1.graph_timestamp.to_string(),
        c1.key(),
    ]);
    // Non-graph event: card update leaves the citation stable.
    let entry_card = honest.entry(ModelId(1)).expect("entry").card;
    honest.update_card(ModelId(1), entry_card).expect("update");
    let c2 = honest.cite(ModelId(1)).expect("cite");
    t2.row(vec![
        "after card-only update".into(),
        c2.graph_timestamp.to_string(),
        c2.key(),
    ]);
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_coverage_ordering_and_citation_stability() {
        let tables = run(true);
        let t1 = &tables[0];
        let skeleton: f32 = t1.rows[0][1].parse().unwrap();
        let generated: f32 = t1.rows[1][1].parse().unwrap();
        assert!(generated > skeleton, "{generated} !> {skeleton}");
        let t2 = &tables[1];
        // Graph change bumps the key; card-only update does not.
        assert_ne!(t2.rows[0][2], t2.rows[1][2]);
        assert_eq!(t2.rows[1][2], t2.rows[2][2]);
    }
}
