//! E7 — Documentation generation and card verification (§6 Document
//! Generation; §4 PoisonGPT). Two measurements:
//! (a) auto-generating cards for an undocumented lake: completeness and
//!     agreement with hidden ground truth;
//! (b) corrupting honest cards and measuring verification detection
//!     precision/recall per corruption type.

use crate::table::{f3, Table};
use mlake_cards::corrupt::{corrupt_card, CardCorruption};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{honest_card, populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_tensor::Pcg64;

/// Runs E7.
pub fn run(quick: bool) -> Vec<Table> {
    let spec = if quick {
        LakeSpec::tiny(19)
    } else {
        LakeSpec::builder()
            .seed(19)
            .num_base_models(8)
            .derivations_per_base(4)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let n = gt.models.len();

    // ---- (a) document generation on an undocumented lake ----------------
    let lake = ModelLake::new(LakeConfig::builder().name("e7-lake").build().expect("valid config"));
    populate_from_ground_truth(&lake, &gt, CardPolicy::Skeleton).expect("populate");
    let known: Vec<ModelId> = (0..n)
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    lake.rebuild_version_graph(Some(known)).expect("graph");

    let mut completeness_before = 0.0f32;
    let mut completeness_after = 0.0f32;
    let mut domain_correct = 0usize;
    let mut domain_predicted = 0usize;
    let mut lineage_correct = 0usize;
    let mut lineage_predicted = 0usize;
    for i in 0..n {
        let id = ModelId(i as u64);
        completeness_before += lake.entry(id).expect("entry").card.completeness();
        let card = lake.generate_card(id).expect("generate");
        completeness_after += card.completeness();
        if let Some(d) = card.domains.first() {
            domain_predicted += 1;
            if d == gt.models[i].domain.name() {
                domain_correct += 1;
            }
        }
        if let Some(base) = &card.lineage.base_model {
            lineage_predicted += 1;
            if let Some(e) = gt.edges.iter().find(|e| e.child == i) {
                if base == &gt.models[e.parent].name {
                    lineage_correct += 1;
                }
            }
        }
    }
    let mut t1 = Table::new(
        format!("E7a: auto-generated cards for an undocumented lake ({n} models)"),
        &["measure", "value"],
    );
    t1.row(vec!["mean completeness before".into(), f3(completeness_before / n as f32)]);
    t1.row(vec!["mean completeness after".into(), f3(completeness_after / n as f32)]);
    t1.row(vec![
        "domain prediction accuracy".into(),
        format!("{domain_correct}/{domain_predicted}"),
    ]);
    t1.row(vec![
        "lineage (base) accuracy".into(),
        format!("{lineage_correct}/{lineage_predicted}"),
    ]);

    // ---- (b) card verification against corruption -----------------------
    let lake = ModelLake::new(LakeConfig::builder().name("e7-honest-lake").build().expect("valid config"));
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).expect("populate");
    let known: Vec<ModelId> = (0..n)
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    lake.rebuild_version_graph(Some(known)).expect("graph");

    // Honest cards with *truthful measured metric claims*: the honest
    // uploader reports exactly what the lake re-measures, so metric
    // inflation becomes a real (detectable) lie.
    let truthful_cards: Vec<_> = (0..n)
        .map(|i| {
            let id = ModelId(i as u64);
            let mut card = honest_card(&gt, i);
            card.metrics = lake
                .evidence_for(id)
                .expect("evidence")
                .measured_metrics;
            card
        })
        .collect();

    // Paired design: the verifier's evidence (recovered lineage, predicted
    // domain) is itself imperfect, so a model's corrupted card is compared
    // against its own honest card — detection means the corruption *adds*
    // contradictions.
    let contradictions_of = |i: usize, card: &mlake_cards::ModelCard| -> usize {
        let id = ModelId(i as u64);
        lake.update_card(id, card.clone()).expect("card");
        lake.verify_model_card(id).expect("verify").contradictions()
    };
    let honest_baseline: Vec<usize> = (0..n)
        .map(|i| contradictions_of(i, &truthful_cards[i]))
        .collect();
    let honest_fp = honest_baseline.iter().filter(|&&c| c > 0).count();

    let mut t2 = Table::new(
        format!(
            "E7b: paired verification of corrupted cards (honest cards flagged: {honest_fp}/{n})"
        ),
        &["corruption", "detected (added contradictions)", "detection rate"],
    );
    let mut rng = Pcg64::new(5);
    for corruption in CardCorruption::ALL {
        if !corruption.is_deceptive() {
            continue;
        }
        let mut caught = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            let honest = &truthful_cards[i];
            let alt_model = gt.models[rng.index(n)].name.clone();
            let bad = corrupt_card(honest, corruption, &alt_model, "travel");
            // Skip no-op corruptions (e.g. false base on a base model, or a
            // randomly drawn "false" base equal to the true one).
            if bad == *honest {
                continue;
            }
            total += 1;
            if contradictions_of(i, &bad) > honest_baseline[i] {
                caught += 1;
            }
        }
        t2.row(vec![
            corruption.name().into(),
            format!("{caught}/{total}"),
            f3(caught as f32 / total.max(1) as f32),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_generation_improves_completeness() {
        let tables = run(true);
        let t1 = &tables[0];
        let before: f32 = t1.rows[0][1].parse().unwrap();
        let after: f32 = t1.rows[1][1].parse().unwrap();
        assert!(after > before + 0.3, "completeness {before} -> {after}");
        // Verification catches a decent share of metric inflation.
        let t2 = &tables[1];
        let inflate = t2
            .rows
            .iter()
            .find(|r| r[0] == "inflate-metrics")
            .expect("row exists");
        let detection: f32 = inflate[2].parse().unwrap();
        assert!(detection > 0.5, "inflate detection {detection}");
    }
}
