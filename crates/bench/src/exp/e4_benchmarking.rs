//! E4 — Lake benchmarking and lifelong benchmarks (§3 Benchmarking; §5
//! lifelong benchmarks). Leaderboards across the lake, the incremental-
//! evaluation saving of the lifelong pool, and subsampled-estimate accuracy.

use crate::table::{f3, Table};
use mlake_benchlab::LifelongBenchmark;
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, tabular, Domain, LakeSpec};
use mlake_tensor::Seed;

/// Runs E4.
pub fn run(quick: bool) -> Vec<Table> {
    let spec = if quick {
        LakeSpec::tiny(13)
    } else {
        LakeSpec::builder()
            .seed(13)
            .num_base_models(8)
            .derivations_per_base(4)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let lake = ModelLake::new(LakeConfig::builder().name("e4-lake").build().expect("valid config"));
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).expect("populate");

    // ---- Table 1: leaderboard head for the legal holdout ---------------
    let lb = lake.leaderboard("legal-holdout").expect("leaderboard");
    let mut t1 = Table::new(
        format!(
            "E4a: leaderboard 'legal-holdout' (top 5 of {}, {} inapplicable)",
            lb.rows.len(),
            lb.skipped.len()
        ),
        &["rank", "model", "accuracy", "true domain"],
    );
    for (rank, row) in lb.rows.iter().take(5).enumerate() {
        let name = lake.entry(ModelId(row.model_id)).expect("entry").name;
        let true_domain = gt.models[row.model_id as usize].domain.name().to_string();
        t1.row(vec![
            (rank + 1).to_string(),
            name,
            f3(row.score.value),
            true_domain,
        ]);
    }

    // ---- Table 2: lifelong benchmark incremental-evaluation savings ----
    let domain = Domain::new("legal");
    let spec_tab = tabular::TabularSpec::default();
    let root = Seed::new(spec.seed);
    let mut pool = LifelongBenchmark::new();
    let models: Vec<_> = (0..lake.len())
        .map(|i| lake.model(ModelId(i as u64)).expect("model"))
        .filter(|m| m.as_mlp().is_some())
        .collect();
    let rounds = if quick { 3 } else { 5 };
    let probes_per_round = if quick { 30 } else { 60 };
    let mut t2 = Table::new(
        format!(
            "E4b: lifelong benchmark over {} classifiers, {} probes/round",
            models.len(),
            probes_per_round
        ),
        &["round", "pool size", "evals (lifelong)", "evals (naive)", "saving"],
    );
    let mut naive = 0u64;
    for round in 0..rounds {
        let batch = tabular::sample_tabular(
            &domain,
            &spec_tab,
            probes_per_round,
            root,
            Seed::new(1000 + round as u64),
        );
        pool.extend(&batch);
        for (i, m) in models.iter().enumerate() {
            pool.accuracy(i as u64, m).expect("pool accuracy");
        }
        // A naive benchmark re-evaluates every probe for every model.
        naive += (pool.len() * models.len()) as u64;
        let lifelong = pool.evaluations();
        t2.row(vec![
            (round + 1).to_string(),
            pool.len().to_string(),
            lifelong.to_string(),
            naive.to_string(),
            format!("{:.1}x", naive as f64 / lifelong.max(1) as f64),
        ]);
    }

    // ---- Table 3: subsampled estimator error vs sample size -------------
    let mut t3 = Table::new(
        "E4c: sampled accuracy estimate vs full evaluation (first classifier)",
        &["sample size", "estimate", "95% half-width", "|error|"],
    );
    if let Some(m) = models.first() {
        let truth = pool.accuracy(0, m).expect("full accuracy");
        let mut rng = Seed::new(77).rng();
        for &s in &[10usize, 25, 50] {
            let (est, half) = pool.sampled_accuracy(m, s, &mut rng).expect("sampled");
            t3.row(vec![
                s.to_string(),
                f3(est),
                f3(half),
                f3((est - truth).abs()),
            ]);
        }
    }
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_savings_grow_with_rounds() {
        let tables = run(true);
        assert_eq!(tables.len(), 3);
        let t2 = &tables[1];
        // Lifelong evaluations strictly fewer than naive after round 2.
        let lifelong: u64 = t2.rows.last().unwrap()[2].parse().unwrap();
        let naive: u64 = t2.rows.last().unwrap()[3].parse().unwrap();
        assert!(lifelong < naive, "{lifelong} !< {naive}");
        // Leaderboard table has rows with parsable accuracy.
        let acc: f32 = tables[0].rows[0][2].parse().unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
