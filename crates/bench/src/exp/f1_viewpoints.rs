//! F1 — The three viewpoints of Figure 1 as a measured ablation: how well do
//! lake tasks work when only history, only intrinsics, or only extrinsics
//! are available? (§2: "there are cases where certain aspects may be
//! unavailable… we use this distinction to analyze possible solutions".)

use crate::exp::e1_versioning::{lake_probes, truth_edges};
use crate::table::{f3, Table};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_fingerprint::FingerprintKind;
use mlake_versioning::graph::evaluate;
use mlake_versioning::recover::{recover_graph, RecoveryOptions};

/// Runs F1.
pub fn run(quick: bool) -> Vec<Table> {
    let spec = if quick {
        LakeSpec::tiny(37)
    } else {
        LakeSpec::builder()
            .seed(37)
            .num_base_models(8)
            .derivations_per_base(4)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let n = gt.models.len();
    let models: Vec<_> = gt.models.iter().map(|m| m.model.clone()).collect();
    let probes = lake_probes(spec.seed);
    let truth = truth_edges(&gt);
    let known: Vec<usize> = (0..n).filter(|&i| gt.models[i].depth == 0).collect();

    let mut t = Table::new(
        format!("F1: lake-task quality by available viewpoint ({n} models)"),
        &["viewpoint", "versioning F1", "search P@5 (lineage)", "notes"],
    );

    // --- history: ground truth is directly consultable -------------------
    t.row(vec![
        "history (D, A) recorded".into(),
        "1.000".into(),
        "1.000".into(),
        "provenance lookup, no inference needed".into(),
    ]);

    // --- intrinsics only: weights, no behaviour, no docs ------------------
    let g = recover_graph(
        &models,
        None,
        &RecoveryOptions {
            known_roots: Some(known.clone()),
            ..Default::default()
        },
    );
    let v_f1 = evaluate(&g, &truth).edge_f1;
    let p5 = search_p5(&gt, FingerprintKind::Intrinsic, quick);
    t.row(vec![
        "intrinsics only (f*, θ)".into(),
        f3(v_f1),
        f3(p5),
        "misses distilled children (no weight lineage)".into(),
    ]);

    // --- extrinsics only: behaviour probes, weights hidden ----------------
    let p5 = search_p5(&gt, FingerprintKind::Extrinsic, quick);
    t.row(vec![
        "extrinsics only (p_θ)".into(),
        "n/a".into(),
        f3(p5),
        "behavioural search; versioning direction unidentifiable".into(),
    ]);

    // --- both ------------------------------------------------------------
    let g = recover_graph(
        &models,
        Some(&probes),
        &RecoveryOptions {
            known_roots: Some(known),
            ..Default::default()
        },
    );
    let v_f1 = evaluate(&g, &truth).edge_f1;
    let p5 = search_p5(&gt, FingerprintKind::Hybrid, quick);
    t.row(vec![
        "intrinsics + extrinsics (hybrid)".into(),
        f3(v_f1),
        f3(p5),
        "the §5 hybrid-indexer recommendation".into(),
    ]);
    vec![t]
}

fn search_p5(gt: &mlake_datagen::GroundTruth, kind: FingerprintKind, _quick: bool) -> f32 {
    let lake = ModelLake::new(LakeConfig::builder().name("f1-lake").build().expect("valid config"));
    populate_from_ground_truth(&lake, gt, CardPolicy::Honest).expect("populate");
    let n = gt.models.len();
    let mut acc = 0.0f32;
    let mut counted = 0usize;
    for q in 0..n {
        let fam = gt.models[q].family;
        let family_size = gt.family_members(fam).len() - 1;
        if family_size == 0 {
            continue;
        }
        counted += 1;
        let k = 5.min(family_size);
        let hits = lake.similar(ModelId(q as u64), kind, k).expect("similar");
        let rel = hits
            .iter()
            .filter(|(m, _)| gt.models[m.0 as usize].family == fam)
            .count();
        acc += rel as f32 / k as f32;
    }
    acc / counted.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_hybrid_not_worse_than_parts() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4);
        let hybrid_p5: f32 = t.rows[3][2].parse().unwrap();
        let intrinsic_p5: f32 = t.rows[1][2].parse().unwrap();
        // Hybrid search should hold its own against intrinsic-only.
        assert!(hybrid_p5 >= intrinsic_p5 - 0.25);
    }
}
