//! E1 — Version-graph recovery (§3 Model Versioning; Horwitz et al., Mu et
//! al.). Recover the directed model graph of the benchmark lake and score
//! edge precision/recall/F1, direction accuracy and transform-kind accuracy
//! against recorded ground truth, versus baselines.

use crate::table::{f3, Table};
use mlake_datagen::{generate_lake, GroundTruth, LakeSpec};
use mlake_fingerprint::extrinsic::ProbeSet;
use mlake_tensor::Seed;
use mlake_versioning::graph::{evaluate, GraphEval, RecoveredEdge, RecoveredGraph, TrueEdge};
use mlake_versioning::recover::{random_baseline, recover_graph, RecoveryOptions};
use mlake_versioning::TransformKind;

/// Standard probe set matching the generated lake geometry.
pub fn lake_probes(seed: u64) -> ProbeSet {
    ProbeSet::standard(8, 32, 2.5, 24, 16, 2, Seed::new(seed).derive("e1-probes"))
}

/// Ground-truth edges in the evaluator's format.
pub fn truth_edges(gt: &GroundTruth) -> Vec<TrueEdge> {
    gt.edges
        .iter()
        .map(|e| TrueEdge {
            parent: e.parent,
            child: e.child,
            kind: e.kind,
            second_parent: e.second_parent,
        })
        .collect()
}

/// Metadata-only baseline: attach every derived-looking model (name carries a
/// transform token) to the base model sharing its name's domain prefix —
/// what hub keyword search supports today (§4 Model Search and Discovery).
pub fn metadata_baseline(gt: &GroundTruth) -> RecoveredGraph {
    let mut edges = Vec::new();
    let mut roots = Vec::new();
    for (i, m) in gt.models.iter().enumerate() {
        let is_base = m.name.contains("-base-");
        if is_base {
            roots.push(i);
            continue;
        }
        let domain_prefix = m.name.split('-').next().unwrap_or_default();
        let parent = gt
            .models
            .iter()
            .position(|c| c.name.contains("-base-") && c.name.starts_with(domain_prefix));
        if let Some(p) = parent {
            let kind = TransformKind::ALL
                .iter()
                .copied()
                .find(|k| m.name.contains(k.name()))
                .unwrap_or(TransformKind::FineTune);
            edges.push(RecoveredEdge {
                parent: p,
                child: i,
                kind,
                second_parent: None,
                distance: 0.5,
            });
        } else {
            roots.push(i);
        }
    }
    RecoveredGraph {
        num_models: gt.models.len(),
        edges,
        roots,
    }
}

fn eval_row(t: &mut Table, method: &str, ev: &GraphEval) {
    t.row(vec![
        method.into(),
        f3(ev.edge_precision),
        f3(ev.edge_recall),
        f3(ev.edge_f1),
        f3(ev.direction_accuracy),
        f3(ev.kind_accuracy),
        format!("{}/{}", ev.recovered, ev.truth),
    ]);
}

/// Runs E1.
pub fn run(quick: bool) -> Vec<Table> {
    let spec = if quick {
        LakeSpec::tiny(7)
    } else {
        LakeSpec::builder()
            .seed(7)
            .num_base_models(10)
            .derivations_per_base(5)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let models: Vec<_> = gt.models.iter().map(|m| m.model.clone()).collect();
    let probes = lake_probes(spec.seed);
    let truth = truth_edges(&gt);
    let known: Vec<usize> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .collect();

    let mut t = Table::new(
        format!(
            "E1: version-graph recovery ({} models, {} true edges)",
            gt.models.len(),
            truth.len()
        ),
        &[
            "method",
            "edge-P",
            "edge-R",
            "edge-F1",
            "direction",
            "kind-acc",
            "edges",
        ],
    );

    let known_roots = recover_graph(
        &models,
        Some(&probes),
        &RecoveryOptions {
            known_roots: Some(known.clone()),
            ..Default::default()
        },
    );
    eval_row(&mut t, "weights+behavior (known roots)", &evaluate(&known_roots, &truth));

    let blind = recover_graph(&models, Some(&probes), &RecoveryOptions::default());
    eval_row(&mut t, "weights+behavior (blind/Edmonds)", &evaluate(&blind, &truth));

    let intrinsic_only = recover_graph(
        &models,
        None,
        &RecoveryOptions {
            known_roots: Some(known.clone()),
            ..Default::default()
        },
    );
    eval_row(&mut t, "weights only (known roots)", &evaluate(&intrinsic_only, &truth));

    eval_row(&mut t, "metadata names (keyword baseline)", &evaluate(&metadata_baseline(&gt), &truth));
    eval_row(
        &mut t,
        "random parent (floor)",
        &evaluate(&random_baseline(models.len(), known.len(), 3), &truth),
    );

    // Second table: per-transform recall of the best method.
    let mut t2 = Table::new(
        "E1b: per-transform edge recall (known-roots recovery)",
        &["transform", "true edges", "recovered", "kind correct"],
    );
    for kind in TransformKind::ALL {
        let true_of_kind: Vec<&TrueEdge> = truth.iter().filter(|e| e.kind == kind).collect();
        if true_of_kind.is_empty() {
            continue;
        }
        let mut found = 0usize;
        let mut kind_ok = 0usize;
        for te in &true_of_kind {
            if let Some(re) = known_roots
                .edges
                .iter()
                .find(|r| (r.parent == te.parent && r.child == te.child) || (r.parent == te.child && r.child == te.parent))
            {
                found += 1;
                if re.kind == kind && re.parent == te.parent {
                    kind_ok += 1;
                }
            }
        }
        t2.row(vec![
            kind.name().into(),
            true_of_kind.len().to_string(),
            found.to_string(),
            kind_ok.to_string(),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs_and_orders_methods() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 5);
        // F1 of the known-roots method beats the random floor.
        let f1_of = |row: usize| t.rows[row][3].parse::<f32>().unwrap();
        assert!(f1_of(0) > f1_of(4), "{} !> {}", f1_of(0), f1_of(4));
    }

    #[test]
    fn metadata_baseline_wellformed() {
        let gt = generate_lake(&LakeSpec::tiny(3));
        let g = metadata_baseline(&gt);
        assert_eq!(g.num_models, gt.models.len());
        for e in &g.edges {
            assert!(e.parent < gt.models.len());
            assert!(e.child < gt.models.len());
        }
    }
}
