//! Experiment implementations, one module per EXPERIMENTS.md entry.

pub mod e1_versioning;
pub mod e2_search;
pub mod e3_attribution;
pub mod e4_benchmarking;
pub mod e5_index;
pub mod e6_weightspace;
pub mod e7_doccards;
pub mod e8_audit;
pub mod e9_membership;
pub mod e10_query;
pub mod e11_textsearch;
pub mod f1_viewpoints;

use crate::table::Table;

/// Runs an experiment by id ("e1".."e11", "f1"), returning its tables.
/// `quick` shrinks workloads for tests/CI.
pub fn run(id: &str, quick: bool) -> Option<Vec<Table>> {
    match id {
        "e1" => Some(e1_versioning::run(quick)),
        "e2" => Some(e2_search::run(quick)),
        "e3" => Some(e3_attribution::run(quick)),
        "e4" => Some(e4_benchmarking::run(quick)),
        "e5" => Some(e5_index::run(quick)),
        "e6" => Some(e6_weightspace::run(quick)),
        "e7" => Some(e7_doccards::run(quick)),
        "e8" => Some(e8_audit::run(quick)),
        "e9" => Some(e9_membership::run(quick)),
        "e10" => Some(e10_query::run(quick)),
        "e11" => Some(e11_textsearch::run(quick)),
        "f1" => Some(f1_viewpoints::run(quick)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL: [&str; 12] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "f1",
];
