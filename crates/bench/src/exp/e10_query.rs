//! E10 — Declarative model search (§6). An MLQL query suite over the
//! populated lake: answer correctness against directly computed ground
//! truth, plus per-query plans and latencies.

use crate::table::{ms, Table};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, GroundTruth, LakeSpec};
use std::time::Instant;

struct Case {
    name: &'static str,
    mlql: String,
    expected: Vec<u64>,
    /// Whether order matters for correctness.
    ordered: bool,
}

fn build_cases(lake: &ModelLake, gt: &GroundTruth) -> Vec<Case> {
    let n = gt.models.len();
    let mut cases = Vec::new();

    // 1. Domain filter: "models for legal documents" (Example 1.1).
    let legal: Vec<u64> = (0..n)
        .filter(|&i| gt.models[i].domain.name() == "legal")
        .map(|i| i as u64)
        .collect();
    cases.push(Case {
        name: "domain filter",
        mlql: "FIND MODELS WHERE domain = 'legal'".into(),
        expected: legal,
        ordered: false,
    });

    // 2. Trained on dataset, including versions (§5 holistic management).
    let ds = &gt.datasets[0].name;
    let expected: Vec<u64> = gt
        .trained_on_dataset_or_versions(gt.datasets[0].id)
        .into_iter()
        .map(|i| i as u64)
        .collect();
    cases.push(Case {
        name: "trained-on (with versions)",
        mlql: format!("FIND MODELS TRAINED ON DATASET '{ds}' INCLUDING VERSIONS"),
        expected,
        ordered: false,
    });

    // 3. Transform filter from card metadata.
    let lora: Vec<u64> = (0..n)
        .filter(|&i| {
            gt.models[i]
                .transform
                .is_some_and(|t| t.name() == "finetune")
        })
        .map(|i| i as u64)
        .collect();
    cases.push(Case {
        name: "transform filter",
        mlql: "FIND MODELS WHERE transform = 'finetune'".into(),
        expected: lora,
        ordered: false,
    });

    // 4. Outperform join: models beating model 0 on its own holdout.
    let bench = format!("{}-holdout", gt.models[0].domain.name());
    let lb = lake.leaderboard(&bench).expect("leaderboard");
    let expected = lb.outperformers(0);
    cases.push(Case {
        name: "outperform join",
        mlql: format!(
            "FIND MODELS OUTPERFORM MODEL '{}' ON BENCHMARK '{bench}'",
            gt.models[0].name
        ),
        expected,
        ordered: false,
    });

    // 5. Ranked leaderboard query (ordered).
    let applicable: Vec<u64> = lb.rows.iter().map(|r| r.model_id).take(3).collect();
    cases.push(Case {
        name: "order by score",
        mlql: format!("FIND MODELS ORDER BY score('{bench}') DESC LIMIT 3"),
        expected: applicable,
        ordered: true,
    });

    // 6. Compound: legal classifiers excluding bases.
    let expected: Vec<u64> = (0..n)
        .filter(|&i| {
            gt.models[i].domain.name() == "legal"
                && gt.models[i].transform.is_some()
                && gt.models[i].model.as_mlp().is_some()
        })
        .map(|i| i as u64)
        .collect();
    cases.push(Case {
        name: "compound filter",
        // `transform != ''` is true only when the field exists (missing
        // fields never match), i.e. only for derived models.
        mlql: "FIND MODELS WHERE domain = 'legal' AND task = 'classification' \
               AND transform != ''"
            .into(),
        expected,
        ordered: false,
    });
    cases
}

/// Runs E10.
pub fn run(quick: bool) -> Vec<Table> {
    let spec = if quick {
        LakeSpec::tiny(29)
    } else {
        LakeSpec::builder()
            .seed(29)
            .num_base_models(8)
            .derivations_per_base(4)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let config = LakeConfig::builder().name("e10-lake").build().expect("valid config");
    let lake = ModelLake::new(config);
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).expect("populate");
    lake.rebuild_version_graph(Some(
        (0..gt.models.len())
            .filter(|&i| gt.models[i].depth == 0)
            .map(|i| ModelId(i as u64))
            .collect(),
    ))
    .expect("graph");

    let mut t = Table::new(
        format!("E10: MLQL query suite over {} models", gt.models.len()),
        &["query", "correct", "results", "latency", "plan head"],
    );
    for case in build_cases(&lake, &gt) {
        // Parse once; run and explain share the prepared handle.
        let prepared = lake.prepare(&case.mlql).expect("query parses");
        let t0 = Instant::now();
        let hits = prepared.run().expect("query runs");
        let latency = t0.elapsed();
        // A second execution of the same handle must agree exactly.
        let rerun = prepared.run().expect("rerun");
        assert_eq!(hits, rerun, "prepared query '{}' not stable", case.name);
        let got: Vec<u64> = hits.iter().map(|h| h.id).collect();
        let correct = if case.ordered {
            got == case.expected
        } else {
            let mut a = got.clone();
            let mut b = case.expected.clone();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        };
        let plan = prepared.explain();
        t.row(vec![
            case.name.into(),
            if correct { "yes".into() } else { format!("NO ({got:?} vs {:?})", case.expected) },
            got.len().to_string(),
            ms(latency),
            plan[0].chars().take(40).collect(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_all_queries_correct() {
        let tables = run(true);
        let t = &tables[0];
        assert!(t.rows.len() >= 5);
        for row in &t.rows {
            assert_eq!(row[1], "yes", "query '{}' incorrect: {}", row[0], row[1]);
        }
    }
}
