//! E11 — Full-text & hybrid retrieval (DESIGN.md §16). Every model's
//! family vocabulary (the controlled pseudo-words `mlake-datagen` seeds
//! into honest cards) is used as a text query; recall@10 against the
//! family ground truth is graded for BM25 text-only, fingerprint
//! vector-only, and RRF hybrid retrieval.
//!
//! The lake is deliberately **part-documented**: every third model is
//! ingested with a skeleton card (the undocumented-lake condition of
//! §4 "Documenting Models"), so the text channel cannot see a third of
//! each family and the vector channel cannot read the curator's words.
//! That is the regime the paper argues model lakes live in — and where
//! fusion has to earn its keep: the acceptance bar is hybrid recall@10
//! at least the better single channel. On a fully documented lake the
//! controlled vocabulary makes BM25 perfect by construction and any
//! fusion could only tie it, which would measure nothing.

use crate::table::{f3, Table};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::honest_card;
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, GroundTruth, LakeSpec};
use mlake_fingerprint::FingerprintKind;

const K: usize = 10;
/// Every `UNDOCUMENTED_EVERY`-th model is ingested card-less.
const UNDOCUMENTED_EVERY: usize = 3;

/// Recall@k with the denominator capped at k: a family larger than k+1
/// cannot fit in the top-k, and that capacity limit is not a retrieval
/// failure.
fn recall_at_k(ranked: &[usize], relevant: &[usize], k: usize) -> f32 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|m| relevant.contains(m))
        .count();
    hits as f32 / relevant.len().min(k) as f32
}

struct Channel {
    name: &'static str,
    recall: f32,
}

fn grade(gt: &GroundTruth, rankings: &[Vec<usize>]) -> f32 {
    let mut total = 0.0f32;
    let mut counted = 0usize;
    for (q, ranked) in rankings.iter().enumerate() {
        let relevant: Vec<usize> = gt
            .family_members(gt.models[q].family)
            .into_iter()
            .filter(|&m| m != q)
            .collect();
        if relevant.is_empty() {
            continue;
        }
        counted += 1;
        total += recall_at_k(ranked, &relevant, K);
    }
    total / counted.max(1) as f32
}

/// Populates `lake` from `gt` with every third card withheld.
fn populate_part_documented(lake: &ModelLake, gt: &GroundTruth) {
    for (i, m) in gt.models.iter().enumerate() {
        let card = if i % UNDOCUMENTED_EVERY == 0 {
            None
        } else {
            Some(honest_card(gt, i))
        };
        lake.ingest_model(&m.name, &m.model, card).expect("ingest");
    }
}

/// Runs the three retrieval channels over every model-as-anchor query:
/// the query text is the anchor's family vocabulary (the words a curator
/// searching for that family would type), the anchor seeds the vector
/// channel, and the relevant set is the rest of the family.
fn channels(lake: &ModelLake, gt: &GroundTruth) -> Vec<Channel> {
    let n = gt.models.len();
    let kind = FingerprintKind::Hybrid;

    let mut text = Vec::with_capacity(n);
    let mut vector = Vec::with_capacity(n);
    let mut hybrid = Vec::with_capacity(n);
    for q in 0..n {
        let query = gt.family_vocab(gt.models[q].family).join(" ");
        // Anchor excluded from the text list so all three channels rank
        // the same candidate universe.
        text.push(
            lake.text_search(&query, K + 1)
                .expect("text search")
                .into_iter()
                .filter(|(id, _)| id.0 as usize != q)
                .take(K)
                .map(|(id, _)| id.0 as usize)
                .collect::<Vec<_>>(),
        );
        vector.push(
            lake.similar(ModelId(q as u64), kind, K)
                .expect("vector search")
                .into_iter()
                .map(|(id, _)| id.0 as usize)
                .collect::<Vec<_>>(),
        );
        hybrid.push(
            lake.hybrid_search(&query, ModelId(q as u64), kind, K)
                .expect("hybrid search")
                .into_iter()
                .map(|(id, _)| id.0 as usize)
                .collect::<Vec<_>>(),
        );
    }
    vec![
        Channel { name: "text-only (BM25)", recall: grade(gt, &text) },
        Channel { name: "vector-only (hybrid fingerprint)", recall: grade(gt, &vector) },
        Channel { name: "hybrid (RRF fusion)", recall: grade(gt, &hybrid) },
    ]
}

/// Runs E11.
pub fn run(quick: bool) -> Vec<Table> {
    let spec = if quick {
        LakeSpec::tiny(11)
    } else {
        LakeSpec::builder()
            .seed(11)
            .num_base_models(10)
            .derivations_per_base(5)
            .build()
            .expect("valid spec")
    };
    let gt = generate_lake(&spec);
    let lake =
        ModelLake::new(LakeConfig::builder().name("e11-lake").build().expect("valid config"));
    populate_part_documented(&lake, &gt);
    let n = gt.models.len();

    let mut t = Table::new(
        format!(
            "E11: family-vocabulary retrieval over {n} models, \
             1 in {UNDOCUMENTED_EVERY} undocumented (recall@{K})"
        ),
        &["channel", format!("recall@{K}").as_str()],
    );
    for ch in channels(&lake, &gt) {
        t.row(vec![ch.name.into(), f3(ch.recall)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_hybrid_beats_both_single_channels() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);
        let recall = |r: usize| t.rows[r][1].parse::<f32>().unwrap();
        let (text, vector, hybrid) = (recall(0), recall(1), recall(2));
        // The §16 acceptance bar: fusing the channels never loses to the
        // better one alone.
        assert!(
            hybrid >= text.max(vector),
            "hybrid {hybrid} < max(text {text}, vector {vector})"
        );
        // The part-documented design actually bites: text is blind to
        // the undocumented third, so it can't be perfect...
        assert!(text < 1.0, "text recall {text} — undocumented cards leaked into BM25?");
        // ...but the vocabulary still retrieves the documented members.
        assert!(text > 0.3, "vocab text recall too low: {text}");
    }

    #[test]
    fn recall_helper() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[2, 9], 3), 0.5);
        assert_eq!(recall_at_k(&[1], &[], 3), 0.0);
        assert_eq!(recall_at_k(&[7, 8], &[7, 8], 10), 1.0);
        // Denominator caps at k: 12 relevant can't fit in a top-3.
        let rel: Vec<usize> = (0..12).collect();
        assert_eq!(recall_at_k(&[0, 1, 2], &rel, 3), 1.0);
    }
}
