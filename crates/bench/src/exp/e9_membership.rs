//! E9 — Membership inference as history-free attribution (§4). Attack AUC
//! and advantage as functions of training-set size and regularisation: the
//! overfitting/leakage trade-off, plus the shadow-model attack's transfer.

use crate::table::{f3, Table};
use mlake_attribution::membership::{
    advantage, auc, loss_attack_scores, shadow_attack, threshold_accuracy,
};
use mlake_attribution::reconstruction::extraction_probe;
use mlake_attribution::softmax::{SoftmaxConfig, SoftmaxRegression};
use mlake_nn::LabeledData;
use mlake_tensor::{Matrix, Seed};

/// Weak-signal high-dimensional task: memorisable noise dimensions make
/// membership leakage measurable.
fn mia_data(n: usize, seed: u64) -> LabeledData {
    let mut rng = Seed::new(seed).derive("e9").rng();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let c = i % 2;
        let mut x = vec![0.0f32; 12];
        x[0] = if c == 0 { -0.5 } else { 0.5 } + rng.normal();
        for v in x.iter_mut().skip(1) {
            *v = rng.normal();
        }
        rows.push(x);
        labels.push(c);
    }
    LabeledData::new(Matrix::from_rows(&rows).expect("rows"), labels).expect("data")
}

/// Runs E9.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[16, 64] } else { &[8, 16, 32, 64, 128] };
    let overfit = SoftmaxConfig {
        l2: 1e-6,
        steps: if quick { 800 } else { 2000 },
        lr: 1.0,
    };

    let mut t1 = Table::new(
        "E9a: loss-threshold MIA vs training-set size (overfit regime, mean of 3 runs)",
        &["train n", "train acc", "holdout acc", "AUC", "advantage"],
    );
    let runs = 3u64;
    for (i, &n) in sizes.iter().enumerate() {
        let (mut tr, mut ho, mut a, mut adv) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for r in 0..runs {
            let members = mia_data(n, 100 + i as u64 * 10 + r);
            let non_members = mia_data(n, 200 + i as u64 * 10 + r);
            let model = SoftmaxRegression::train(&members, &overfit).expect("train");
            let scores = loss_attack_scores(&model, &members, &non_members).expect("scores");
            tr += model.accuracy(&members).expect("acc");
            ho += model.accuracy(&non_members).expect("acc");
            a += auc(&scores);
            adv += advantage(&scores);
        }
        let k = runs as f32;
        t1.row(vec![
            n.to_string(),
            f3(tr / k),
            f3(ho / k),
            f3(a / k),
            f3(adv / k),
        ]);
    }

    let mut t2 = Table::new(
        "E9b: regularisation as defence (n=16)",
        &["l2", "AUC", "advantage"],
    );
    for &l2 in &[1e-6f32, 0.01, 0.1, 1.0] {
        let members = mia_data(16, 300);
        let non_members = mia_data(16, 301);
        let cfg = SoftmaxConfig { l2, ..overfit };
        let model = SoftmaxRegression::train(&members, &cfg).expect("train");
        let scores = loss_attack_scores(&model, &members, &non_members).expect("scores");
        t2.row(vec![format!("{l2}"), f3(auc(&scores)), f3(advantage(&scores))]);
    }

    let mut t3 = Table::new(
        "E9c: shadow-model attack on the overfit target",
        &["shadows", "threshold accuracy"],
    );
    let aux = mia_data(96, 400);
    let target_train = mia_data(16, 401);
    let target_out = mia_data(16, 402);
    let target = SoftmaxRegression::train(&target_train, &overfit).expect("train");
    for &shadows in if quick { &[2usize, 4][..] } else { &[2usize, 4, 8][..] } {
        let (tau, scores) = shadow_attack(
            &aux,
            &target,
            &target_train,
            &target_out,
            shadows,
            &overfit,
            Seed::new(7),
        )
        .expect("shadow attack");
        t3.row(vec![shadows.to_string(), f3(threshold_accuracy(&scores, tau))]);
    }

    // ---- extraction probe on generative models ---------------------------
    // Carlini-style training-data extraction: a bigram LM trained on
    // low-entropy text regurgitates it verbatim under greedy decoding.
    let mut t4 = Table::new(
        "E9d: training-data extraction probe (bigram LM, greedy decode, span 16)",
        &["corpus", "mean verbatim len (train)", "mean verbatim len (held-out)"],
    );
    let mut srng = Seed::new(500).rng();
    for (label, corpus) in [
        (
            "structured (cycle, memorisable)",
            (0..600).map(|i| i % 24).collect::<Vec<usize>>(),
        ),
        (
            "high-entropy (uniform random)",
            (0..600).map(|_| srng.index(24)).collect::<Vec<usize>>(),
        ),
    ] {
        let mut lm = mlake_nn::NgramLm::new(24, 2, 0.1).expect("lm");
        lm.add_counts(&corpus, 1.0).expect("counts");
        let on = extraction_probe(&lm, &corpus, 16).expect("probe");
        let mut hrng = Seed::new(501).derive(label).rng();
        let held: Vec<usize> = (0..600).map(|_| hrng.index(24)).collect();
        let off = extraction_probe(&lm, &held, 16).expect("probe");
        t4.row(vec![
            label.into(),
            f3(on.mean_verbatim_len),
            f3(off.mean_verbatim_len),
        ]);
    }
    vec![t1, t2, t3, t4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_small_sets_leak_more() {
        let tables = run(true);
        let t1 = &tables[0];
        let auc_small: f32 = t1.rows[0][3].parse().unwrap();
        let auc_large: f32 = t1.rows[1][3].parse().unwrap();
        // Smaller training sets leak at least as much (allowing noise).
        assert!(auc_small >= auc_large - 0.15, "{auc_small} vs {auc_large}");
        assert!(auc_small > 0.55, "small-set AUC {auc_small}");
    }
}
