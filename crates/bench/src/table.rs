//! Minimal fixed-width table rendering for experiment output.

/// A printable results table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row must match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics in debug builds on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with three decimals.
pub fn f3(x: f32) -> String {
    format!("{x:.3}")
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

/// Formats a nanosecond reading with an adaptive unit (ns/µs/ms/s).
pub fn ns(nanos: u64) -> String {
    let n = nanos as f64;
    if n < 1e3 {
        format!("{nanos}ns")
    } else if n < 1e6 {
        format!("{:.2}µs", n / 1e3)
    } else if n < 1e9 {
        format!("{:.2}ms", n / 1e6)
    } else {
        format!("{:.2}s", n / 1e9)
    }
}

/// Renders an observability [`mlake_obs::MetricsSnapshot`] as two tables:
/// latency histograms (count/mean/p50/p95/p99/max) and counters (gauges
/// fold in as `value (peak)` rows). Empty sections are omitted.
pub fn metrics_tables(title_prefix: &str, snap: &mlake_obs::MetricsSnapshot) -> Vec<Table> {
    let mut out = Vec::new();
    if !snap.histograms.is_empty() {
        let mut t = Table::new(
            format!("{title_prefix}: span latencies"),
            &["span", "count", "mean", "p50", "p95", "p99", "max"],
        );
        for h in &snap.histograms {
            t.row(vec![
                h.name.clone(),
                h.count.to_string(),
                ns(h.mean_ns),
                ns(h.p50_ns),
                ns(h.p95_ns),
                ns(h.p99_ns),
                ns(h.max_ns),
            ]);
        }
        out.push(t);
    }
    if !snap.counters.is_empty() || !snap.gauges.is_empty() {
        let mut t = Table::new(
            format!("{title_prefix}: counters"),
            &["metric", "value"],
        );
        for (name, v) in &snap.counters {
            t.row(vec![name.clone(), v.to_string()]);
        }
        for (name, v, peak) in &snap.gauges {
            t.row(vec![name.clone(), format!("{v} (peak {peak})")]);
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T1: demo", &["method", "f1"]);
        t.row(vec!["ours".into(), "0.91".into()]);
        t.row(vec!["baseline-long-name".into(), "0.12".into()]);
        let r = t.render();
        assert!(r.contains("== T1: demo =="));
        assert!(r.contains("method"));
        assert!(r.lines().count() >= 5);
        // Columns aligned: both data lines have 'f1' column at same offset.
        let lines: Vec<&str> = r.lines().collect();
        let col = lines[1].find("f1").unwrap();
        assert!(lines[3].len() > col);
    }

    #[test]
    fn helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert!(ms(std::time::Duration::from_millis(5)).starts_with("5.00"));
    }
}
