//! # mlake-bench
//!
//! The experiment harness. Every experiment in DESIGN.md §6 / EXPERIMENTS.md
//! is a function here returning a [`table::Table`]; the `experiments` binary
//! prints them, and unit tests run shrunken configurations to keep the
//! harness itself correct. Criterion benches in `benches/` cover the
//! latency-shaped measurements.

pub mod exp;
pub mod table;

pub use table::Table;
