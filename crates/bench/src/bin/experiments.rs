//! Experiment driver: regenerates every table in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p mlake-bench --bin experiments --release -- all
//! cargo run -p mlake-bench --bin experiments --release -- e1 e5
//! cargo run -p mlake-bench --bin experiments --release -- --quick all
//! ```

use mlake_bench::exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        exp::ALL.to_vec()
    } else {
        requested
    };
    let mut unknown = Vec::new();
    for id in ids {
        match exp::run(id, quick) {
            Some(tables) => {
                for table in tables {
                    table.print();
                }
            }
            None => unknown.push(id.to_string()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} (known: {})",
            unknown.join(", "),
            exp::ALL.join(", ")
        );
        std::process::exit(2);
    }
}
