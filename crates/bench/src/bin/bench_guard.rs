//! Performance regression guard for CI.
//!
//! Times the tiled 512x512 matmul (the parallel layer's flagship kernel;
//! 13.94ms baseline recorded in CHANGES.md) and fails if the best-of-N
//! run regresses more than 25% past that baseline. Best-of-N rather than
//! mean keeps the guard robust to scheduler noise on loaded CI hosts.
//!
//! ```text
//! cargo run -p mlake-bench --bin bench_guard --release
//! ```
//!
//! Override knobs (env):
//!   MLAKE_BENCH_GUARD_MS — threshold in ms (default 17.4 = 13.94 * 1.25)
//!   MLAKE_GUARD_REPS     — timed repetitions (default 10)

use mlake_tensor::{Matrix, Pcg64};
use std::time::Instant;

const DEFAULT_BUDGET_MS: f64 = 17.4;
const DEFAULT_REPS: usize = 10;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let budget_ms: f64 = env_or("MLAKE_BENCH_GUARD_MS", DEFAULT_BUDGET_MS);
    let reps: usize = env_or("MLAKE_GUARD_REPS", DEFAULT_REPS).max(1);
    let n = 512;
    let mut rng = Pcg64::new(41);
    let a = Matrix::randn(n, n, &mut rng);
    let b = Matrix::randn(n, n, &mut rng);

    // Warm up: first run pays pool spawn + page faults.
    std::hint::black_box(a.matmul(&b).expect("matmul"));

    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(a.matmul(&b).expect("matmul"));
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    println!("bench_guard: matmul {n}x{n} tiled best-of-{reps} = {best_ms:.2}ms (budget {budget_ms:.2}ms)");
    if best_ms > budget_ms {
        eprintln!(
            "bench_guard: FAIL — {best_ms:.2}ms exceeds the {budget_ms:.2}ms budget \
             (13.94ms baseline + 25%); the tiled matmul path has regressed"
        );
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
