//! Performance regression guard for CI.
//!
//! Four gates, all best-of-N (robust to scheduler noise on loaded hosts):
//!
//! 1. **Tiled matmul** — times the 512x512 tiled matmul (the parallel
//!    layer's flagship kernel; 13.94ms baseline recorded in CHANGES.md)
//!    and fails on a >25% regression past that baseline.
//! 2. **SQ8 flat scan** — times 32 exact top-10 searches over a 20k x 64
//!    flat index in f32 and in `Precision::Sq8Rescore`, and fails unless
//!    the quantized scan is at least 1.3x faster (ISSUE PR 4 acceptance
//!    criterion) and within an absolute budget.
//! 3. **Sharded scatter-gather** — runs the same 32-query batch over a
//!    4-way sharded flat index (ISSUE PR 6), fails unless the merged
//!    results are bit-identical to the single-shard scan (the merge
//!    invariant at equal precision: same ids, same distance bits) and
//!    the batch sustains the queries/s floor.
//! 4. **WAL append throughput** — appends 4096 records of 256B under
//!    group commit (`SyncPolicy::Batch { every: 64 }`) and fails below
//!    the ops/s floor; the WAL's whole point is that per-mutation
//!    durability stays cheap.
//! 5. **HTTP serving** (ISSUE PR 7) — binds an in-process `mlake-server`
//!    over an ephemeral lake and drives it with `mlake-load`'s
//!    closed-loop generator (4 clients, mixed read/write); fails below
//!    the requests/s floor or above the p99 latency budget, with
//!    percentiles read from the obs histograms (client-side timing, so
//!    the gate holds in both observability modes).
//!
//! 6. **Blockstore open / delta size** (ISSUE PR 9) — lazy v3 open beats
//!    the eager legacy path and delta segments stay O(ops since last
//!    persist), not O(lake).
//! 7. **Text & hybrid retrieval** (ISSUE PR 10) — populates an honest
//!    lake from datagen ground truth, times a family-vocabulary BM25
//!    query batch against `MLAKE_BENCH_GUARD_TEXT_MS`, and fails unless
//!    hybrid recall@10 is at least the better of text-only and
//!    vector-only — the §16 fusion acceptance bar.
//!
//! ```text
//! cargo run -p mlake-bench --bin bench_guard --release
//! ```
//!
//! Override knobs (env):
//!   MLAKE_BENCH_GUARD_MS        — matmul threshold in ms (default 17.4 = 13.94 * 1.25)
//!   MLAKE_BENCH_GUARD_SQ8_MS    — SQ8 scan budget in ms for the 32-query batch
//!   MLAKE_BENCH_GUARD_SQ8_RATIO — required f32/sq8 speedup (default 1.3)
//!   MLAKE_BENCH_GUARD_SHARD_OPS — sharded scatter-gather floor in queries/s (default 200)
//!   MLAKE_BENCH_GUARD_WAL_OPS   — WAL group-commit append floor in ops/s (default 5000)
//!   MLAKE_BENCH_GUARD_HTTP_OPS  — HTTP closed-loop floor in requests/s (default 100)
//!   MLAKE_BENCH_GUARD_HTTP_P99_MS — HTTP p99 latency budget in ms (default 250)
//!   MLAKE_BENCH_GUARD_OPEN_MS   — lazy v3 open budget in ms (default 150)
//!   MLAKE_BENCH_GUARD_OPEN_RATIO — required eager/lazy open speedup (default 5)
//!   MLAKE_BENCH_GUARD_TEXT_MS   — BM25 query-batch budget in ms (default 50)
//!   MLAKE_GUARD_REPS            — timed repetitions (default 10)

use mlake_bench::exp::e5_index::embeddings;
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_index::{FlatIndex, Precision, ShardedIndex, VectorIndex};
use mlake_server::{LakeRouter, Server, ServerConfig};
use mlake_tensor::{Matrix, Pcg64};
use mlake_wal::{SyncPolicy, Wal, WalOptions};
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_BUDGET_MS: f64 = 17.4;
const DEFAULT_SQ8_BUDGET_MS: f64 = 60.0;
const DEFAULT_SQ8_RATIO: f64 = 1.3;
const DEFAULT_SHARD_OPS: f64 = 200.0;
const DEFAULT_WAL_OPS: f64 = 5_000.0;
const DEFAULT_HTTP_OPS: f64 = 100.0;
const DEFAULT_HTTP_P99_MS: f64 = 250.0;
const DEFAULT_OPEN_MS: f64 = 150.0;
const DEFAULT_OPEN_RATIO: f64 = 5.0;
const DEFAULT_TEXT_MS: f64 = 50.0;
const DEFAULT_REPS: usize = 10;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds (after one warm-up).
fn best_of_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up: first run pays pool spawn + page faults
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn guard_matmul(reps: usize) -> bool {
    let budget_ms: f64 = env_or("MLAKE_BENCH_GUARD_MS", DEFAULT_BUDGET_MS);
    let n = 512;
    let mut rng = Pcg64::new(41);
    let a = Matrix::randn(n, n, &mut rng);
    let b = Matrix::randn(n, n, &mut rng);
    let best_ms = best_of_ms(reps, || {
        std::hint::black_box(a.matmul(&b).expect("matmul"));
    });
    println!("bench_guard: matmul {n}x{n} tiled best-of-{reps} = {best_ms:.2}ms (budget {budget_ms:.2}ms)");
    if best_ms > budget_ms {
        eprintln!(
            "bench_guard: FAIL — {best_ms:.2}ms exceeds the {budget_ms:.2}ms budget \
             (13.94ms baseline + 25%); the tiled matmul path has regressed"
        );
        return false;
    }
    true
}

fn guard_sq8_scan(reps: usize) -> bool {
    let budget_ms: f64 = env_or("MLAKE_BENCH_GUARD_SQ8_MS", DEFAULT_SQ8_BUDGET_MS);
    let ratio_floor: f64 = env_or("MLAKE_BENCH_GUARD_SQ8_RATIO", DEFAULT_SQ8_RATIO);
    let (n, dim, k) = (20_000, 64, 10);
    let items: Vec<(u64, Vec<f32>)> = embeddings(n, dim, 31)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();
    let queries = embeddings(32, dim, 77);
    let mut f32_idx = FlatIndex::new();
    let mut sq8_idx = FlatIndex::with_precision(Precision::Sq8Rescore);
    f32_idx.insert_batch(&items).expect("insert f32");
    sq8_idx.insert_batch(&items).expect("insert sq8");

    let f32_ms = best_of_ms(reps, || {
        std::hint::black_box(f32_idx.search_many(&queries, k).expect("f32 scan"));
    });
    let sq8_ms = best_of_ms(reps, || {
        std::hint::black_box(sq8_idx.search_many(&queries, k).expect("sq8 scan"));
    });
    let speedup = f32_ms / sq8_ms;
    println!(
        "bench_guard: flat scan {n}x{dim}, 32 queries, k={k}, best-of-{reps}: \
         f32 {f32_ms:.2}ms, sq8 {sq8_ms:.2}ms, speedup {speedup:.2}x \
         (floor {ratio_floor:.2}x, budget {budget_ms:.2}ms)"
    );
    let mut ok = true;
    if speedup < ratio_floor {
        eprintln!(
            "bench_guard: FAIL — SQ8 scan speedup {speedup:.2}x is below the \
             {ratio_floor:.2}x floor; the quantized scan path has regressed"
        );
        ok = false;
    }
    if sq8_ms > budget_ms {
        eprintln!(
            "bench_guard: FAIL — SQ8 scan {sq8_ms:.2}ms exceeds the {budget_ms:.2}ms budget"
        );
        ok = false;
    }
    ok
}

fn guard_sharded(reps: usize) -> bool {
    let floor_ops: f64 = env_or("MLAKE_BENCH_GUARD_SHARD_OPS", DEFAULT_SHARD_OPS);
    let (n, dim, k, shards) = (20_000, 64, 10, 4);
    let items: Vec<(u64, Vec<f32>)> = embeddings(n, dim, 31)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();
    let queries = embeddings(32, dim, 77);
    let mut single = FlatIndex::new();
    single.insert_batch(&items).expect("insert single");
    let mut sharded = ShardedIndex::new(shards, FlatIndex::new);
    sharded.insert_batch(&items).expect("insert sharded");

    // Merge invariant at equal precision: the scatter-gather answer must
    // be bit-identical to the single-shard scan — same ids, same distance
    // bits, every query.
    let want = single.search_many(&queries, k).expect("single scan");
    let got = sharded.search_many(&queries, k).expect("sharded scan");
    for (q, (w, g)) in want.iter().zip(&got).enumerate() {
        let identical = w.len() == g.len()
            && w.iter().zip(g).all(|(wh, gh)| {
                wh.id == gh.id && wh.distance.to_bits() == gh.distance.to_bits()
            });
        if !identical {
            eprintln!(
                "bench_guard: FAIL — {shards}-shard merged top-{k} diverges from the \
                 single-shard scan on query {q}; the merge invariant is broken"
            );
            return false;
        }
    }

    let best_ms = best_of_ms(reps, || {
        std::hint::black_box(sharded.search_many(&queries, k).expect("sharded scan"));
    });
    let ops = queries.len() as f64 / (best_ms / 1e3);
    println!(
        "bench_guard: sharded scatter-gather {n}x{dim}, {shards} shards, 32 queries, k={k}, \
         best-of-{reps} = {best_ms:.2}ms ({ops:.0} queries/s, floor {floor_ops:.0}), \
         merge bit-identical to single shard"
    );
    if ops < floor_ops {
        eprintln!(
            "bench_guard: FAIL — sharded scatter-gather {ops:.0} queries/s is below the \
             {floor_ops:.0} queries/s floor; the scatter-gather path has regressed"
        );
        return false;
    }
    true
}

fn guard_wal_append(reps: usize) -> bool {
    let floor_ops: f64 = env_or("MLAKE_BENCH_GUARD_WAL_OPS", DEFAULT_WAL_OPS);
    let (n, payload) = (4_096usize, [0x5au8; 256]);
    let dir = std::env::temp_dir().join(format!("mlake-guard-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = WalOptions {
        sync: SyncPolicy::Batch { every: 64 },
        ..WalOptions::default()
    };
    let wal = Wal::open(&dir, opts).expect("open guard wal").0;
    let best_ms = best_of_ms(reps, || {
        for _ in 0..n {
            wal.append(&payload).expect("append");
        }
        wal.sync().expect("sync");
    });
    let ops = n as f64 / (best_ms / 1e3);
    println!(
        "bench_guard: wal append {n} x {}B, group commit every 64, best-of-{reps} = \
         {best_ms:.2}ms ({ops:.0} ops/s, floor {floor_ops:.0} ops/s)",
        payload.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
    if ops < floor_ops {
        eprintln!(
            "bench_guard: FAIL — WAL append throughput {ops:.0} ops/s is below the \
             {floor_ops:.0} ops/s floor; the durable-append path has regressed"
        );
        return false;
    }
    true
}

fn guard_http() -> bool {
    let floor_ops: f64 = env_or("MLAKE_BENCH_GUARD_HTTP_OPS", DEFAULT_HTTP_OPS);
    let p99_budget_ms: f64 = env_or("MLAKE_BENCH_GUARD_HTTP_P99_MS", DEFAULT_HTTP_P99_MS);
    let (clients, ops_per_client) = (4usize, 64usize);

    // An ephemeral lake with a handful of models to read against.
    let lake = ModelLake::new(LakeConfig::builder().name("guard-http").build().expect("config"));
    let mut names = Vec::new();
    for i in 0..4u64 {
        let mut rng = Pcg64::new(900 + i);
        let model = mlake_nn::Model::Mlp(
            mlake_nn::Mlp::new(
                vec![8, 4, 3],
                mlake_nn::Activation::Relu,
                mlake_tensor::init::Init::HeNormal,
                &mut rng,
            )
            .expect("layer sizes"),
        );
        let name = format!("guard-m{i}");
        lake.ingest_model(&name, &model, None).expect("ingest");
        names.push(name);
    }
    let router = Arc::new(LakeRouter::new());
    router.register("main", lake);
    let server = Server::bind(Arc::clone(&router), "127.0.0.1:0", ServerConfig::default())
        .expect("bind guard server");

    // Closed loop: every client keeps exactly one request in flight,
    // mixing list / resolve / MLQL / similar reads with card-update
    // writes (1 in 5). Percentiles come from the obs `load.http`
    // histogram — the same machinery the server's own spans use.
    let workload = mlake_load::mixed_workload("main", names, 5);
    let report = mlake_load::run_closed_loop(
        server.addr(),
        clients,
        ops_per_client,
        std::time::Duration::ZERO,
        workload,
    );
    server.shutdown().expect("guard server shutdown");
    println!(
        "bench_guard: http closed-loop {clients} clients x {ops_per_client} ops: {}",
        report.summary()
    );

    let mut ok = true;
    if report.failed > 0 || report.transport_errors > 0 {
        eprintln!(
            "bench_guard: FAIL — HTTP load run saw {} failed responses and {} transport \
             errors; the serving path is broken",
            report.failed, report.transport_errors
        );
        ok = false;
    }
    if report.ops_per_s < floor_ops {
        eprintln!(
            "bench_guard: FAIL — HTTP closed loop {:.0} requests/s is below the \
             {floor_ops:.0} requests/s floor; the serving path has regressed",
            report.ops_per_s
        );
        ok = false;
    }
    // The load generator times requests client-side, so this gate holds
    // in both observability modes.
    if report.p99_ms > p99_budget_ms {
        eprintln!(
            "bench_guard: FAIL — HTTP p99 {:.2}ms exceeds the {p99_budget_ms:.2}ms budget; \
             served-path tail latency has regressed",
            report.p99_ms
        );
        ok = false;
    }
    ok
}

/// Text & hybrid retrieval gates (DESIGN.md §16): (a) RRF fusion never
/// loses to the better single channel on family-vocabulary recall@10
/// (reuses the E11 experiment at quick size, so the gate and the
/// experiment can't drift apart); (b) a 32-query BM25 batch over a
/// populated honest lake fits the `MLAKE_BENCH_GUARD_TEXT_MS` budget.
fn guard_text(reps: usize) -> bool {
    let budget_ms: f64 = env_or("MLAKE_BENCH_GUARD_TEXT_MS", DEFAULT_TEXT_MS);

    // (a) Fusion quality.
    let tables = mlake_bench::exp::e11_textsearch::run(true);
    let rows = &tables[0].rows;
    let recall = |r: usize| rows[r][1].parse::<f32>().unwrap_or(0.0);
    let (text, vector, hybrid) = (recall(0), recall(1), recall(2));
    println!(
        "bench_guard: retrieval recall@10: text {text:.3}, vector {vector:.3}, \
         hybrid {hybrid:.3} (floor: max of the single channels)"
    );
    let mut ok = true;
    if hybrid < text.max(vector) {
        eprintln!(
            "bench_guard: FAIL — hybrid recall@10 {hybrid:.3} is below \
             max(text {text:.3}, vector {vector:.3}); RRF fusion has regressed"
        );
        ok = false;
    }

    // (b) BM25 batch latency over an honest lake.
    let gt = mlake_datagen::generate_lake(&mlake_datagen::LakeSpec::tiny(17));
    let lake = ModelLake::new(LakeConfig::builder().name("guard-text").build().expect("config"));
    mlake_core::populate::populate_from_ground_truth(
        &lake,
        &gt,
        mlake_core::populate::CardPolicy::Honest,
    )
    .expect("populate");
    let n = gt.models.len();
    let queries: Vec<String> = (0..32)
        .map(|i| gt.family_vocab(gt.models[i % n].family).join(" "))
        .collect();
    // Results are cached per (query, k, generation), which would let every
    // rep after the first time a hash lookup instead of BM25. Appending a
    // fresh nonsense token each rep defeats the cache without changing
    // the scores — unknown terms contribute nothing to BM25.
    let mut nonce = 0u64;
    let best_ms = best_of_ms(reps, || {
        nonce += 1;
        for q in &queries {
            std::hint::black_box(
                lake.text_search(&format!("{q} zz{nonce}"), 10).expect("text search"),
            );
        }
    });
    println!(
        "bench_guard: bm25 batch 32 queries over {n} models, k=10, best-of-{reps} = \
         {best_ms:.2}ms (budget {budget_ms:.2}ms)"
    );
    if best_ms > budget_ms {
        eprintln!(
            "bench_guard: FAIL — BM25 query batch {best_ms:.2}ms exceeds the \
             {budget_ms:.2}ms budget; the text search path has regressed"
        );
        ok = false;
    }
    ok
}

/// Builds a persisted v3 lake of `n` distinct small MLPs under `dir`.
fn build_lake(dir: &std::path::Path, n: u64) -> ModelLake {
    let _ = std::fs::remove_dir_all(dir);
    let lake = ModelLake::create(dir, LakeConfig::default()).expect("create guard lake");
    for i in 0..n {
        let mut rng = Pcg64::new(0xb10c + i);
        let model = mlake_nn::Model::Mlp(
            mlake_nn::Mlp::new(
                vec![8, 4, 3],
                mlake_nn::Activation::Relu,
                mlake_tensor::init::Init::HeNormal,
                &mut rng,
            )
            .expect("mlp"),
        );
        lake.ingest_model(&format!("m-{i}"), &model, None).expect("ingest");
    }
    lake.persist(dir).expect("persist");
    lake
}

/// Size in bytes of the highest-numbered sealed segment under `dir`.
fn newest_seg_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir.join("segs"))
        .expect("segs dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            p.extension().is_some_and(|x| x == "seg").then_some(p)
        })
        .max()
        .map(|p| std::fs::metadata(p).expect("seg metadata").len())
        .expect("no sealed segments")
}

/// Block-segment storage gates (DESIGN.md §15): (a) lazy v3 open beats
/// the eager legacy path by `MLAKE_BENCH_GUARD_OPEN_RATIO` and fits the
/// `MLAKE_BENCH_GUARD_OPEN_MS` budget; (b) the delta segment written by a
/// persist covering one ingest has the same size no matter how big the
/// lake is — persist cost is O(ops since last persist), not O(lake).
fn guard_blockstore(reps: usize) -> bool {
    let open_budget_ms: f64 = env_or("MLAKE_BENCH_GUARD_OPEN_MS", DEFAULT_OPEN_MS);
    let ratio_floor: f64 = env_or("MLAKE_BENCH_GUARD_OPEN_RATIO", DEFAULT_OPEN_RATIO);
    let n_large = 200u64;
    let n_small = 20u64;
    let pid = std::process::id();
    let v3 = std::env::temp_dir().join(format!("mlake-guard-bs-v3-{pid}"));
    let v2 = std::env::temp_dir().join(format!("mlake-guard-bs-v2-{pid}"));
    let small = std::env::temp_dir().join(format!("mlake-guard-bs-small-{pid}"));

    // (a) Open: lazy v3 vs the eager blob-loading, fingerprint-recomputing
    // legacy path over the identical catalogue.
    {
        let lake = build_lake(&v3, n_large);
        let _ = std::fs::remove_dir_all(&v2);
        lake.export_v2(&v2).expect("export v2 baseline");
    }
    let lazy_ms = best_of_ms(reps, || {
        ModelLake::open(&v3, LakeConfig::default()).expect("lazy open");
    });
    let eager_ms = best_of_ms(reps, || {
        ModelLake::open(&v2, LakeConfig::default()).expect("eager open");
    });
    let ratio = eager_ms / lazy_ms.max(1e-6);
    println!(
        "bench_guard: blockstore open ({n_large} models), lazy best-of-{reps} = \
         {lazy_ms:.2}ms, eager = {eager_ms:.2}ms ({ratio:.1}x, floor {ratio_floor:.1}x, \
         budget {open_budget_ms:.0}ms)"
    );
    let mut ok = true;
    if lazy_ms > open_budget_ms {
        eprintln!(
            "bench_guard: FAIL — lazy open took {lazy_ms:.2}ms, over the \
             {open_budget_ms:.0}ms budget; open is reading more than superblock + segments"
        );
        ok = false;
    }
    if ratio < ratio_floor {
        eprintln!(
            "bench_guard: FAIL — lazy open is only {ratio:.1}x faster than eager \
             (floor {ratio_floor:.1}x); blob paging has regressed toward eager loading"
        );
        ok = false;
    }

    // (b) Persist-after-one-ingest writes a delta whose size does not
    // depend on lake size (byte-exact check, no timing flake).
    let large_lake = ModelLake::open(&v3, LakeConfig::default()).expect("reopen large");
    let small_lake = build_lake(&small, n_small);
    for (lake, dir) in [(&large_lake, &v3), (&small_lake, &small)] {
        let mut rng = Pcg64::new(0xde17a);
        let model = mlake_nn::Model::Mlp(
            mlake_nn::Mlp::new(
                vec![8, 4, 3],
                mlake_nn::Activation::Relu,
                mlake_tensor::init::Init::HeNormal,
                &mut rng,
            )
            .expect("mlp"),
        );
        lake.ingest_model("delta-probe", &model, None).expect("ingest delta");
        lake.persist(dir).expect("delta persist");
    }
    let (large_delta, small_delta) = (newest_seg_bytes(&v3), newest_seg_bytes(&small));
    println!(
        "bench_guard: blockstore delta segment after 1 ingest: {large_delta}B at \
         {n_large} models vs {small_delta}B at {n_small} models"
    );
    if large_delta > small_delta.saturating_mul(2) {
        eprintln!(
            "bench_guard: FAIL — the delta segment grows with lake size \
             ({large_delta}B vs {small_delta}B); persist is no longer incremental"
        );
        ok = false;
    }
    let _ = std::fs::remove_dir_all(&v3);
    let _ = std::fs::remove_dir_all(&v2);
    let _ = std::fs::remove_dir_all(&small);
    ok
}

fn main() {
    let reps: usize = env_or("MLAKE_GUARD_REPS", DEFAULT_REPS).max(1);
    let ok = guard_matmul(reps)
        & guard_sq8_scan(reps)
        & guard_sharded(reps)
        & guard_wal_append(reps)
        & guard_blockstore(reps)
        & guard_http()
        & guard_text(reps);
    if !ok {
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
