//! Performance regression guard for CI.
//!
//! Four gates, all best-of-N (robust to scheduler noise on loaded hosts):
//!
//! 1. **Tiled matmul** — times the 512x512 tiled matmul (the parallel
//!    layer's flagship kernel; 13.94ms baseline recorded in CHANGES.md)
//!    and fails on a >25% regression past that baseline.
//! 2. **SQ8 flat scan** — times 32 exact top-10 searches over a 20k x 64
//!    flat index in f32 and in `Precision::Sq8Rescore`, and fails unless
//!    the quantized scan is at least 1.3x faster (ISSUE PR 4 acceptance
//!    criterion) and within an absolute budget.
//! 3. **Sharded scatter-gather** — runs the same 32-query batch over a
//!    4-way sharded flat index (ISSUE PR 6), fails unless the merged
//!    results are bit-identical to the single-shard scan (the merge
//!    invariant at equal precision: same ids, same distance bits) and
//!    the batch sustains the queries/s floor.
//! 4. **WAL append throughput** — appends 4096 records of 256B under
//!    group commit (`SyncPolicy::Batch { every: 64 }`) and fails below
//!    the ops/s floor; the WAL's whole point is that per-mutation
//!    durability stays cheap.
//!
//! ```text
//! cargo run -p mlake-bench --bin bench_guard --release
//! ```
//!
//! Override knobs (env):
//!   MLAKE_BENCH_GUARD_MS        — matmul threshold in ms (default 17.4 = 13.94 * 1.25)
//!   MLAKE_BENCH_GUARD_SQ8_MS    — SQ8 scan budget in ms for the 32-query batch
//!   MLAKE_BENCH_GUARD_SQ8_RATIO — required f32/sq8 speedup (default 1.3)
//!   MLAKE_BENCH_GUARD_SHARD_OPS — sharded scatter-gather floor in queries/s (default 200)
//!   MLAKE_BENCH_GUARD_WAL_OPS   — WAL group-commit append floor in ops/s (default 5000)
//!   MLAKE_GUARD_REPS            — timed repetitions (default 10)

use mlake_bench::exp::e5_index::embeddings;
use mlake_index::{FlatIndex, Precision, ShardedIndex, VectorIndex};
use mlake_tensor::{Matrix, Pcg64};
use mlake_wal::{SyncPolicy, Wal, WalOptions};
use std::time::Instant;

const DEFAULT_BUDGET_MS: f64 = 17.4;
const DEFAULT_SQ8_BUDGET_MS: f64 = 60.0;
const DEFAULT_SQ8_RATIO: f64 = 1.3;
const DEFAULT_SHARD_OPS: f64 = 200.0;
const DEFAULT_WAL_OPS: f64 = 5_000.0;
const DEFAULT_REPS: usize = 10;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds (after one warm-up).
fn best_of_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up: first run pays pool spawn + page faults
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn guard_matmul(reps: usize) -> bool {
    let budget_ms: f64 = env_or("MLAKE_BENCH_GUARD_MS", DEFAULT_BUDGET_MS);
    let n = 512;
    let mut rng = Pcg64::new(41);
    let a = Matrix::randn(n, n, &mut rng);
    let b = Matrix::randn(n, n, &mut rng);
    let best_ms = best_of_ms(reps, || {
        std::hint::black_box(a.matmul(&b).expect("matmul"));
    });
    println!("bench_guard: matmul {n}x{n} tiled best-of-{reps} = {best_ms:.2}ms (budget {budget_ms:.2}ms)");
    if best_ms > budget_ms {
        eprintln!(
            "bench_guard: FAIL — {best_ms:.2}ms exceeds the {budget_ms:.2}ms budget \
             (13.94ms baseline + 25%); the tiled matmul path has regressed"
        );
        return false;
    }
    true
}

fn guard_sq8_scan(reps: usize) -> bool {
    let budget_ms: f64 = env_or("MLAKE_BENCH_GUARD_SQ8_MS", DEFAULT_SQ8_BUDGET_MS);
    let ratio_floor: f64 = env_or("MLAKE_BENCH_GUARD_SQ8_RATIO", DEFAULT_SQ8_RATIO);
    let (n, dim, k) = (20_000, 64, 10);
    let items: Vec<(u64, Vec<f32>)> = embeddings(n, dim, 31)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();
    let queries = embeddings(32, dim, 77);
    let mut f32_idx = FlatIndex::new();
    let mut sq8_idx = FlatIndex::with_precision(Precision::Sq8Rescore);
    f32_idx.insert_batch(&items).expect("insert f32");
    sq8_idx.insert_batch(&items).expect("insert sq8");

    let f32_ms = best_of_ms(reps, || {
        std::hint::black_box(f32_idx.search_many(&queries, k).expect("f32 scan"));
    });
    let sq8_ms = best_of_ms(reps, || {
        std::hint::black_box(sq8_idx.search_many(&queries, k).expect("sq8 scan"));
    });
    let speedup = f32_ms / sq8_ms;
    println!(
        "bench_guard: flat scan {n}x{dim}, 32 queries, k={k}, best-of-{reps}: \
         f32 {f32_ms:.2}ms, sq8 {sq8_ms:.2}ms, speedup {speedup:.2}x \
         (floor {ratio_floor:.2}x, budget {budget_ms:.2}ms)"
    );
    let mut ok = true;
    if speedup < ratio_floor {
        eprintln!(
            "bench_guard: FAIL — SQ8 scan speedup {speedup:.2}x is below the \
             {ratio_floor:.2}x floor; the quantized scan path has regressed"
        );
        ok = false;
    }
    if sq8_ms > budget_ms {
        eprintln!(
            "bench_guard: FAIL — SQ8 scan {sq8_ms:.2}ms exceeds the {budget_ms:.2}ms budget"
        );
        ok = false;
    }
    ok
}

fn guard_sharded(reps: usize) -> bool {
    let floor_ops: f64 = env_or("MLAKE_BENCH_GUARD_SHARD_OPS", DEFAULT_SHARD_OPS);
    let (n, dim, k, shards) = (20_000, 64, 10, 4);
    let items: Vec<(u64, Vec<f32>)> = embeddings(n, dim, 31)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();
    let queries = embeddings(32, dim, 77);
    let mut single = FlatIndex::new();
    single.insert_batch(&items).expect("insert single");
    let mut sharded = ShardedIndex::new(shards, FlatIndex::new);
    sharded.insert_batch(&items).expect("insert sharded");

    // Merge invariant at equal precision: the scatter-gather answer must
    // be bit-identical to the single-shard scan — same ids, same distance
    // bits, every query.
    let want = single.search_many(&queries, k).expect("single scan");
    let got = sharded.search_many(&queries, k).expect("sharded scan");
    for (q, (w, g)) in want.iter().zip(&got).enumerate() {
        let identical = w.len() == g.len()
            && w.iter().zip(g).all(|(wh, gh)| {
                wh.id == gh.id && wh.distance.to_bits() == gh.distance.to_bits()
            });
        if !identical {
            eprintln!(
                "bench_guard: FAIL — {shards}-shard merged top-{k} diverges from the \
                 single-shard scan on query {q}; the merge invariant is broken"
            );
            return false;
        }
    }

    let best_ms = best_of_ms(reps, || {
        std::hint::black_box(sharded.search_many(&queries, k).expect("sharded scan"));
    });
    let ops = queries.len() as f64 / (best_ms / 1e3);
    println!(
        "bench_guard: sharded scatter-gather {n}x{dim}, {shards} shards, 32 queries, k={k}, \
         best-of-{reps} = {best_ms:.2}ms ({ops:.0} queries/s, floor {floor_ops:.0}), \
         merge bit-identical to single shard"
    );
    if ops < floor_ops {
        eprintln!(
            "bench_guard: FAIL — sharded scatter-gather {ops:.0} queries/s is below the \
             {floor_ops:.0} queries/s floor; the scatter-gather path has regressed"
        );
        return false;
    }
    true
}

fn guard_wal_append(reps: usize) -> bool {
    let floor_ops: f64 = env_or("MLAKE_BENCH_GUARD_WAL_OPS", DEFAULT_WAL_OPS);
    let (n, payload) = (4_096usize, [0x5au8; 256]);
    let dir = std::env::temp_dir().join(format!("mlake-guard-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = WalOptions {
        sync: SyncPolicy::Batch { every: 64 },
        ..WalOptions::default()
    };
    let wal = Wal::open(&dir, opts).expect("open guard wal").0;
    let best_ms = best_of_ms(reps, || {
        for _ in 0..n {
            wal.append(&payload).expect("append");
        }
        wal.sync().expect("sync");
    });
    let ops = n as f64 / (best_ms / 1e3);
    println!(
        "bench_guard: wal append {n} x {}B, group commit every 64, best-of-{reps} = \
         {best_ms:.2}ms ({ops:.0} ops/s, floor {floor_ops:.0} ops/s)",
        payload.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
    if ops < floor_ops {
        eprintln!(
            "bench_guard: FAIL — WAL append throughput {ops:.0} ops/s is below the \
             {floor_ops:.0} ops/s floor; the durable-append path has regressed"
        );
        return false;
    }
    true
}

fn main() {
    let reps: usize = env_or("MLAKE_GUARD_REPS", DEFAULT_REPS).max(1);
    let ok =
        guard_matmul(reps) & guard_sq8_scan(reps) & guard_sharded(reps) & guard_wal_append(reps);
    if !ok {
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
