//! Criterion benches: fingerprint computation cost per viewpoint and CKA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlake_bench::exp::e1_versioning::lake_probes;
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_fingerprint::{cka::linear_cka, FingerprintKind, Fingerprinter};
use std::hint::black_box;

fn bench_fingerprints(c: &mut Criterion) {
    let spec = LakeSpec::tiny(3);
    let gt = generate_lake(&spec);
    let fp = Fingerprinter::new(64, 7, lake_probes(spec.seed));
    let model = &gt.models[0].model;
    let mut group = c.benchmark_group("fingerprint");
    for kind in FingerprintKind::ALL {
        group.bench_function(BenchmarkId::new("kind", kind.name()), |b| {
            b.iter(|| fp.compute(kind, black_box(model)).unwrap())
        });
    }
    group.finish();
}

fn bench_cka(c: &mut Criterion) {
    let spec = LakeSpec::tiny(3);
    let gt = generate_lake(&spec);
    let fp = Fingerprinter::new(64, 7, lake_probes(spec.seed));
    let mlp_idx = gt
        .models
        .iter()
        .position(|m| m.model.as_mlp().is_some())
        .expect("classifier exists");
    let rep = fp.representation(&gt.models[mlp_idx].model, 0).unwrap();
    c.bench_function("linear_cka_32probes", |b| {
        b.iter(|| linear_cka(black_box(&rep), black_box(&rep)).unwrap())
    });
}

criterion_group!(benches, bench_fingerprints, bench_cka);
criterion_main!(benches);
