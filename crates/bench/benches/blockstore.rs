//! Criterion benches for block-segment storage (DESIGN.md §15): lazy v3
//! open vs the eager legacy path, incremental persist cost, and GC sweep
//! throughput. The headline claims — open cost independent of blob bytes,
//! persist cost O(ops since last persist) — are *gated* in `bench_guard`;
//! these benches chart the same paths for profiling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_datagen::{generate_lake, LakeSpec};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mlake-bench-blockstore-{tag}-{}", std::process::id()))
}

/// Builds a persisted v3 lake with every model from a `small` spec,
/// returning its directory (caller removes it).
fn persisted_lake(tag: &str) -> PathBuf {
    let dir = tmp(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let gt = generate_lake(&LakeSpec::tiny(17));
    let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
    for (i, gm) in gt.models.iter().enumerate() {
        lake.ingest_model(&format!("m-{i}"), &gm.model, None).unwrap();
    }
    lake.persist(&dir).unwrap();
    dir
}

fn bench_open(c: &mut Criterion) {
    let v3 = persisted_lake("open-v3");
    let v2 = tmp("open-v2");
    let _ = std::fs::remove_dir_all(&v2);
    {
        let lake = ModelLake::open(&v3, LakeConfig::default()).unwrap();
        lake.export_v2(&v2).unwrap();
    }
    let mut group = c.benchmark_group("blockstore_open");
    group.bench_function("lazy_v3", |b| {
        b.iter(|| ModelLake::open(&v3, LakeConfig::default()).unwrap())
    });
    group.bench_function("eager_v2", |b| {
        b.iter(|| ModelLake::open(&v2, LakeConfig::default()).unwrap())
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&v3);
    let _ = std::fs::remove_dir_all(&v2);
}

fn bench_incremental_persist(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(18));
    let extra = &gt.models[0].model;
    c.bench_function("persist_after_one_ingest", |b| {
        let mut n = 0u64;
        b.iter_batched(
            || {
                // A persisted lake with a sealed chain: the timed persist
                // below covers exactly one new ingest.
                n += 1;
                let dir = tmp(&format!("persist-{n}"));
                let _ = std::fs::remove_dir_all(&dir);
                let lake = ModelLake::create(&dir, LakeConfig::default()).unwrap();
                for (i, gm) in gt.models.iter().enumerate() {
                    lake.ingest_model(&format!("m-{i}"), &gm.model, None).unwrap();
                }
                lake.persist(&dir).unwrap();
                lake.ingest_model("delta", extra, None).unwrap();
                (dir, lake)
            },
            |(dir, lake)| {
                lake.persist(&dir).unwrap();
                let _ = std::fs::remove_dir_all(&dir);
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("blockstore_gc");
    group.throughput(Throughput::Elements(1));
    group.bench_function("idle_pass", |b| {
        let dir = persisted_lake("gc");
        let lake = ModelLake::open(&dir, LakeConfig::default()).unwrap();
        b.iter(|| lake.gc().unwrap());
        drop(lake);
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

criterion_group!(benches, bench_open, bench_incremental_persist, bench_gc);
criterion_main!(benches);
