//! Criterion benches for the write-ahead log (DESIGN.md §12).
//!
//! The headline comparison is `durability_per_mutation`: the cost of
//! making one mutation durable the pre-WAL way (rewrite the full manifest
//! snapshot of a 1k-model lake) vs the WAL way (append + fsync one
//! record). The WAL must win by ≥10x — that gap is why the log exists.
//! Alongside it: append throughput under `SyncPolicy::Always` vs batched
//! group commit, recovery time as a function of log length, and the cost
//! of compacting sealed segments.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_nn::{Activation, Mlp, Model};
use mlake_tensor::{init::Init, Pcg64};
use mlake_wal::{RealFs, Recovery, SyncPolicy, Wal, WalOptions};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A representative WAL payload: roughly the JSON size of an `UpdateCard`
/// op (the most common durable mutation).
const PAYLOAD: &[u8] = &[0x5a; 256];

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mlake-walbench-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_wal(dir: &PathBuf, sync: SyncPolicy) -> Wal {
    let opts = WalOptions {
        sync,
        ..WalOptions::default()
    };
    Wal::open(dir, opts).expect("open wal").0
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.throughput(Throughput::Bytes(PAYLOAD.len() as u64));
    let dir = fresh_dir("always");
    let wal = open_wal(&dir, SyncPolicy::Always);
    group.bench_function("fsync_always", |b| {
        b.iter(|| wal.append(black_box(PAYLOAD)).expect("append"))
    });
    let dir_b = fresh_dir("batch");
    let wal_b = open_wal(&dir_b, SyncPolicy::Batch { every: 64 });
    group.bench_function("group_commit_64", |b| {
        b.iter(|| wal_b.append(black_box(PAYLOAD)).expect("append"))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Builds a durable lake holding `n` small models.
fn lake_with_models(dir: &PathBuf, n: usize) -> ModelLake {
    let lake = ModelLake::create(dir, LakeConfig::default()).expect("create lake");
    for i in 0..n {
        let mut rng = Pcg64::new(i as u64 + 1);
        let m = Mlp::new(vec![8, 4, 3], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        lake.ingest_model(&format!("m-{i:04}"), &Model::Mlp(m), None)
            .expect("ingest");
    }
    lake
}

fn bench_durability_per_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability_per_mutation");
    group.sample_size(20);
    let dir = fresh_dir("lake1k");
    let lake = lake_with_models(&dir, 1_000);
    // Pre-WAL durability: every mutation rewrites the full snapshot.
    group.bench_function("full_manifest_persist_1k", |b| {
        b.iter(|| lake.persist(black_box(&dir)).expect("persist"))
    });
    // WAL durability: append + fsync one record.
    let wal_dir = fresh_dir("side-wal");
    let wal = open_wal(&wal_dir, SyncPolicy::Always);
    group.bench_function("wal_append_fsync", |b| {
        b.iter(|| wal.append(black_box(PAYLOAD)).expect("append"))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&wal_dir);
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    for &records in &[100usize, 1_000, 10_000] {
        let dir = fresh_dir(&format!("rec{records}"));
        let wal = open_wal(&dir, SyncPolicy::Batch { every: 1024 });
        for _ in 0..records {
            wal.append(PAYLOAD).expect("append");
        }
        wal.sync().expect("sync");
        drop(wal);
        let vfs = RealFs::shared();
        group.throughput(Throughput::Elements(records as u64));
        group.bench_function(format!("{records}_records"), |b| {
            b.iter(|| {
                let replay = Recovery::run(black_box(&dir), &vfs, 0).expect("recover");
                assert_eq!(replay.records.len(), records);
                replay
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_compaction");
    group.sample_size(20);
    // Small segments so a few thousand records produce many sealed files.
    let records = 2_000usize;
    group.bench_function(format!("{records}_records_small_segments"), |b| {
        b.iter_batched(
            || {
                let dir = fresh_dir("compact");
                let opts = WalOptions {
                    sync: SyncPolicy::Batch { every: 1024 },
                    segment_bytes: 16 * 1024,
                    ..WalOptions::default()
                };
                let wal = Wal::open(&dir, opts).expect("open wal").0;
                for _ in 0..records {
                    wal.append(PAYLOAD).expect("append");
                }
                wal.sync().expect("sync");
                (dir, wal)
            },
            |(dir, wal)| {
                wal.compact_to(wal.head()).expect("compact");
                let _ = std::fs::remove_dir_all(&dir);
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_append,
    bench_durability_per_mutation,
    bench_recovery,
    bench_compaction
);
criterion_main!(benches);
