//! Criterion benches for E5: index build and query latency
//! (HNSW vs LSH vs flat) over synthetic model embeddings.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mlake_bench::exp::e5_index::embeddings;
use mlake_index::{FlatIndex, HnswConfig, HnswIndex, LshConfig, LshIndex, VectorIndex};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000] {
        let vectors = embeddings(n, 64, 1);
        group.bench_with_input(BenchmarkId::new("hnsw", n), &vectors, |b, vecs| {
            b.iter_batched(
                || HnswIndex::new(HnswConfig::default()),
                |mut idx| {
                    for (i, v) in vecs.iter().enumerate() {
                        idx.insert(i as u64, v).unwrap();
                    }
                    idx
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("lsh", n), &vectors, |b, vecs| {
            b.iter_batched(
                || LshIndex::new(LshConfig::default()),
                |mut idx| {
                    for (i, v) in vecs.iter().enumerate() {
                        idx.insert(i as u64, v).unwrap();
                    }
                    idx
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("flat", n), &vectors, |b, vecs| {
            b.iter_batched(
                FlatIndex::new,
                |mut idx| {
                    for (i, v) in vecs.iter().enumerate() {
                        idx.insert(i as u64, v).unwrap();
                    }
                    idx
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_query_k10");
    for &n in &[1_000usize, 10_000] {
        let vectors = embeddings(n, 64, 2);
        let query = &vectors[n / 2];
        let mut hnsw = HnswIndex::new(HnswConfig::default());
        let mut lsh = LshIndex::new(LshConfig::default());
        let mut flat = FlatIndex::new();
        for (i, v) in vectors.iter().enumerate() {
            hnsw.insert(i as u64, v).unwrap();
            lsh.insert(i as u64, v).unwrap();
            flat.insert(i as u64, v).unwrap();
        }
        group.bench_function(BenchmarkId::new("hnsw", n), |b| {
            b.iter(|| hnsw.search(black_box(query), 10).unwrap())
        });
        group.bench_function(BenchmarkId::new("lsh", n), |b| {
            b.iter(|| lsh.search(black_box(query), 10).unwrap())
        });
        group.bench_function(BenchmarkId::new("flat", n), |b| {
            b.iter(|| flat.search(black_box(query), 10).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
