//! Criterion benches for E4: leaderboard evaluation and lifelong-benchmark
//! incremental accuracy.

use criterion::{criterion_group, criterion_main, Criterion};
use mlake_benchlab::{Benchmark, Leaderboard, LifelongBenchmark};
use mlake_datagen::{generate_lake, tabular, Domain, LakeSpec};
use mlake_tensor::Seed;
use std::hint::black_box;

fn bench_leaderboard(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(3));
    let models: Vec<(u64, mlake_nn::Model)> = gt
        .models
        .iter()
        .enumerate()
        .map(|(i, m)| (i as u64, m.model.clone()))
        .collect();
    let holdout = tabular::sample_tabular(
        &Domain::new("legal"),
        &tabular::TabularSpec::default(),
        90,
        Seed::new(3),
        Seed::new(99),
    );
    let bench = Benchmark::classification("legal-holdout", holdout);
    c.bench_function("leaderboard_full_lake", |b| {
        b.iter(|| Leaderboard::run(black_box(&bench), models.iter().map(|(i, m)| (*i, m))).unwrap())
    });
}

fn bench_lifelong(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(3));
    let model = gt
        .models
        .iter()
        .find(|m| m.model.as_mlp().is_some())
        .map(|m| m.model.clone())
        .expect("classifier exists");
    let probes = tabular::sample_tabular(
        &Domain::new("legal"),
        &tabular::TabularSpec::default(),
        200,
        Seed::new(3),
        Seed::new(98),
    );
    c.bench_function("lifelong_cached_accuracy", |b| {
        let mut pool = LifelongBenchmark::new();
        pool.extend(&probes);
        pool.accuracy(0, &model).unwrap(); // warm the cache
        b.iter(|| pool.accuracy(0, black_box(&model)).unwrap())
    });
}

criterion_group!(benches, bench_leaderboard, bench_lifelong);
criterion_main!(benches);
