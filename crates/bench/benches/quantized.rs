//! Criterion benches for the SQ8 quantized search path (ISSUE PR 4).
//!
//! Before the timed groups run, a summary table prints recall@10 and
//! per-query latency for `Precision::F32` vs `Precision::Sq8Rescore` at
//! several rescore factors, plus the flat-scan speedup — the two numbers
//! the PR's acceptance criteria pin (scan ≥ 1.3x faster, recall ≥ 0.95x
//! of f32). `bench_guard` enforces the same floors in CI; this bench is
//! the instrument for reading the actual values on a given machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlake_bench::exp::e5_index::embeddings;
use mlake_bench::table::Table;
use mlake_index::{recall_at_k, FlatIndex, HnswConfig, HnswIndex, Precision, VectorIndex};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 20_000;
const DIM: usize = 64;
const K: usize = 10;

fn fixture() -> (Vec<(u64, Vec<f32>)>, Vec<Vec<f32>>, FlatIndex) {
    let items: Vec<(u64, Vec<f32>)> = embeddings(N, DIM, 31)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();
    // In-distribution queries, E5a-style: perturbed copies of stored
    // vectors, so recall@10 measures the index rather than the fixture.
    let mut qrng = mlake_tensor::Pcg64::new(77);
    let queries: Vec<Vec<f32>> = (0..64)
        .map(|i| {
            items[(i * 37) % N]
                .1
                .iter()
                .map(|&x| x + qrng.normal() * 0.1)
                .collect()
        })
        .collect();
    let mut truth = FlatIndex::new();
    truth.insert_batch(&items).expect("truth");
    (items, queries, truth)
}

fn hnsw(items: &[(u64, Vec<f32>)], precision: Precision, rescore_factor: usize) -> HnswIndex {
    let mut idx = HnswIndex::new(HnswConfig {
        m: 16,
        ef_construction: 100,
        ef_search: 64,
        seed: 5,
        precision,
        rescore_factor,
        ..Default::default()
    });
    idx.insert_batch(items).expect("build");
    idx
}

/// Per-query latency of `search_many` over the fixture queries, in ms.
fn per_query_ms(index: &dyn VectorIndex, queries: &[Vec<f32>]) -> f64 {
    black_box(index.search_many(queries, K).expect("warmup"));
    let t0 = Instant::now();
    black_box(index.search_many(queries, K).expect("timed"));
    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

/// Prints the recall/latency summary the acceptance criteria reference.
fn print_summary(items: &[(u64, Vec<f32>)], queries: &[Vec<f32>], truth: &FlatIndex) {
    let mut t = Table::new(
        format!("quantized: recall@{K} + per-query latency (n={N}, d={DIM})"),
        &["index", "precision", "query(ms)", "recall@10"],
    );
    let mut row = |name: &str, tag: String, idx: &dyn VectorIndex| {
        let ms = per_query_ms(idx, queries);
        let r = recall_at_k(idx, truth, queries, K).expect("recall");
        t.row(vec![name.into(), tag, format!("{ms:.3}"), format!("{r:.3}")]);
    };
    let mut flat_sq8 = FlatIndex::with_precision(Precision::Sq8Rescore);
    flat_sq8.insert_batch(items).expect("flat sq8");
    row("flat", "f32".into(), truth);
    row("flat", format!("sq8x{}", flat_sq8.rescore_factor()), &flat_sq8);
    row("hnsw", "f32".into(), &hnsw(items, Precision::F32, 1));
    for rf in [1usize, 2, 4, 8] {
        row("hnsw", format!("sq8x{rf}"), &hnsw(items, Precision::Sq8Rescore, rf));
    }
    t.print();

    let f32_ms = per_query_ms(truth, queries);
    let sq8_ms = per_query_ms(&flat_sq8, queries);
    println!(
        "quantized: flat scan speedup f32/sq8 = {:.2}x ({:.3}ms -> {:.3}ms per query)\n",
        f32_ms / sq8_ms,
        f32_ms,
        sq8_ms
    );
}

fn bench_flat_scan(c: &mut Criterion) {
    let (items, queries, truth) = fixture();
    print_summary(&items, &queries, &truth);
    let mut sq8 = FlatIndex::with_precision(Precision::Sq8Rescore);
    sq8.insert_batch(&items).expect("build");
    let mut group = c.benchmark_group(format!("flat-scan-{N}x{DIM}-64q"));
    group.bench_function("f32", |b| {
        b.iter(|| truth.search_many(black_box(&queries), K).unwrap().len())
    });
    group.bench_function("sq8-rescore", |b| {
        b.iter(|| sq8.search_many(black_box(&queries), K).unwrap().len())
    });
    group.finish();
}

fn bench_hnsw_search(c: &mut Criterion) {
    let (items, queries, _truth) = fixture();
    let f32_idx = hnsw(&items, Precision::F32, 1);
    let mut group = c.benchmark_group(format!("hnsw-search-{N}x{DIM}-64q"));
    group.bench_function("f32", |b| {
        b.iter(|| f32_idx.search_many(black_box(&queries), K).unwrap().len())
    });
    for rf in [1usize, 4] {
        let idx = hnsw(&items, Precision::Sq8Rescore, rf);
        group.bench_function(BenchmarkId::new("sq8-rescore", rf), |b| {
            b.iter(|| idx.search_many(black_box(&queries), K).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flat_scan, bench_hnsw_search);
criterion_main!(benches);
