//! Criterion benches for E2: end-to-end related-model search latency
//! through the lake (fingerprint + HNSW) per fingerprint kind.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_core::ModelId;
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_fingerprint::FingerprintKind;
use std::hint::black_box;

fn bench_similar(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(3));
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
    let mut group = c.benchmark_group("lake_similar_top5");
    for kind in FingerprintKind::ALL {
        group.bench_function(BenchmarkId::new("kind", kind.name()), |b| {
            b.iter(|| lake.similar(black_box(ModelId(0)), kind, 5).unwrap())
        });
    }
    group.finish();
}

fn bench_mlql_similarity_query(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(3));
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
    let q = format!(
        "FIND MODELS SIMILAR TO MODEL '{}' USING hybrid TOP 5",
        gt.models[0].name
    );
    let prepared = lake.prepare(&q).unwrap();
    c.bench_function("mlql_similarity_query", |b| {
        b.iter(|| black_box(&prepared).run().unwrap())
    });
}

criterion_group!(benches, bench_similar, bench_mlql_similarity_query);
criterion_main!(benches);
