//! Criterion benches for E10: MLQL parse and execute latency.

use criterion::{criterion_group, criterion_main, Criterion};
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::populate::{populate_from_ground_truth, CardPolicy};
use mlake_datagen::{generate_lake, LakeSpec};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let q = "FIND MODELS WHERE domain = 'legal' AND (arch LIKE 'mlp%' OR NOT depth > 2) \
             ORDER BY score('legal-holdout') DESC LIMIT 10";
    c.bench_function("mlql_parse", |b| {
        b.iter(|| mlake_query::parse(black_box(q)).unwrap())
    });
}

fn bench_execute(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(3));
    let lake = ModelLake::new(LakeConfig::default());
    populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
    let mut group = c.benchmark_group("mlql_execute");
    let filter = lake.prepare("FIND MODELS WHERE domain = 'legal'").unwrap();
    group.bench_function("metadata_filter", |b| {
        b.iter(|| black_box(&filter).run().unwrap())
    });
    // Warm the score cache once so the bench measures steady-state cost.
    let ranked = lake
        .prepare("FIND MODELS ORDER BY score('legal-holdout') DESC LIMIT 5")
        .unwrap();
    ranked.run().unwrap();
    group.bench_function("score_ranked_cached", |b| {
        b.iter(|| black_box(&ranked).run().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_execute);
criterion_main!(benches);
