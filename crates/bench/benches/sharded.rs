//! Criterion benches for sharded scatter-gather search (ISSUE PR 6).
//!
//! Before the timed groups run, a summary table prints, for shard counts
//! N ∈ {1, 2, 4, 8} at 20k and 100k vectors, the two numbers that matter
//! to a sharded deployment:
//!
//! * **latency(ms)** — sequential single-query `search` calls, one query
//!   in flight. This is where scatter-gather wins on a multi-core host:
//!   a single-graph HNSW search is inherently serial, while the sharded
//!   index runs N smaller beams concurrently.
//! * **batch(ms)** — per-query cost of a 64-query `search_many` batch.
//!   A batch already parallelizes across queries and saturates the
//!   cores, so sharding cannot add concurrency there — it only adds the
//!   per-shard beam work (each shard answers `rescore_factor·k`
//!   candidates), and the single shard stays ahead. The table reports
//!   it so the trade is visible, not hidden.
//!
//! A flat (exact) sharded index is also checked bit-identical against
//! the unsharded scan, demonstrating the merge invariant on real
//! fixtures.
//!
//! Single-core caveat (as for PR 1's parallel layer): the scatter fans
//! out one task per shard, so the win is concurrency, not work
//! reduction. Under `MLAKE_THREADS=1` expect parity for the exact scan
//! (sharding is work-preserving there) and a small overfetch penalty
//! for HNSW; results stay bit-identical either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlake_bench::exp::e5_index::embeddings;
use mlake_bench::table::Table;
use mlake_index::{recall_at_k, FlatIndex, HnswConfig, HnswIndex, ShardedIndex, VectorIndex};
use std::hint::black_box;
use std::time::Instant;

const DIM: usize = 64;
const K: usize = 10;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fixture(n: usize) -> (Vec<(u64, Vec<f32>)>, Vec<Vec<f32>>) {
    let items: Vec<(u64, Vec<f32>)> = embeddings(n, DIM, 31)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();
    // In-distribution queries: perturbed copies of stored vectors, so
    // recall@10 measures the index rather than the fixture.
    let mut qrng = mlake_tensor::Pcg64::new(77);
    let queries: Vec<Vec<f32>> = (0..64)
        .map(|i| {
            items[(i * 37) % n]
                .1
                .iter()
                .map(|&x| x + qrng.normal() * 0.1)
                .collect()
        })
        .collect();
    (items, queries)
}

fn hnsw_config() -> HnswConfig {
    HnswConfig {
        m: 16,
        ef_construction: 64,
        ef_search: 64,
        seed: 5,
        ..Default::default()
    }
}

fn sharded_hnsw(items: &[(u64, Vec<f32>)], shards: usize) -> ShardedIndex<HnswIndex> {
    let cfg = hnsw_config();
    let mut idx =
        ShardedIndex::new(shards, || HnswIndex::new(cfg)).with_rescore_factor(cfg.rescore_factor);
    idx.insert_batch(items).expect("build sharded hnsw");
    idx
}

/// Sequential single-query latency: one `search` call in flight at a
/// time, averaged over the fixture queries, in ms.
fn per_query_latency_ms(index: &dyn VectorIndex, queries: &[Vec<f32>]) -> f64 {
    for q in queries {
        black_box(index.search(q, K).expect("warmup"));
    }
    let t0 = Instant::now();
    for q in queries {
        black_box(index.search(q, K).expect("timed"));
    }
    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

/// Per-query cost of one `search_many` batch over the fixture queries,
/// in ms (the batch parallelizes across queries internally).
fn per_query_batch_ms(index: &dyn VectorIndex, queries: &[Vec<f32>]) -> f64 {
    black_box(index.search_many(queries, K).expect("warmup"));
    let t0 = Instant::now();
    black_box(index.search_many(queries, K).expect("timed"));
    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

/// Asserts the merge invariant on the exact path: a 4-way sharded flat
/// index answers bit-identically to the unsharded scan.
fn check_flat_exactness(items: &[(u64, Vec<f32>)], queries: &[Vec<f32>], truth: &FlatIndex) {
    let mut sharded = ShardedIndex::new(4, FlatIndex::new);
    sharded.insert_batch(items).expect("build sharded flat");
    let want = truth.search_many(queries, K).expect("truth search");
    let got = sharded.search_many(queries, K).expect("sharded search");
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.len(), g.len(), "sharded flat hit count diverged");
        for (wh, gh) in w.iter().zip(g) {
            assert_eq!(wh.id, gh.id, "sharded flat ids diverged");
            assert_eq!(
                wh.distance.to_bits(),
                gh.distance.to_bits(),
                "sharded flat distances diverged"
            );
        }
    }
    println!("sharded: flat 4-shard merge bit-identical to unsharded scan ({} queries)", queries.len());
}

fn bench_sharded_search(c: &mut Criterion) {
    for n in [20_000usize, 100_000] {
        let (items, queries) = fixture(n);
        let mut truth = FlatIndex::new();
        truth.insert_batch(&items).expect("truth");
        check_flat_exactness(&items, &queries, &truth);

        let mut t = Table::new(
            format!("sharded hnsw: 1-vs-N (n={n}, d={DIM}, k={K}, 64 queries)"),
            &["shards", "latency(ms)", "batch(ms)", "recall@10", "latency vs 1-shard"],
        );
        let indexes: Vec<(usize, ShardedIndex<HnswIndex>)> = SHARD_COUNTS
            .iter()
            .map(|&s| (s, sharded_hnsw(&items, s)))
            .collect();
        let mut base_ms = None;
        for (s, idx) in &indexes {
            let lat_ms = per_query_latency_ms(idx, &queries);
            let batch_ms = per_query_batch_ms(idx, &queries);
            let r = recall_at_k(idx, &truth, &queries, K).expect("recall");
            let base = *base_ms.get_or_insert(lat_ms);
            t.row(vec![
                format!("{s}"),
                format!("{lat_ms:.3}"),
                format!("{batch_ms:.3}"),
                format!("{r:.3}"),
                format!("{:.2}x", base / lat_ms),
            ]);
        }
        t.print();

        let mut group = c.benchmark_group(format!("sharded-hnsw-{n}x{DIM}"));
        group.sample_size(10);
        for (s, idx) in &indexes {
            group.bench_function(BenchmarkId::new("latency-64q/shards", *s), |b| {
                b.iter(|| {
                    let mut total = 0usize;
                    for q in &queries {
                        total += idx.search(black_box(q), K).unwrap().len();
                    }
                    total
                })
            });
            group.bench_function(BenchmarkId::new("batch-64q/shards", *s), |b| {
                b.iter(|| idx.search_many(black_box(&queries), K).unwrap().len())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_sharded_search);
criterion_main!(benches);
