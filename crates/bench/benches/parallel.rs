//! Criterion benches for the parallel execution layer: tiled vs naive
//! matmul, batched vs sequential HNSW build and search, and parallel vs
//! serial lake fingerprinting.
//!
//! Each pair runs the identical workload through the parallel kernel and
//! through `mlake_par::serial` (which forces every primitive inline), so
//! the reported ratio is the pool's wall-clock speedup on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlake_bench::exp::e1_versioning::lake_probes;
use mlake_bench::exp::e5_index::embeddings;
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_fingerprint::{FingerprintKind, Fingerprinter};
use mlake_index::{HnswConfig, HnswIndex, VectorIndex};
use mlake_tensor::{Matrix, Pcg64};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Pcg64::new(41);
    let mut group = c.benchmark_group("matmul");
    for &n in &[128usize, 256, 512] {
        let a = Matrix::randn(n, n, &mut rng);
        let b = Matrix::randn(n, n, &mut rng);
        group.bench_function(BenchmarkId::new("naive", n), |bch| {
            bch.iter(|| black_box(&a).matmul_naive(black_box(&b)).unwrap())
        });
        group.bench_function(BenchmarkId::new("tiled-serial", n), |bch| {
            bch.iter(|| mlake_par::serial(|| black_box(&a).matmul(black_box(&b)).unwrap()))
        });
        group.bench_function(BenchmarkId::new("tiled-parallel", n), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn hnsw_items(n: usize) -> Vec<(u64, Vec<f32>)> {
    embeddings(n, 64, 31)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect()
}

fn bench_hnsw_build(c: &mut Criterion) {
    let items = hnsw_items(4_000);
    let config = HnswConfig {
        m: 16,
        ef_construction: 100,
        ef_search: 64,
        seed: 5,
        ..Default::default()
    };
    let mut group = c.benchmark_group("hnsw-build");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            mlake_par::serial(|| {
                let mut idx = HnswIndex::new(config);
                idx.insert_batch(black_box(&items)).unwrap();
                idx.len()
            })
        })
    });
    group.bench_function("concurrent", |b| {
        b.iter(|| {
            let mut idx = HnswIndex::new(config);
            idx.insert_batch(black_box(&items)).unwrap();
            idx.len()
        })
    });
    group.finish();
}

fn bench_hnsw_search(c: &mut Criterion) {
    let items = hnsw_items(20_000);
    let mut idx = HnswIndex::new(HnswConfig {
        m: 16,
        ef_construction: 100,
        ef_search: 64,
        seed: 5,
        ..Default::default()
    });
    idx.insert_batch(&items).unwrap();
    let queries: Vec<Vec<f32>> = embeddings(256, 64, 77);
    let mut group = c.benchmark_group("hnsw-search-256q");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            mlake_par::serial(|| idx.search_many(black_box(&queries), 10).unwrap().len())
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| idx.search_many(black_box(&queries), 10).unwrap().len())
    });
    group.finish();
}

fn bench_lake_fingerprint(c: &mut Criterion) {
    let spec = LakeSpec {
        seed: 3,
        num_base_models: 6,
        derivations_per_base: 4,
        ..LakeSpec::default()
    };
    let gt = generate_lake(&spec);
    let models: Vec<_> = gt.models.iter().map(|m| m.model.clone()).collect();
    let fp = Fingerprinter::new(64, 7, lake_probes(spec.seed));
    let mut group = c.benchmark_group(format!("lake-fingerprint-{}models", models.len()));
    group.bench_function("serial", |b| {
        b.iter(|| {
            mlake_par::serial(|| {
                fp.compute_many(FingerprintKind::Hybrid, black_box(&models))
                    .unwrap()
                    .len()
            })
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            fp.compute_many(FingerprintKind::Hybrid, black_box(&models))
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_hnsw_build,
    bench_hnsw_search,
    bench_lake_fingerprint
);
criterion_main!(benches);
