//! Criterion benches for the ingestion pipeline (Figure 2 left edge):
//! SHA-256 content addressing, artifact encode/decode, full lake ingest.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mlake_core::hash::sha256;
use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_nn::Model;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for &size in &[1_024usize, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_artifact_codec(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(3));
    let model = gt.models[0].model.clone();
    let bytes = model.to_bytes().unwrap();
    c.bench_function("artifact_encode", |b| b.iter(|| black_box(&model).to_bytes().unwrap()));
    c.bench_function("artifact_decode", |b| {
        b.iter(|| Model::from_bytes(black_box(&bytes)).unwrap())
    });
}

fn bench_ingest(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(3));
    c.bench_function("lake_ingest_one_model", |b| {
        let mut counter = 0u64;
        b.iter_batched(
            || ModelLake::new(LakeConfig::default()),
            |lake| {
                counter += 1;
                lake.ingest_model(&format!("m-{counter}"), &gt.models[0].model, None)
                    .unwrap();
                lake
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_sha256, bench_artifact_codec, bench_ingest);
criterion_main!(benches);
