//! Criterion benches for E1: version-graph recovery cost (known-roots vs
//! blind Edmonds) and transform classification.

use criterion::{criterion_group, criterion_main, Criterion};
use mlake_bench::exp::e1_versioning::lake_probes;
use mlake_datagen::{generate_lake, LakeSpec};
use mlake_versioning::delta::classify_transform;
use mlake_versioning::recover::{recover_graph, RecoveryOptions};
use std::hint::black_box;

fn bench_recovery(c: &mut Criterion) {
    let spec = LakeSpec::tiny(3);
    let gt = generate_lake(&spec);
    let models: Vec<_> = gt.models.iter().map(|m| m.model.clone()).collect();
    let probes = lake_probes(spec.seed);
    let known: Vec<usize> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .collect();
    let mut group = c.benchmark_group("version_recovery");
    group.sample_size(20);
    group.bench_function("known_roots", |b| {
        b.iter(|| {
            recover_graph(
                black_box(&models),
                Some(&probes),
                &RecoveryOptions {
                    known_roots: Some(known.clone()),
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("blind_edmonds", |b| {
        b.iter(|| recover_graph(black_box(&models), Some(&probes), &RecoveryOptions::default()))
    });
    group.finish();
}

fn bench_classify(c: &mut Criterion) {
    let gt = generate_lake(&LakeSpec::tiny(3));
    let edge = gt.edges.first().expect("has edges");
    let parent = &gt.models[edge.parent].model;
    let child = &gt.models[edge.child].model;
    c.bench_function("classify_transform", |b| {
        b.iter(|| classify_transform(black_box(parent), black_box(child)))
    });
}

criterion_group!(benches, bench_recovery, bench_classify);
criterion_main!(benches);
