//! Criterion benches for E3: cost of attribution estimators versus the
//! exact leave-one-out ground truth.

use criterion::{criterion_group, criterion_main, Criterion};
use mlake_attribution::influence::{gradient_dot_scores, influence_scores};
use mlake_attribution::loo::loo_scores;
use mlake_attribution::softmax::{SoftmaxConfig, SoftmaxRegression};
use mlake_attribution::tracin::{tracin_scores, train_with_checkpoints};
use mlake_datagen::{tabular, Domain};
use mlake_tensor::Seed;
use std::hint::black_box;

fn setup() -> (
    mlake_nn::LabeledData,
    SoftmaxRegression,
    Vec<SoftmaxRegression>,
    SoftmaxConfig,
) {
    let cfg = SoftmaxConfig {
        l2: 0.05,
        steps: 200,
        lr: 0.5,
    };
    let data = tabular::sample_tabular(
        &Domain::new("legal"),
        &tabular::TabularSpec {
            dim: 4,
            num_classes: 2,
            separation: 1.6,
            noise: 0.8,
        },
        24,
        Seed::new(3),
        Seed::new(4),
    );
    let model = SoftmaxRegression::train(&data, &cfg).unwrap();
    let (_, ckpts) = train_with_checkpoints(&data, &cfg, 6).unwrap();
    (data, model, ckpts, cfg)
}

fn bench_estimators(c: &mut Criterion) {
    let (data, model, ckpts, cfg) = setup();
    let test_x = [1.0f32, 0.2, -0.1, 0.4];
    let mut group = c.benchmark_group("attribution");
    group.sample_size(20);
    group.bench_function("influence_cg", |b| {
        b.iter(|| influence_scores(&model, &data, black_box(&test_x), 1, 0.01).unwrap())
    });
    group.bench_function("tracin_6ckpt", |b| {
        b.iter(|| tracin_scores(&ckpts, cfg.lr, &data, black_box(&test_x), 1).unwrap())
    });
    group.bench_function("gradient_dot", |b| {
        b.iter(|| gradient_dot_scores(&model, &data, black_box(&test_x), 1).unwrap())
    });
    group.bench_function("exact_loo_n24", |b| {
        b.iter(|| loo_scores(&data, black_box(&test_x), 1, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
