//! Gaussian-mixture tabular classification data per domain.

use crate::domain::Domain;
use mlake_nn::LabeledData;
use mlake_tensor::{Matrix, Seed};

/// Parameters for tabular task generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabularSpec {
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Distance of class centroids from the origin.
    pub separation: f32,
    /// Within-class standard deviation.
    pub noise: f32,
}

impl Default for TabularSpec {
    fn default() -> Self {
        TabularSpec {
            dim: 8,
            num_classes: 3,
            separation: 2.5,
            noise: 0.7,
        }
    }
}

/// Samples `n` labelled examples from `domain`'s class mixture. Classes are
/// balanced round-robin so every subset of contiguous indices stays roughly
/// balanced (leave-one-out attribution depends on this).
pub fn sample_tabular(
    domain: &Domain,
    spec: &TabularSpec,
    n: usize,
    root: Seed,
    draw: Seed,
) -> LabeledData {
    let centroids = domain.class_centroids(root, spec.num_classes, spec.dim, spec.separation);
    let mut rng = draw.derive("tabular-draw").rng();
    // Row-major fill draws noise in the same order as a per-row loop, so
    // existing seeds reproduce byte-identical datasets.
    let x = Matrix::from_fn(n, spec.dim, |r, c| {
        centroids[r % spec.num_classes][c] + rng.normal() * spec.noise
    });
    let y = (0..n).map(|i| i % spec.num_classes).collect();
    // Both sides have exactly `n` rows, so the checked constructor (and
    // its impossible error path) is unnecessary.
    LabeledData { x, y }
}

/// A probe grid for extrinsic fingerprinting: `n` inputs drawn from a
/// standard Gaussian scaled to cover the mixture's support. Probes are
/// *domain-neutral* — every model in the lake is probed with the same set,
/// which is what makes behavioural fingerprints comparable.
pub fn probe_inputs(dim: usize, n: usize, scale: f32, seed: Seed) -> Matrix {
    let mut rng = seed.derive("probes").rng();
    Matrix::from_fn(n, dim, |_, _| rng.normal() * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::{train_mlp, Activation, Mlp, TrainConfig};
    use mlake_tensor::init::Init;

    #[test]
    fn balanced_labels() {
        let d = Domain::new("legal");
        let data = sample_tabular(&d, &TabularSpec::default(), 99, Seed::new(1), Seed::new(2));
        assert_eq!(data.len(), 99);
        let counts = data.y.iter().fold([0usize; 3], |mut acc, &y| {
            acc[y] += 1;
            acc
        });
        assert_eq!(counts, [33, 33, 33]);
    }

    #[test]
    fn deterministic_given_seeds() {
        let d = Domain::new("medical");
        let spec = TabularSpec::default();
        let a = sample_tabular(&d, &spec, 50, Seed::new(1), Seed::new(2));
        let b = sample_tabular(&d, &spec, 50, Seed::new(1), Seed::new(2));
        assert_eq!(a, b);
        let c = sample_tabular(&d, &spec, 50, Seed::new(1), Seed::new(3));
        assert_ne!(a, c);
    }

    #[test]
    fn domains_are_learnable_and_distinct() {
        let spec = TabularSpec::default();
        let root = Seed::new(11);
        let legal = sample_tabular(&Domain::new("legal"), &spec, 150, root, Seed::new(5));
        let medical = sample_tabular(&Domain::new("medical"), &spec, 150, root, Seed::new(6));
        let mut rng = Seed::new(7).derive("init").rng();
        let mut model = Mlp::new(
            vec![spec.dim, 16, spec.num_classes],
            Activation::Relu,
            Init::HeNormal,
            &mut rng,
        )
        .unwrap();
        train_mlp(&mut model, &legal, &TrainConfig { epochs: 30, ..Default::default() }).unwrap();
        let acc_legal = mlake_nn::train::accuracy(&model, &legal).unwrap();
        let acc_medical = mlake_nn::train::accuracy(&model, &medical).unwrap();
        assert!(acc_legal > 0.9, "in-domain accuracy {acc_legal}");
        assert!(
            acc_medical < acc_legal - 0.2,
            "cross-domain accuracy {acc_medical} too close to {acc_legal}"
        );
    }

    #[test]
    fn probe_inputs_shape_and_determinism() {
        let a = probe_inputs(8, 32, 2.0, Seed::new(3));
        let b = probe_inputs(8, 32, 2.0, Seed::new(3));
        assert_eq!(a, b);
        assert_eq!(a.shape(), (32, 8));
    }
}
