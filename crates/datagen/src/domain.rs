//! Named synthetic domains.
//!
//! A domain plays the role the paper's motivating scenario gives to "legal
//! documents" (Example 1.1): a topical slice of the world that models are
//! trained on and that users search for. Each domain deterministically
//! derives (from its name) a class geometry for tabular tasks and a token
//! style for corpora, so any two runs agree on what "legal" data looks like.

use mlake_tensor::Seed;
use serde::{Deserialize, Serialize};

/// A data domain, identified by name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Domain {
    name: String,
}

/// The built-in domain roster used by the benchmark lake. "legal" is first in
/// honour of the paper's running example.
pub const BUILTIN_DOMAINS: [&str; 8] = [
    "legal", "medical", "finance", "news", "code", "sports", "science", "travel",
];

impl Domain {
    /// Creates a domain with the given name (any non-empty string works;
    /// built-ins are just conventional names).
    pub fn new(name: impl Into<String>) -> Domain {
        Domain { name: name.into() }
    }

    /// All built-in domains.
    pub fn builtin() -> Vec<Domain> {
        BUILTIN_DOMAINS.iter().map(|&n| Domain::new(n)).collect()
    }

    /// The domain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Deterministic seed namespace for everything derived from this domain.
    pub fn seed(&self, root: Seed) -> Seed {
        root.derive("domain").derive(&self.name)
    }

    /// Class centroids for a `num_classes`-way task in `dim` dimensions.
    ///
    /// Centroids are unit-scaled Gaussian draws from the domain seed, pushed
    /// apart by `separation`; related domains do **not** share geometry, so a
    /// model trained on "legal" transfers poorly to "medical" — giving the
    /// search experiments a real notion of domain relevance.
    pub fn class_centroids(
        &self,
        root: Seed,
        num_classes: usize,
        dim: usize,
        separation: f32,
    ) -> Vec<Vec<f32>> {
        let mut rng = self.seed(root).derive("centroids").rng();
        (0..num_classes)
            .map(|_| {
                let mut c: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
                mlake_tensor::vector::normalize(&mut c);
                mlake_tensor::vector::scale(&mut c, separation);
                c
            })
            .collect()
    }

    /// Token-frequency profile over a vocabulary: a Zipf law whose rank
    /// permutation is domain-specific, so different domains prefer different
    /// tokens while all corpora remain Zipf-shaped.
    pub fn token_weights(&self, root: Seed, vocab: usize) -> Vec<f32> {
        let mut rng = self.seed(root).derive("tokens").rng();
        let mut ranks: Vec<usize> = (0..vocab).collect();
        rng.shuffle(&mut ranks);
        let mut weights = vec![0.0f32; vocab];
        for (tok, &rank) in ranks.iter().enumerate() {
            // Zipf with exponent 1.1.
            weights[tok] = 1.0 / ((rank + 1) as f32).powf(1.1);
        }
        weights
    }

    /// Characteristic bigram affinity matrix (row-stochastic up to
    /// normalisation) that flavours this domain's corpora.
    pub fn bigram_affinity(&self, root: Seed, vocab: usize) -> Vec<Vec<f32>> {
        let mut rng = self.seed(root).derive("bigram").rng();
        let base = self.token_weights(root, vocab);
        (0..vocab)
            .map(|_| {
                base.iter()
                    .map(|&w| {
                        // Mix the global preference with row-specific noise so
                        // transitions carry domain signal beyond unigrams.
                        let noise = rng.next_f32() + 0.05;
                        w * noise
                    })
                    .collect()
            })
            .collect()
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_tensor::vector;

    #[test]
    fn builtin_roster() {
        let ds = Domain::builtin();
        assert_eq!(ds.len(), 8);
        assert_eq!(ds[0].name(), "legal");
    }

    #[test]
    fn centroids_are_deterministic_and_separated() {
        let d = Domain::new("legal");
        let root = Seed::new(7);
        let a = d.class_centroids(root, 3, 8, 2.0);
        let b = d.class_centroids(root, 3, 8, 2.0);
        assert_eq!(a, b);
        for c in &a {
            assert!((vector::l2_norm(c) - 2.0).abs() < 1e-4);
        }
        // Distinct classes land in distinct directions.
        assert!(vector::cosine_similarity(&a[0], &a[1]) < 0.99);
    }

    #[test]
    fn different_domains_differ() {
        let root = Seed::new(7);
        let legal = Domain::new("legal").class_centroids(root, 2, 8, 2.0);
        let medical = Domain::new("medical").class_centroids(root, 2, 8, 2.0);
        assert_ne!(legal, medical);
        let wl = Domain::new("legal").token_weights(root, 16);
        let wm = Domain::new("medical").token_weights(root, 16);
        assert_ne!(wl, wm);
    }

    #[test]
    fn token_weights_are_zipf_shaped() {
        let w = Domain::new("news").token_weights(Seed::new(1), 32);
        assert_eq!(w.len(), 32);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        // Top token ~1.0, heavy tail.
        assert!((sorted[0] - 1.0).abs() < 1e-5);
        assert!(sorted[31] < 0.05);
    }

    #[test]
    fn bigram_affinity_shape_and_positivity() {
        let m = Domain::new("code").bigram_affinity(Seed::new(2), 8);
        assert_eq!(m.len(), 8);
        assert!(m.iter().all(|row| row.len() == 8));
        assert!(m.iter().flatten().all(|&x| x > 0.0));
    }

    #[test]
    fn display_is_name() {
        assert_eq!(Domain::new("legal").to_string(), "legal");
    }
}
