//! The benchmark model lake generator with verified ground truth.
//!
//! Produces a population of genuinely trained models connected by genuinely
//! applied derivation operators, together with the full provenance record:
//! every model's architecture, training datasets, optimiser, seed, family,
//! and every parent→child edge with its [`TransformKind`] (plus second
//! parents for stitched/merged models). This is the "benchmark lake" of §3/§5
//! that lake-task solutions are scored against.

use crate::corpus::{self, VOCAB};
use crate::dataset::{Dataset, DatasetId, DatasetKind, DatasetVersionOp};
use crate::domain::Domain;
use crate::tabular::{self, TabularSpec};
use mlake_nn::transform::{
    distill::{distill_mlp, DistillConfig},
    edit::{edit_mlp, EditSpec},
    finetune::{finetune_lm, finetune_mlp},
    lora::{lora_finetune, LoraConfig},
    prune::prune_mlp,
    quantize::quantize_mlp,
    stitch::stitch_mlp,
};
use mlake_nn::{
    train_mlp, Activation, Mlp, Model, NgramLm, TrainConfig, TransformKind,
};
use mlake_tensor::{init::Init, Pcg64, Seed};
use serde::{Deserialize, Serialize};

/// Lake generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LakeSpec {
    /// Root seed; the entire lake is a pure function of it.
    pub seed: u64,
    /// Number of independently initialised base (foundation) models.
    pub num_base_models: usize,
    /// Derived models created per base family (on average).
    pub derivations_per_base: usize,
    /// Maximum derivation-chain depth below a base model.
    pub max_depth: usize,
    /// Every `lm_every`-th family is a language-model family (0 disables LMs).
    pub lm_every: usize,
    /// Tabular task geometry.
    pub tabular: TabularSpec,
    /// Training-set size per tabular dataset.
    pub train_examples: usize,
    /// Corpus length per LM dataset.
    pub corpus_len: usize,
    /// Training epochs for base models and fine-tunes.
    pub epochs: usize,
}

impl Default for LakeSpec {
    fn default() -> Self {
        LakeSpec {
            seed: 0,
            num_base_models: 8,
            derivations_per_base: 4,
            max_depth: 3,
            lm_every: 4,
            tabular: TabularSpec::default(),
            train_examples: 120,
            corpus_len: 2500,
            epochs: 15,
        }
    }
}

impl LakeSpec {
    /// A small, fast configuration for unit tests.
    pub fn tiny(seed: u64) -> LakeSpec {
        LakeSpec {
            seed,
            num_base_models: 3,
            derivations_per_base: 3,
            max_depth: 2,
            lm_every: 3,
            train_examples: 60,
            corpus_len: 800,
            epochs: 8,
            ..LakeSpec::default()
        }
    }

    /// Starts a validated builder seeded with the defaults.
    pub fn builder() -> LakeSpecBuilder {
        LakeSpecBuilder {
            spec: LakeSpec::default(),
        }
    }
}

/// Builder for [`LakeSpec`]. Invalid shapes (an empty lake, zero training
/// data, depth that can never hold the requested derivations) are rejected
/// at [`LakeSpecBuilder::build`] instead of panicking mid-generation.
#[derive(Debug, Clone)]
pub struct LakeSpecBuilder {
    spec: LakeSpec,
}

impl LakeSpecBuilder {
    /// Root seed; the entire lake is a pure function of it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Number of independently initialised base (foundation) models.
    pub fn num_base_models(mut self, n: usize) -> Self {
        self.spec.num_base_models = n;
        self
    }

    /// Derived models created per base family (on average).
    pub fn derivations_per_base(mut self, n: usize) -> Self {
        self.spec.derivations_per_base = n;
        self
    }

    /// Maximum derivation-chain depth below a base model.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.spec.max_depth = d;
        self
    }

    /// Every `n`-th family is a language-model family (0 disables LMs).
    pub fn lm_every(mut self, n: usize) -> Self {
        self.spec.lm_every = n;
        self
    }

    /// Training-set size per tabular dataset.
    pub fn train_examples(mut self, n: usize) -> Self {
        self.spec.train_examples = n;
        self
    }

    /// Corpus length per LM dataset.
    pub fn corpus_len(mut self, n: usize) -> Self {
        self.spec.corpus_len = n;
        self
    }

    /// Training epochs for base models and fine-tunes.
    pub fn epochs(mut self, n: usize) -> Self {
        self.spec.epochs = n;
        self
    }

    /// Validates and returns the spec, or an explanation of what is wrong.
    pub fn build(self) -> Result<LakeSpec, String> {
        let s = &self.spec;
        if s.num_base_models == 0 {
            return Err("num_base_models must be positive (an empty lake has no ground truth)".into());
        }
        if s.derivations_per_base > 0 && s.max_depth == 0 {
            return Err(format!(
                "max_depth 0 cannot hold {} derivations per base",
                s.derivations_per_base
            ));
        }
        if s.train_examples == 0 {
            return Err("train_examples must be positive".into());
        }
        if s.corpus_len == 0 && s.lm_every > 0 {
            return Err("corpus_len must be positive when LM families are enabled".into());
        }
        if s.epochs == 0 {
            return Err("epochs must be positive".into());
        }
        Ok(self.spec)
    }
}

/// One generated model plus its true provenance metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedModel {
    /// Hub-style name, e.g. `"legal-mlp16-base-f0"`.
    pub name: String,
    /// The artifact.
    pub model: Model,
    /// Domain of the model's most recent training data.
    pub domain: Domain,
    /// Base-family index (which foundation model it descends from; stitched
    /// models keep their primary parent's family).
    pub family: usize,
    /// Derivation depth (0 = base model).
    pub depth: usize,
    /// Datasets this model (or its direct training step) used.
    pub trained_on: Vec<DatasetId>,
    /// The operator that derived it from its parent (`None` for bases).
    pub transform: Option<TransformKind>,
    /// Human-readable optimiser/config description — part of `A`.
    pub algorithm: String,
    /// Seed of this model's own training step.
    pub seed: u64,
}

/// A ground-truth derivation edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GtEdge {
    /// Index of the (primary) parent in [`GroundTruth::models`].
    pub parent: usize,
    /// Index of the child.
    pub child: usize,
    /// The operator applied.
    pub kind: TransformKind,
    /// Second parent for stitch/merge derivations.
    pub second_parent: Option<usize>,
}

/// The verified ground truth: models, edges, datasets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// All models, bases first, in generation order.
    pub models: Vec<GeneratedModel>,
    /// All derivation edges.
    pub edges: Vec<GtEdge>,
    /// All datasets referenced by `trained_on`.
    pub datasets: Vec<Dataset>,
    /// Root seed the lake was generated from.
    pub seed: u64,
}

impl GroundTruth {
    /// Children of model `i` (indices).
    pub fn children_of(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.parent == i || e.second_parent == Some(i))
            .map(|e| e.child)
            .collect()
    }

    /// Primary parent of model `i`, if derived.
    pub fn parent_of(&self, i: usize) -> Option<usize> {
        self.edges.iter().find(|e| e.child == i).map(|e| e.parent)
    }

    /// Whether `ancestor` is on `i`'s primary-parent chain.
    pub fn is_ancestor(&self, ancestor: usize, i: usize) -> bool {
        let mut cur = i;
        while let Some(p) = self.parent_of(cur) {
            if p == ancestor {
                return true;
            }
            cur = p;
        }
        false
    }

    /// All members of base family `f`.
    pub fn family_members(&self, f: usize) -> Vec<usize> {
        (0..self.models.len())
            .filter(|&i| self.models[i].family == f)
            .collect()
    }

    /// Search-relevance grade of `other` w.r.t. query model `query`:
    /// 2 = same lineage family, 1 = same domain, 0 = unrelated.
    pub fn relevance(&self, query: usize, other: usize) -> u8 {
        if query == other {
            return 2;
        }
        if self.models[query].family == self.models[other].family {
            2
        } else if self.models[query].domain == self.models[other].domain {
            1
        } else {
            0
        }
    }

    /// Controlled text vocabulary of base family `f` (DESIGN.md §16):
    /// [`FAMILY_VOCAB_WORDS`] deterministic pseudo-words shared by every
    /// member of the family and by no other family. Seeding a card's
    /// free text with them gives full-text search a verifiable ground
    /// truth — the relevant set of a vocab query is exactly
    /// [`GroundTruth::family_members`]. Drawn from a fresh rng keyed on
    /// `(seed, f)`, never the generation stream, so asking for vocab
    /// can never perturb the generated lake.
    pub fn family_vocab(&self, f: usize) -> Vec<String> {
        family_vocab(self.seed, f)
    }

    /// Dataset lookup by id.
    pub fn dataset(&self, id: DatasetId) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.id == id)
    }

    /// Models (indices) whose `trained_on` includes `id` or any version
    /// derived from it.
    pub fn trained_on_dataset_or_versions(&self, id: DatasetId) -> Vec<usize> {
        let mut version_ids: Vec<DatasetId> = vec![id];
        // Transitive closure over dataset parent links.
        loop {
            let before = version_ids.len();
            for d in &self.datasets {
                if let Some(p) = d.parent {
                    if version_ids.contains(&p) && !version_ids.contains(&d.id) {
                        version_ids.push(d.id);
                    }
                }
            }
            if version_ids.len() == before {
                break;
            }
        }
        (0..self.models.len())
            .filter(|&i| {
                self.models[i]
                    .trained_on
                    .iter()
                    .any(|t| version_ids.contains(t))
            })
            .collect()
    }
}

/// Words in each family's controlled vocabulary
/// ([`GroundTruth::family_vocab`]).
pub const FAMILY_VOCAB_WORDS: usize = 4;

/// Standalone form of [`GroundTruth::family_vocab`] for callers that
/// know the seed but have not generated the lake. Every word begins
/// with a fixed-width code unique to the family (two base-12 "digits",
/// so vocabularies of distinct families under 144 never share a word),
/// followed by rng-chosen syllables for variety within the family.
pub fn family_vocab(seed: u64, family: usize) -> Vec<String> {
    const CODES: [&str; 12] = [
        "ba", "de", "gi", "ro", "mu", "la", "pe", "ti", "no", "ku", "sa", "ve",
    ];
    const SYLLABLES: [&str; 12] = [
        "ka", "lor", "mi", "zu", "ther", "ban", "qui", "vex", "dro", "pal", "sin", "oct",
    ];
    let code = format!("{}{}", CODES[(family / 12) % 12], CODES[family % 12]);
    let mut rng: Pcg64 = Seed::new(seed)
        .derive("family-vocab")
        .derive_u64(family as u64)
        .rng();
    (0..FAMILY_VOCAB_WORDS)
        .map(|_| {
            let mut word = code.clone();
            for _ in 0..2 {
                word.push_str(SYLLABLES[rng.index(SYLLABLES.len())]);
            }
            word
        })
        .collect()
}

/// Generates the benchmark lake. Deterministic in `spec.seed`.
pub fn generate_lake(spec: &LakeSpec) -> GroundTruth {
    let root = Seed::new(spec.seed);
    let mut rng: Pcg64 = root.derive("lakegen").rng();
    let domains = Domain::builtin();
    let mut gt = GroundTruth {
        models: Vec::new(),
        edges: Vec::new(),
        datasets: Vec::new(),
        seed: spec.seed,
    };
    let mut next_dataset = 0u64;
    let alloc_ds = |gt: &mut GroundTruth, ds: Dataset| -> DatasetId {
        let id = ds.id;
        gt.datasets.push(ds);
        id
    };

    // ---- Base (foundation) models -------------------------------------
    // Base families are mutually independent (each draws only from its own
    // derived seed), so they train in parallel on the shared pool; results
    // are committed in family order, keeping the lake a pure function of
    // `spec.seed`.
    let base_results: Vec<Option<(GeneratedModel, Dataset)>> = {
        let domains = &domains;
        mlake_par::par_map_index(spec.num_base_models, 1, |f| {
            build_base_model(spec, domains, root, f)
        })
    };
    // Unconstructible families (None) are skipped; `model.family` keeps the
    // original index so names and seeds stay a pure function of `spec.seed`
    // even when a gap opens.
    for (f, built) in base_results.into_iter().enumerate() {
        let Some((mut model, mut ds)) = built else {
            continue;
        };
        let id = DatasetId(next_dataset);
        next_dataset += 1;
        ds.id = id;
        model.trained_on = vec![id];
        debug_assert_eq!(model.family, f);
        alloc_ds(&mut gt, ds);
        gt.models.push(model);
    }

    // Dataset versions for even families: gives "trained on a *version* of
    // dataset X" ground truth.
    let base_dataset_count = gt.datasets.len();
    for d in 0..base_dataset_count {
        if d.is_multiple_of(2) {
            let parent = gt.datasets[d].clone();
            let op = if parent.as_corpus().is_some() {
                DatasetVersionOp::Subset
            } else {
                DatasetVersionOp::Augment
            };
            // The op was chosen to match the dataset's kind just above, so
            // derivation cannot fail; if a future kind slips through, skip
            // the version rather than abort the whole generation.
            let Ok(v2) = parent.derive_version(
                DatasetId(next_dataset),
                format!("{}-v2", parent.name.trim_end_matches("-v1")),
                op,
                0.5,
                root.derive("ds-version").derive_u64(d as u64),
            ) else {
                continue;
            };
            next_dataset += 1;
            gt.datasets.push(v2);
        }
    }

    // ---- Derivations ----------------------------------------------------
    // No parents, no derivations (every base family was unconstructible).
    let total_derivations = if gt.models.is_empty() {
        0
    } else {
        spec.num_base_models * spec.derivations_per_base
    };
    let mut derivation = 0usize;
    let mut attempts = 0usize;
    while derivation < total_derivations && attempts < total_derivations * 10 {
        attempts += 1;
        let parent_idx = rng.index(gt.models.len());
        if gt.models[parent_idx].depth >= spec.max_depth {
            continue;
        }
        let step_seed = root.derive("derivation").derive_u64(derivation as u64);
        let outcome = match &gt.models[parent_idx].model {
            Model::Mlp(_) => derive_mlp_child(
                spec, &gt, parent_idx, step_seed, &mut rng, &mut next_dataset, root,
            ),
            Model::Lm(_) => derive_lm_child(
                spec, &gt, parent_idx, step_seed, &mut rng, &mut next_dataset, root,
            ),
        };
        if let Some((child, edge, new_datasets)) = outcome {
            // Numerical guard: a diverged training run must never enter the
            // benchmark lake (its artifact would be undecodable downstream).
            if !child.model.is_finite() {
                continue;
            }
            for ds in new_datasets {
                gt.datasets.push(ds);
            }
            let child_idx = gt.models.len();
            gt.models.push(child);
            gt.edges.push(GtEdge {
                child: child_idx,
                ..edge
            });
            derivation += 1;
        }
    }
    gt
}

/// Trains one base (foundation) model and its training dataset. Pure in
/// `(spec, root, f)` — safe to run on any thread. `None` means the spec
/// produced an unconstructible model (degenerate layer sizes, n-gram
/// order outside 1..=3, corpus tokens outside the vocab); the caller
/// skips that family rather than aborting the whole generation.
fn build_base_model(
    spec: &LakeSpec,
    domains: &[Domain],
    root: Seed,
    f: usize,
) -> Option<(GeneratedModel, Dataset)> {
    let domain = domains[f % domains.len()].clone();
    let family_seed = root.derive("family").derive_u64(f as u64);
    let is_lm = spec.lm_every > 0 && f % spec.lm_every == spec.lm_every - 1;
    // Dataset ids are assigned by the caller in family order.
    let placeholder = DatasetId(u64::MAX);
    if is_lm {
        let corpus = corpus::sample_corpus(
            &domain,
            spec.corpus_len,
            root,
            family_seed.derive("corpus"),
        );
        let ds = Dataset {
            id: placeholder,
            name: format!("{domain}-corpus-f{f}-v1"),
            domain: domain.clone(),
            kind: DatasetKind::Corpus(corpus.clone()),
            parent: None,
            derived_by: None,
        };
        let order = if family_seed.derive("order").rng().bernoulli(0.5) { 2 } else { 3 };
        let Ok(mut lm) = NgramLm::new(VOCAB, order, 0.2) else {
            return None;
        };
        if lm.add_counts(&corpus, 1.0).is_err() {
            return None;
        }
        Some((
            GeneratedModel {
                name: format!("{domain}-ngram{order}-base-f{f}"),
                model: Model::Lm(lm),
                domain,
                family: f,
                depth: 0,
                trained_on: Vec::new(),
                transform: None,
                algorithm: format!("count-fit(order={order}, alpha=0.2)"),
                seed: family_seed.0,
            },
            ds,
        ))
    } else {
        let data = tabular::sample_tabular(
            &domain,
            &spec.tabular,
            spec.train_examples,
            root,
            family_seed.derive("tabular"),
        );
        let ds = Dataset {
            id: placeholder,
            name: format!("{domain}-tab-f{f}-v1"),
            domain: domain.clone(),
            kind: DatasetKind::Tabular(data.clone()),
            parent: None,
            derived_by: None,
        };
        // Architecture variety across families.
        let hidden: &[usize] = match f % 3 {
            0 => &[16],
            1 => &[24],
            _ => &[16, 8],
        };
        let activation = if f.is_multiple_of(2) { Activation::Relu } else { Activation::Tanh };
        let mut sizes = vec![spec.tabular.dim];
        sizes.extend_from_slice(hidden);
        sizes.push(spec.tabular.num_classes);
        let mut init_rng = family_seed.derive("init").rng();
        let Ok(mut mlp) = Mlp::new(sizes, activation, Init::HeNormal, &mut init_rng) else {
            return None;
        };
        let cfg = TrainConfig {
            epochs: spec.epochs,
            seed: family_seed.derive("train").0,
            ..TrainConfig::default()
        };
        // Training on generator-validated data cannot fail; if it ever
        // does, ship the freshly initialized model instead — still a
        // well-formed artifact, just untrained.
        let _ = train_mlp(&mut mlp, &data, &cfg);
        let arch_hint = format!(
            "mlp{}",
            hidden.iter().map(usize::to_string).collect::<Vec<_>>().join("x")
        );
        Some((
            GeneratedModel {
                name: format!("{domain}-{arch_hint}-base-f{f}"),
                model: Model::Mlp(mlp),
                domain,
                family: f,
                depth: 0,
                trained_on: Vec::new(),
                transform: None,
                algorithm: format!("{} epochs={}", cfg.optimizer.describe(), cfg.epochs),
                seed: cfg.seed,
            },
            ds,
        ))
    }
}

type DeriveOutcome = Option<(GeneratedModel, GtEdge, Vec<Dataset>)>;

fn derive_mlp_child(
    spec: &LakeSpec,
    gt: &GroundTruth,
    parent_idx: usize,
    step_seed: Seed,
    rng: &mut Pcg64,
    next_dataset: &mut u64,
    root: Seed,
) -> DeriveOutcome {
    let parent = &gt.models[parent_idx];
    // The caller routes by family kind, so the parent is an MLP; a
    // mismatch just yields no child (the derivation loop retries).
    let mlp = parent.model.as_mlp()?;
    let domains = Domain::builtin();
    let kinds = [
        TransformKind::FineTune,
        TransformKind::Lora,
        TransformKind::Edit,
        TransformKind::Distill,
        TransformKind::Stitch,
        TransformKind::Prune,
        TransformKind::Quantize,
    ];
    let kind = kinds[rng.index(kinds.len())];
    let depth = parent.depth + 1;
    let mut new_datasets = Vec::new();
    let (model, domain, trained_on, algorithm, second_parent) = match kind {
        TransformKind::FineTune | TransformKind::Lora => {
            // Fine-tune onto a (usually different) domain.
            let target_domain = domains[rng.index(domains.len())].clone();
            let data = tabular::sample_tabular(
                &target_domain,
                &spec.tabular,
                spec.train_examples,
                root,
                step_seed.derive("ft-data"),
            );
            let ds = Dataset {
                id: DatasetId(*next_dataset),
                name: format!("{target_domain}-tab-ft-{}", *next_dataset),
                domain: target_domain.clone(),
                kind: DatasetKind::Tabular(data.clone()),
                parent: None,
                derived_by: None,
            };
            *next_dataset += 1;
            let ds_id = ds.id;
            new_datasets.push(ds);
            if kind == TransformKind::FineTune {
                let cfg = TrainConfig {
                    epochs: spec.epochs / 2 + 1,
                    optimizer: mlake_nn::optim::OptimizerSpec::sgd(0.05),
                    seed: step_seed.derive("ft").0,
                    ..TrainConfig::default()
                };
                let (child, _) = finetune_mlp(mlp, &data, &cfg).ok()?;
                (
                    Model::Mlp(child),
                    target_domain,
                    vec![ds_id],
                    format!("finetune {} epochs={}", cfg.optimizer.describe(), cfg.epochs),
                    None,
                )
            } else {
                let lcfg = LoraConfig {
                    layer: rng.index(mlp.num_layers()),
                    // Realistic adapter ranks (hubs ship rank 4-16); rank-1
                    // adapters are spectrally indistinguishable from edits.
                    rank: 2 + rng.index(3),
                    epochs: spec.epochs / 2 + 1,
                    seed: step_seed.derive("lora").0,
                    ..LoraConfig::default()
                };
                let (child, _) = lora_finetune(mlp, &data, &lcfg).ok()?;
                (
                    Model::Mlp(child),
                    target_domain,
                    vec![ds_id],
                    format!("lora(layer={}, rank={})", lcfg.layer, lcfg.rank),
                    None,
                )
            }
        }
        TransformKind::Edit => {
            let layer = rng.index(mlp.num_layers());
            let (fan_out, fan_in) = mlp.weight(layer).shape();
            let mut key = vec![0.0f32; fan_in];
            let mut value = vec![0.0f32; fan_out];
            let mut erng = step_seed.derive("edit").rng();
            erng.fill_normal(&mut key);
            erng.fill_normal(&mut value);
            let child = edit_mlp(mlp, &EditSpec { layer, key, value }).ok()?;
            (
                Model::Mlp(child),
                parent.domain.clone(),
                parent.trained_on.clone(),
                format!("edit(layer={layer})"),
                None,
            )
        }
        TransformKind::Distill => {
            let probes = tabular::probe_inputs(
                spec.tabular.dim,
                spec.train_examples,
                spec.tabular.separation,
                step_seed.derive("distill-probes"),
            );
            let cfg = DistillConfig {
                student_hidden: vec![12 + rng.index(3) * 4],
                activation: mlp.activation(),
                epochs: spec.epochs,
                seed: step_seed.derive("distill").0,
                ..DistillConfig::default()
            };
            let child = distill_mlp(mlp, &probes, &cfg).ok()?;
            (
                Model::Mlp(child),
                parent.domain.clone(),
                parent.trained_on.clone(),
                format!("distill(hidden={:?}, T={})", cfg.student_hidden, cfg.temperature),
                None,
            )
        }
        TransformKind::Stitch => {
            // Need an architecture-compatible second parent in the lake.
            let arch = mlp.architecture();
            let candidates: Vec<usize> = (0..gt.models.len())
                .filter(|&i| {
                    i != parent_idx
                        && gt.models[i]
                            .model
                            .as_mlp()
                            .is_some_and(|m| m.architecture() == arch)
                })
                .collect();
            let &other_idx = rng.choose(&candidates)?;
            let other = gt.models[other_idx].model.as_mlp()?;
            let cut = 1 + rng.index(mlp.num_layers() - 1);
            let child = stitch_mlp(mlp, other, cut).ok()?;
            let mut trained_on = parent.trained_on.clone();
            trained_on.extend(gt.models[other_idx].trained_on.iter().copied());
            (
                Model::Mlp(child),
                parent.domain.clone(),
                trained_on,
                format!("stitch(cut={cut})"),
                Some(other_idx),
            )
        }
        TransformKind::Prune => {
            let fraction = 0.3 + rng.next_f32() * 0.4;
            let child = prune_mlp(mlp, fraction).ok()?;
            (
                Model::Mlp(child),
                parent.domain.clone(),
                parent.trained_on.clone(),
                format!("prune(fraction={fraction:.2})"),
                None,
            )
        }
        TransformKind::Quantize => {
            let bits = 4 + rng.index(3) as u32 * 2;
            let child = quantize_mlp(mlp, bits).ok()?;
            (
                Model::Mlp(child),
                parent.domain.clone(),
                parent.trained_on.clone(),
                format!("quantize(bits={bits})"),
                None,
            )
        }
    };
    let name = format!("{domain}-{}-{}-d{depth}", kind.name(), gt.models.len());
    Some((
        GeneratedModel {
            name,
            model,
            domain,
            family: parent.family,
            depth,
            trained_on,
            transform: Some(kind),
            algorithm,
            seed: step_seed.0,
        },
        GtEdge {
            parent: parent_idx,
            child: usize::MAX, // fixed up by caller
            kind,
            second_parent,
        },
        new_datasets,
    ))
}

fn derive_lm_child(
    spec: &LakeSpec,
    gt: &GroundTruth,
    parent_idx: usize,
    step_seed: Seed,
    rng: &mut Pcg64,
    next_dataset: &mut u64,
    root: Seed,
) -> DeriveOutcome {
    let parent = &gt.models[parent_idx];
    // The caller routes by family kind, so the parent is an LM; a
    // mismatch just yields no child (the derivation loop retries).
    let lm = parent.model.as_lm()?;
    let domains = Domain::builtin();
    let kinds = [
        TransformKind::FineTune,
        TransformKind::Edit,
        TransformKind::Distill,
        TransformKind::Stitch,
    ];
    let kind = kinds[rng.index(kinds.len())];
    let depth = parent.depth + 1;
    let mut new_datasets = Vec::new();
    let (model, domain, trained_on, algorithm, second_parent) = match kind {
        TransformKind::FineTune => {
            let target_domain = domains[rng.index(domains.len())].clone();
            let corpus = corpus::sample_corpus(
                &target_domain,
                spec.corpus_len / 2,
                root,
                step_seed.derive("ft-corpus"),
            );
            let ds = Dataset {
                id: DatasetId(*next_dataset),
                name: format!("{target_domain}-corpus-ft-{}", *next_dataset),
                domain: target_domain.clone(),
                kind: DatasetKind::Corpus(corpus.clone()),
                parent: None,
                derived_by: None,
            };
            *next_dataset += 1;
            let ds_id = ds.id;
            new_datasets.push(ds);
            let child = finetune_lm(lm, &corpus, 2.0).ok()?;
            (
                Model::Lm(child),
                target_domain,
                vec![ds_id],
                "lm-finetune(weight=2.0)".to_string(),
                None,
            )
        }
        TransformKind::Edit => {
            let mut erng = step_seed.derive("lm-edit").rng();
            let ctx = vec![erng.index(lm.vocab())];
            let token = erng.index(lm.vocab());
            let mut child = lm.clone();
            child.edit(&ctx, token, 0.8).ok()?;
            (
                Model::Lm(child),
                parent.domain.clone(),
                parent.trained_on.clone(),
                format!("lm-edit(ctx={ctx:?}, token={token})"),
                None,
            )
        }
        TransformKind::Distill => {
            // Student learns from teacher samples — weights rebuilt from
            // scratch, behaviour inherited.
            let mut srng = step_seed.derive("lm-distill").rng();
            let sample = lm.sample(&[0], spec.corpus_len, &mut srng).ok()?;
            let mut student = NgramLm::new(lm.vocab(), lm.order(), 0.2).ok()?;
            student.add_counts(&sample, 1.0).ok()?;
            (
                Model::Lm(student),
                parent.domain.clone(),
                parent.trained_on.clone(),
                "lm-distill(samples)".to_string(),
                None,
            )
        }
        _ => {
            // Merge (interpolation) — the two-parent LM case, labelled Stitch.
            let candidates: Vec<usize> = (0..gt.models.len())
                .filter(|&i| {
                    i != parent_idx
                        && gt.models[i]
                            .model
                            .as_lm()
                            .is_some_and(|o| o.vocab() == lm.vocab() && o.order() == lm.order())
                })
                .collect();
            let &other_idx = rng.choose(&candidates)?;
            let other = gt.models[other_idx].model.as_lm()?;
            let lambda = 0.3 + f64::from(rng.next_f32()) * 0.4;
            let child = lm.interpolate(other, lambda).ok()?;
            let mut trained_on = parent.trained_on.clone();
            trained_on.extend(gt.models[other_idx].trained_on.iter().copied());
            (
                Model::Lm(child),
                parent.domain.clone(),
                trained_on,
                format!("lm-merge(lambda={lambda:.2})"),
                Some(other_idx),
            )
        }
    };
    let name = format!("{domain}-lm-{}-{}-d{depth}", kind.name(), gt.models.len());
    Some((
        GeneratedModel {
            name,
            model,
            domain,
            family: parent.family,
            depth,
            trained_on,
            transform: Some(kind),
            algorithm,
            seed: step_seed.0,
        },
        GtEdge {
            parent: parent_idx,
            child: usize::MAX,
            kind,
            second_parent,
        },
        new_datasets,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lake() -> GroundTruth {
        generate_lake(&LakeSpec::tiny(42))
    }

    #[test]
    fn lake_is_deterministic() {
        let a = lake();
        let b = lake();
        assert_eq!(a.models.len(), b.models.len());
        assert_eq!(a.edges, b.edges);
        for (x, y) in a.models.iter().zip(&b.models) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.model.flat_params(), y.model.flat_params());
        }
    }

    #[test]
    fn base_models_then_derivations() {
        let gt = lake();
        let spec = LakeSpec::tiny(42);
        assert!(gt.models.len() >= spec.num_base_models);
        for (i, m) in gt.models.iter().enumerate() {
            if i < spec.num_base_models {
                assert_eq!(m.depth, 0);
                assert!(m.transform.is_none());
            } else {
                assert!(m.depth >= 1);
                assert!(m.transform.is_some());
            }
            assert!(m.depth <= spec.max_depth);
            assert!(!m.trained_on.is_empty());
        }
    }

    #[test]
    fn edges_are_consistent() {
        let gt = lake();
        for e in &gt.edges {
            assert!(e.parent < gt.models.len());
            assert!(e.child < gt.models.len());
            assert!(e.parent < e.child, "children are generated after parents");
            assert_eq!(gt.models[e.child].transform, Some(e.kind));
            assert_eq!(gt.models[e.child].depth, gt.models[e.parent].depth + 1);
            // Family follows the primary parent.
            assert_eq!(gt.models[e.child].family, gt.models[e.parent].family);
        }
        // Every derived model has exactly one incoming primary edge.
        let spec = LakeSpec::tiny(42);
        for i in spec.num_base_models..gt.models.len() {
            let incoming = gt.edges.iter().filter(|e| e.child == i).count();
            assert_eq!(incoming, 1, "model {i}");
        }
    }

    #[test]
    fn contains_lm_and_mlp_families() {
        let gt = lake();
        assert!(gt.models.iter().any(|m| m.model.as_lm().is_some()));
        assert!(gt.models.iter().any(|m| m.model.as_mlp().is_some()));
    }

    #[test]
    fn ancestor_and_children_helpers() {
        let gt = lake();
        if let Some(e) = gt.edges.first() {
            assert!(gt.is_ancestor(e.parent, e.child));
            assert!(!gt.is_ancestor(e.child, e.parent));
            assert!(gt.children_of(e.parent).contains(&e.child));
            assert_eq!(gt.parent_of(e.child), Some(e.parent));
        }
        assert_eq!(gt.parent_of(0), None);
    }

    #[test]
    fn relevance_grades() {
        let gt = lake();
        assert_eq!(gt.relevance(0, 0), 2);
        for f in gt.family_members(0) {
            assert_eq!(gt.relevance(0, f), 2);
        }
    }

    #[test]
    fn dataset_version_closure() {
        let gt = lake();
        // Dataset 0 belongs to family 0's base model; augmented/subset
        // versions exist for even dataset ids.
        let hits = gt.trained_on_dataset_or_versions(DatasetId(0));
        assert!(hits.contains(&0));
        assert!(gt.dataset(DatasetId(0)).is_some());
        assert!(gt.dataset(DatasetId(9999)).is_none());
    }

    #[test]
    fn names_are_unique() {
        let gt = lake();
        let mut names: Vec<&str> = gt.models.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn larger_lake_generates_requested_derivations() {
        let spec = LakeSpec {
            seed: 7,
            num_base_models: 4,
            derivations_per_base: 3,
            ..LakeSpec::tiny(7)
        };
        let gt = generate_lake(&spec);
        assert_eq!(gt.models.len(), 4 + 12);
        assert_eq!(gt.edges.len(), 12);
    }
}
