//! Domain-flavoured token corpora for language-model training.
//!
//! Corpora are sampled from a domain-specific Markov chain built on Zipf
//! unigram preferences, so (a) different domains yield measurably different
//! LMs, (b) an LM's perplexity on held-out domain text is a meaningful
//! benchmark score, and (c) "trained on corpus X" is a checkable claim.

use crate::domain::Domain;
use mlake_tensor::{Pcg64, Seed};

/// Vocabulary size shared by every corpus in the lake. Small enough that
/// trigram tables stay tiny, large enough for distinct domain profiles.
pub const VOCAB: usize = 24;

/// Samples a corpus of `len` tokens in `domain`'s style.
pub fn sample_corpus(domain: &Domain, len: usize, root: Seed, draw: Seed) -> Vec<usize> {
    let affinity = domain.bigram_affinity(root, VOCAB);
    let unigram = domain.token_weights(root, VOCAB);
    let mut rng: Pcg64 = draw.derive("corpus-draw").rng();
    let mut out = Vec::with_capacity(len);
    // Domain weight vectors are strictly positive Zipf masses, so
    // `weighted_index` cannot fail; the fallback keeps sampling total
    // without an unreachable panic path.
    let mut prev = rng.weighted_index(&unigram).unwrap_or(0);
    out.push(prev);
    while out.len() < len {
        let row = &affinity[prev];
        let next = rng.weighted_index(row).unwrap_or(0);
        out.push(next);
        prev = next;
    }
    out
}

/// Mixes two domains' text `(1-lambda) : lambda` by sampling alternate
/// stretches — models "trained on legal with a little finance".
pub fn sample_mixed_corpus(
    a: &Domain,
    b: &Domain,
    lambda: f32,
    len: usize,
    root: Seed,
    draw: Seed,
) -> Vec<usize> {
    let lambda = lambda.clamp(0.0, 1.0);
    let stretch = 32usize;
    let mut rng: Pcg64 = draw.derive("mix-choice").rng();
    let mut out = Vec::with_capacity(len);
    let mut chunk = 0u64;
    while out.len() < len {
        let src = if rng.next_f32() < lambda { b } else { a };
        let part = sample_corpus(
            src,
            stretch.min(len - out.len()),
            root,
            draw.derive("mix-part").derive_u64(chunk),
        );
        out.extend(part);
        chunk += 1;
    }
    out
}

/// Fixed probe contexts for extrinsic LM fingerprints: every model is asked
/// for its next-token distribution after each of these contexts.
pub fn probe_contexts(n: usize, context_len: usize, seed: Seed) -> Vec<Vec<usize>> {
    let mut rng = seed.derive("lm-probes").rng();
    (0..n)
        .map(|_| (0..context_len).map(|_| rng.index(VOCAB)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::NgramLm;

    #[test]
    fn corpus_tokens_in_vocab() {
        let c = sample_corpus(&Domain::new("legal"), 500, Seed::new(1), Seed::new(2));
        assert_eq!(c.len(), 500);
        assert!(c.iter().all(|&t| t < VOCAB));
    }

    #[test]
    fn deterministic() {
        let d = Domain::new("news");
        let a = sample_corpus(&d, 100, Seed::new(1), Seed::new(2));
        let b = sample_corpus(&d, 100, Seed::new(1), Seed::new(2));
        assert_eq!(a, b);
        assert_ne!(a, sample_corpus(&d, 100, Seed::new(1), Seed::new(3)));
    }

    #[test]
    fn lm_prefers_its_own_domain() {
        let root = Seed::new(9);
        let legal = Domain::new("legal");
        let medical = Domain::new("medical");
        let train = sample_corpus(&legal, 4000, root, Seed::new(10));
        let mut lm = NgramLm::new(VOCAB, 2, 0.2).unwrap();
        lm.add_counts(&train, 1.0).unwrap();
        let held_legal = sample_corpus(&legal, 800, root, Seed::new(11));
        let held_medical = sample_corpus(&medical, 800, root, Seed::new(12));
        let ppl_legal = lm.perplexity(&held_legal).unwrap();
        let ppl_medical = lm.perplexity(&held_medical).unwrap();
        assert!(
            ppl_legal < ppl_medical,
            "in-domain ppl {ppl_legal} !< out-of-domain {ppl_medical}"
        );
    }

    #[test]
    fn mixed_corpus_interpolates() {
        let root = Seed::new(9);
        let a = Domain::new("legal");
        let b = Domain::new("finance");
        let mixed = sample_mixed_corpus(&a, &b, 0.5, 1000, root, Seed::new(13));
        assert_eq!(mixed.len(), 1000);
        // lambda=0 equals pure-a style: an LM trained on it scores a-text well.
        let pure = sample_mixed_corpus(&a, &b, 0.0, 2000, root, Seed::new(14));
        let mut lm = NgramLm::new(VOCAB, 2, 0.2).unwrap();
        lm.add_counts(&pure, 1.0).unwrap();
        let held_a = sample_corpus(&a, 500, root, Seed::new(15));
        let held_b = sample_corpus(&b, 500, root, Seed::new(16));
        assert!(lm.perplexity(&held_a).unwrap() < lm.perplexity(&held_b).unwrap());
    }

    #[test]
    fn probe_contexts_shape() {
        let probes = probe_contexts(10, 2, Seed::new(4));
        assert_eq!(probes.len(), 10);
        assert!(probes.iter().all(|p| p.len() == 2 && p.iter().all(|&t| t < VOCAB)));
        assert_eq!(probes, probe_contexts(10, 2, Seed::new(4)));
    }
}
