//! Datasets as first-class, versioned lake citizens.
//!
//! The paper's "Holistic Management of Models and Data" (§5) argues model
//! lakes must track the data models are trained on, including *dataset
//! versions* ("when searching for models trained on a dataset, users may want
//! to find models trained on versions of the dataset"). A [`Dataset`] records
//! its content, its domain, and — when derived — its parent and the
//! derivation operation.

use crate::domain::Domain;
use mlake_nn::LabeledData;
use mlake_tensor::{Pcg64, Seed};
use serde::{Deserialize, Serialize};

/// Stable dataset identifier within a lake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DatasetId(pub u64);

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ds-{:04}", self.0)
    }
}

/// Dataset payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Labelled tabular data.
    Tabular(LabeledData),
    /// Token corpus.
    Corpus(Vec<usize>),
}

/// Operation that derived a dataset version from its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetVersionOp {
    /// Random subset of the parent.
    Subset,
    /// Parent plus feature noise (tabular) or token dropout (corpus).
    Augment,
    /// Parent with a fraction of labels re-assigned (tabular only).
    Relabel,
}

impl DatasetVersionOp {
    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetVersionOp::Subset => "subset",
            DatasetVersionOp::Augment => "augment",
            DatasetVersionOp::Relabel => "relabel",
        }
    }
}

/// A dataset with provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Identifier.
    pub id: DatasetId,
    /// Human-readable name, e.g. `"legal-corpus-v1"`.
    pub name: String,
    /// Originating domain.
    pub domain: Domain,
    /// Payload.
    pub kind: DatasetKind,
    /// Parent dataset when this is a derived version.
    pub parent: Option<DatasetId>,
    /// How it was derived from the parent.
    pub derived_by: Option<DatasetVersionOp>,
}

impl Dataset {
    /// Number of examples (rows or tokens).
    pub fn len(&self) -> usize {
        match &self.kind {
            DatasetKind::Tabular(d) => d.len(),
            DatasetKind::Corpus(c) => c.len(),
        }
    }

    /// `true` when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows tabular content, if any.
    pub fn as_tabular(&self) -> Option<&LabeledData> {
        match &self.kind {
            DatasetKind::Tabular(d) => Some(d),
            DatasetKind::Corpus(_) => None,
        }
    }

    /// Borrows corpus content, if any.
    pub fn as_corpus(&self) -> Option<&[usize]> {
        match &self.kind {
            DatasetKind::Corpus(c) => Some(c),
            DatasetKind::Tabular(_) => None,
        }
    }

    /// Derives a new version via `op`. `id` and `name` are supplied by the
    /// caller (the lake owns identifier allocation). `strength` controls the
    /// op: subset keep-fraction, augment noise scale, relabel fraction.
    pub fn derive_version(
        &self,
        id: DatasetId,
        name: impl Into<String>,
        op: DatasetVersionOp,
        strength: f32,
        seed: Seed,
    ) -> mlake_tensor::Result<Dataset> {
        let mut rng: Pcg64 = seed.derive("dataset-version").rng();
        let kind = match (&self.kind, op) {
            (DatasetKind::Tabular(d), DatasetVersionOp::Subset) => {
                let keep = ((d.len() as f32) * strength.clamp(0.05, 1.0)).max(1.0) as usize;
                let idx = rng.sample_indices(d.len(), keep);
                DatasetKind::Tabular(d.select(&idx)?)
            }
            (DatasetKind::Tabular(d), DatasetVersionOp::Augment) => {
                let mut x = d.x.clone();
                for v in x.as_mut_slice() {
                    *v += rng.normal() * strength;
                }
                DatasetKind::Tabular(LabeledData::new(x, d.y.clone())?)
            }
            (DatasetKind::Tabular(d), DatasetVersionOp::Relabel) => {
                let classes = d.num_classes().max(2);
                let mut y = d.y.clone();
                for label in &mut y {
                    if rng.bernoulli(strength.clamp(0.0, 1.0)) {
                        *label = rng.index(classes);
                    }
                }
                DatasetKind::Tabular(LabeledData::new(d.x.clone(), y)?)
            }
            (DatasetKind::Corpus(c), DatasetVersionOp::Subset) => {
                let keep = ((c.len() as f32) * strength.clamp(0.05, 1.0)).max(1.0) as usize;
                let start = rng.index(c.len().saturating_sub(keep).max(1));
                DatasetKind::Corpus(c[start..(start + keep).min(c.len())].to_vec())
            }
            (DatasetKind::Corpus(c), DatasetVersionOp::Augment) => {
                // Token dropout: remove a `strength` fraction of tokens.
                let kept: Vec<usize> = c
                    .iter()
                    .copied()
                    .filter(|_| !rng.bernoulli(strength.clamp(0.0, 0.9)))
                    .collect();
                DatasetKind::Corpus(kept)
            }
            (DatasetKind::Corpus(_), DatasetVersionOp::Relabel) => {
                return Err(mlake_tensor::TensorError::Empty(
                    "relabel is undefined for corpora",
                ))
            }
        };
        Ok(Dataset {
            id,
            name: name.into(),
            domain: self.domain.clone(),
            kind,
            parent: Some(self.id),
            derived_by: Some(op),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabular::{sample_tabular, TabularSpec};

    fn tabular_dataset() -> Dataset {
        let domain = Domain::new("legal");
        let data = sample_tabular(&domain, &TabularSpec::default(), 60, Seed::new(1), Seed::new(2));
        Dataset {
            id: DatasetId(0),
            name: "legal-tab-v1".into(),
            domain,
            kind: DatasetKind::Tabular(data),
            parent: None,
            derived_by: None,
        }
    }

    fn corpus_dataset() -> Dataset {
        let domain = Domain::new("news");
        let corpus = crate::corpus::sample_corpus(&domain, 300, Seed::new(1), Seed::new(3));
        Dataset {
            id: DatasetId(1),
            name: "news-corpus-v1".into(),
            domain,
            kind: DatasetKind::Corpus(corpus),
            parent: None,
            derived_by: None,
        }
    }

    #[test]
    fn accessors() {
        let t = tabular_dataset();
        assert_eq!(t.len(), 60);
        assert!(!t.is_empty());
        assert!(t.as_tabular().is_some());
        assert!(t.as_corpus().is_none());
        let c = corpus_dataset();
        assert!(c.as_corpus().is_some());
        assert!(c.as_tabular().is_none());
        assert_eq!(DatasetId(7).to_string(), "ds-0007");
    }

    #[test]
    fn subset_version_shrinks_and_links_parent() {
        let t = tabular_dataset();
        let v2 = t
            .derive_version(DatasetId(10), "legal-tab-v2", DatasetVersionOp::Subset, 0.5, Seed::new(9))
            .unwrap();
        assert_eq!(v2.len(), 30);
        assert_eq!(v2.parent, Some(DatasetId(0)));
        assert_eq!(v2.derived_by, Some(DatasetVersionOp::Subset));
        assert_eq!(v2.domain, t.domain);
    }

    #[test]
    fn augment_preserves_labels_perturbs_features() {
        let t = tabular_dataset();
        let v2 = t
            .derive_version(DatasetId(11), "v2", DatasetVersionOp::Augment, 0.1, Seed::new(9))
            .unwrap();
        let orig = t.as_tabular().unwrap();
        let aug = v2.as_tabular().unwrap();
        assert_eq!(orig.y, aug.y);
        assert_ne!(orig.x, aug.x);
        assert_eq!(orig.x.shape(), aug.x.shape());
    }

    #[test]
    fn relabel_changes_some_labels() {
        let t = tabular_dataset();
        let v2 = t
            .derive_version(DatasetId(12), "v2", DatasetVersionOp::Relabel, 0.5, Seed::new(9))
            .unwrap();
        let changed = t
            .as_tabular()
            .unwrap()
            .y
            .iter()
            .zip(&v2.as_tabular().unwrap().y)
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 5, "changed {changed}");
    }

    #[test]
    fn corpus_versions() {
        let c = corpus_dataset();
        let sub = c
            .derive_version(DatasetId(13), "v2", DatasetVersionOp::Subset, 0.4, Seed::new(9))
            .unwrap();
        assert_eq!(sub.len(), 120);
        let aug = c
            .derive_version(DatasetId(14), "v3", DatasetVersionOp::Augment, 0.3, Seed::new(9))
            .unwrap();
        assert!(aug.len() < c.len());
        assert!(aug.len() > c.len() / 2);
        assert!(c
            .derive_version(DatasetId(15), "v4", DatasetVersionOp::Relabel, 0.3, Seed::new(9))
            .is_err());
    }

    #[test]
    fn op_names() {
        assert_eq!(DatasetVersionOp::Subset.name(), "subset");
        assert_eq!(DatasetVersionOp::Augment.name(), "augment");
        assert_eq!(DatasetVersionOp::Relabel.name(), "relabel");
    }
}
