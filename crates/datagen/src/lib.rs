//! # mlake-datagen
//!
//! Synthetic domains, corpora, datasets and — most importantly — the
//! **benchmark model lake with verified ground truth** that the paper calls
//! for (§3 Benchmarking: "within a benchmark lake, we will need verified
//! ground truth"; §5: "a comprehensive benchmark dataset is needed — one that
//! includes labeled model parameters, architectures, and detailed
//! transformation records").
//!
//! The generator trains real (small) models on synthetic domain data and
//! applies the real transformation operators from `mlake-nn`, recording the
//! exact derivation graph, training datasets and hyper-parameters. Every
//! experiment in EXPERIMENTS.md evaluates lake-task solutions against this
//! recorded truth.
//!
//! * [`domain`] — named domains (legal, medical, …) with deterministic
//!   tabular class geometry and text style;
//! * [`tabular`] — Gaussian-mixture classification data per domain;
//! * [`corpus`] — Zipf/Markov token corpora per domain;
//! * [`dataset`] — datasets as first-class, versioned lake citizens;
//! * [`lakegen`] — the ground-truth lake generator.

pub mod corpus;
pub mod dataset;
pub mod domain;
pub mod lakegen;
pub mod tabular;

pub use dataset::{Dataset, DatasetId, DatasetKind, DatasetVersionOp};
pub use domain::Domain;
pub use lakegen::{generate_lake, GeneratedModel, GroundTruth, GtEdge, LakeSpec, LakeSpecBuilder};
