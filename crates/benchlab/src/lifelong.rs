//! Lifelong benchmarks (Prabhu et al. 2024, cited in §5): benchmarks that
//! grow over time without re-evaluating every model from scratch.
//!
//! The pool holds classification probes in arrival order; per-model results
//! are cached per probe, so adding probes or models costs only the delta.
//! A subsampled estimator gives cheap approximate scores with a normal-
//! approximation confidence interval.

use mlake_nn::{LabeledData, Model};
use mlake_tensor::{Pcg64, TensorError};
use std::collections::HashMap;

/// A growing benchmark with cached incremental evaluation.
#[derive(Debug, Clone, Default)]
pub struct LifelongBenchmark {
    /// Probe examples in arrival order.
    probes: Vec<(Vec<f32>, usize)>,
    /// `cache[model_id][probe_index] = correct?`
    cache: HashMap<u64, Vec<bool>>,
    /// Number of probe evaluations performed (the cost metric E4 reports).
    evaluations: u64,
}

impl LifelongBenchmark {
    /// Creates an empty pool.
    pub fn new() -> LifelongBenchmark {
        LifelongBenchmark::default()
    }

    /// Number of probes currently pooled.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// `true` when no probes are pooled.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Total probe evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Appends new probes from a labelled dataset.
    pub fn extend(&mut self, data: &LabeledData) {
        for (row, &y) in data.x.rows_iter().zip(&data.y) {
            self.probes.push((row.to_vec(), y));
        }
    }

    /// Full (cached) accuracy of `model` under `model_id`: only probes not
    /// yet evaluated for this model are run.
    pub fn accuracy(&mut self, model_id: u64, model: &Model) -> mlake_tensor::Result<f32> {
        if self.probes.is_empty() {
            return Ok(0.0);
        }
        let entry = self.cache.entry(model_id).or_default();
        for (x, y) in self.probes.iter().skip(entry.len()) {
            let probs = model.predict_probs(x)?;
            let pred = mlake_tensor::vector::argmax(&probs)
                .ok_or(TensorError::Empty("lifelong probe"))?;
            entry.push(pred == *y);
            self.evaluations += 1;
        }
        let correct = entry.iter().filter(|&&c| c).count();
        Ok(correct as f32 / self.probes.len() as f32)
    }

    /// Subsampled accuracy estimate with a 95% normal-approximation
    /// confidence half-width: `(estimate, half_width)`. Does not populate
    /// the cache (it deliberately avoids full evaluation).
    pub fn sampled_accuracy(
        &mut self,
        model: &Model,
        sample_size: usize,
        rng: &mut Pcg64,
    ) -> mlake_tensor::Result<(f32, f32)> {
        if self.probes.is_empty() || sample_size == 0 {
            return Ok((0.0, 0.0));
        }
        let idx = rng.sample_indices(self.probes.len(), sample_size);
        let mut correct = 0usize;
        for &i in &idx {
            let (x, y) = &self.probes[i];
            let probs = model.predict_probs(x)?;
            let pred = mlake_tensor::vector::argmax(&probs)
                .ok_or(TensorError::Empty("lifelong probe"))?;
            if pred == *y {
                correct += 1;
            }
            self.evaluations += 1;
        }
        let n = idx.len() as f32;
        let p = correct as f32 / n;
        let half = 1.96 * (p * (1.0 - p) / n).sqrt();
        Ok((p, half))
    }

    /// Forgets cached results for a model (e.g. after it was replaced).
    pub fn invalidate(&mut self, model_id: u64) {
        self.cache.remove(&model_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::{train_mlp, Activation, Mlp, TrainConfig};
    use mlake_tensor::{init::Init, Matrix, Seed};

    fn data(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("ll-data").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![center + rng.normal() * 0.4, center + rng.normal() * 0.4]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    fn model() -> Model {
        let mut rng = Seed::new(1).derive("init").rng();
        let mut m = Mlp::new(vec![2, 8, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        train_mlp(&mut m, &data(100, 1), &TrainConfig { epochs: 20, ..Default::default() })
            .unwrap();
        Model::Mlp(m)
    }

    #[test]
    fn incremental_evaluation_only_pays_the_delta() {
        let mut bench = LifelongBenchmark::new();
        bench.extend(&data(50, 2));
        let m = model();
        let a1 = bench.accuracy(7, &m).unwrap();
        assert_eq!(bench.evaluations(), 50);
        // Re-asking costs nothing.
        let a2 = bench.accuracy(7, &m).unwrap();
        assert_eq!(bench.evaluations(), 50);
        assert_eq!(a1, a2);
        // Growing the pool pays only for the new probes.
        bench.extend(&data(25, 3));
        bench.accuracy(7, &m).unwrap();
        assert_eq!(bench.evaluations(), 75);
        assert_eq!(bench.len(), 75);
    }

    #[test]
    fn accuracy_is_high_for_good_model() {
        let mut bench = LifelongBenchmark::new();
        bench.extend(&data(60, 4));
        let acc = bench.accuracy(1, &model()).unwrap();
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn sampled_estimate_brackets_truth() {
        let mut bench = LifelongBenchmark::new();
        bench.extend(&data(400, 5));
        let m = model();
        let truth = bench.accuracy(1, &m).unwrap();
        let mut rng = Seed::new(6).rng();
        let (est, half) = bench.sampled_accuracy(&m, 100, &mut rng).unwrap();
        assert!(
            (est - truth).abs() <= half + 0.1,
            "estimate {est}±{half} vs truth {truth}"
        );
        assert!(half > 0.0 || est == 1.0 || est == 0.0);
    }

    #[test]
    fn invalidation_and_edges() {
        let mut bench = LifelongBenchmark::new();
        assert_eq!(bench.accuracy(1, &model()).unwrap(), 0.0);
        assert!(bench.is_empty());
        bench.extend(&data(10, 7));
        bench.accuracy(1, &model()).unwrap();
        bench.invalidate(1);
        bench.accuracy(1, &model()).unwrap();
        assert_eq!(bench.evaluations(), 20);
        let mut rng = Seed::new(8).rng();
        assert_eq!(bench.sampled_accuracy(&model(), 0, &mut rng).unwrap(), (0.0, 0.0));
    }
}
