//! Evaluation metrics for classifiers, language models and generative
//! distributions.

use mlake_nn::{LabeledData, Mlp};
use mlake_tensor::{linalg, vector, Matrix, TensorError};

/// Confusion matrix with helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct Confusion {
    /// `counts[true_class][predicted_class]`.
    pub counts: Vec<Vec<usize>>,
}

impl Confusion {
    /// Builds the confusion matrix of `model` on `data` over `num_classes`.
    pub fn of(model: &Mlp, data: &LabeledData, num_classes: usize) -> mlake_tensor::Result<Self> {
        let k = num_classes.max(data.num_classes());
        let mut counts = vec![vec![0usize; k]; k];
        for (row, &y) in data.x.rows_iter().zip(&data.y) {
            let pred = model.predict_class(row)?;
            if y < k && pred < k {
                counts[y][pred] += 1;
            }
        }
        Ok(Confusion { counts })
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f32 / total as f32
    }

    /// Per-class precision (`None` when the class was never predicted).
    pub fn precision(&self, class: usize) -> Option<f32> {
        let predicted: usize = self.counts.iter().map(|row| row[class]).sum();
        if predicted == 0 {
            return None;
        }
        Some(self.counts[class][class] as f32 / predicted as f32)
    }

    /// Per-class recall (`None` when the class never occurs).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            return None;
        }
        Some(self.counts[class][class] as f32 / actual as f32)
    }

    /// Macro-averaged F1 over classes that occur.
    pub fn macro_f1(&self) -> f32 {
        let mut acc = 0.0f32;
        let mut n = 0usize;
        for c in 0..self.counts.len() {
            if let (Some(p), Some(r)) = (self.precision(c), self.recall(c)) {
                if p + r > 0.0 {
                    acc += 2.0 * p * r / (p + r);
                }
                n += 1;
            } else if self.recall(c).is_some() {
                // Class occurs but never predicted: F1 = 0 counts.
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f32
        }
    }
}

/// Expected calibration error with equal-width confidence bins: mean
/// |confidence − accuracy| weighted by bin mass.
pub fn expected_calibration_error(
    model: &Mlp,
    data: &LabeledData,
    bins: usize,
) -> mlake_tensor::Result<f32> {
    if data.is_empty() || bins == 0 {
        return Ok(0.0);
    }
    let mut bin_conf = vec![0.0f64; bins];
    let mut bin_correct = vec![0.0f64; bins];
    let mut bin_count = vec![0usize; bins];
    for (row, &y) in data.x.rows_iter().zip(&data.y) {
        let probs = model.predict_probs(row)?;
        let pred = vector::argmax(&probs).ok_or(TensorError::Empty("ece"))?;
        let conf = probs[pred];
        let b = ((conf * bins as f32) as usize).min(bins - 1);
        bin_conf[b] += f64::from(conf);
        bin_correct[b] += if pred == y { 1.0 } else { 0.0 };
        bin_count[b] += 1;
    }
    let n = data.len() as f64;
    let mut ece = 0.0f64;
    for b in 0..bins {
        if bin_count[b] == 0 {
            continue;
        }
        let c = bin_count[b] as f64;
        ece += (c / n) * ((bin_conf[b] / c) - (bin_correct[b] / c)).abs();
    }
    Ok(ece as f32)
}

/// Fréchet distance between Gaussian fits of two feature-sample matrices
/// (rows = samples) — the construction behind FID. Uses the exact matrix
/// square root via Jacobi eigendecomposition; suitable for the small feature
/// dimensions used here.
pub fn frechet_distance(a: &Matrix, b: &Matrix) -> mlake_tensor::Result<f32> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "frechet",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if a.rows() < 2 || b.rows() < 2 {
        return Err(TensorError::Empty("frechet samples"));
    }
    let mu_a = a.col_means();
    let mu_b = b.col_means();
    let cov = |m: &Matrix| -> mlake_tensor::Result<Matrix> {
        let mut c = m.clone();
        c.center_cols();
        let ct = c.transpose().matmul(&c)?;
        Ok(ct.scale(1.0 / (m.rows() - 1) as f32))
    };
    let ca = cov(a)?;
    let cb = cov(b)?;
    // tr(Ca + Cb − 2·(Ca Cb)^{1/2}); with Ca^{1/2} = Va √Λa Vaᵀ,
    // (Ca Cb)^{1/2} has the same trace as (Ca^{1/2} Cb Ca^{1/2})^{1/2},
    // which is symmetric PSD so its eigen square roots sum the trace.
    let sqrt_ca = matrix_sqrt(&ca)?;
    let inner = sqrt_ca.matmul(&cb)?.matmul(&sqrt_ca)?;
    let (eigs, _) = linalg::jacobi_eigen(&inner, 60)?;
    let tr_sqrt: f32 = eigs.iter().map(|&e| e.max(0.0).sqrt()).sum();
    let tr_a: f32 = (0..ca.rows()).map(|i| ca.at(i, i)).sum();
    let tr_b: f32 = (0..cb.rows()).map(|i| cb.at(i, i)).sum();
    let mean_term = vector::l2_distance_sq(&mu_a, &mu_b);
    Ok((mean_term + tr_a + tr_b - 2.0 * tr_sqrt).max(0.0))
}

fn matrix_sqrt(c: &Matrix) -> mlake_tensor::Result<Matrix> {
    let (eigs, vecs) = linalg::jacobi_eigen(c, 60)?;
    let n = c.rows();
    // vecs rows are eigenvectors: C = Σ λ_i v_i v_iᵀ → √C = Σ √λ_i v_i v_iᵀ.
    let mut out = Matrix::zeros(n, n);
    for (i, &l) in eigs.iter().enumerate() {
        let s = l.max(0.0).sqrt();
        if s == 0.0 {
            continue;
        }
        let v = vecs.row(i);
        for r in 0..n {
            for cix in 0..n {
                let val = out.at(r, cix) + s * v[r] * v[cix];
                out.set_at(r, cix, val);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::{train_mlp, Activation, TrainConfig};
    use mlake_tensor::{init::Init, Pcg64, Seed};

    fn trained() -> (Mlp, LabeledData) {
        let mut rng = Seed::new(91).derive("init").rng();
        let mut m = Mlp::new(vec![2, 8, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        let mut drng = Seed::new(92).derive("data").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![center + drng.normal() * 0.4, center + drng.normal() * 0.4]);
            labels.push(c);
        }
        let data = LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();
        train_mlp(&mut m, &data, &TrainConfig { epochs: 20, ..Default::default() }).unwrap();
        (m, data)
    }

    #[test]
    fn confusion_on_good_model() {
        let (m, data) = trained();
        let conf = Confusion::of(&m, &data, 2).unwrap();
        assert!(conf.accuracy() > 0.95);
        assert!(conf.macro_f1() > 0.95);
        assert!(conf.precision(0).unwrap() > 0.9);
        assert!(conf.recall(1).unwrap() > 0.9);
    }

    #[test]
    fn confusion_edge_cases() {
        let c = Confusion { counts: vec![vec![0, 0], vec![0, 0]] };
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(0), None);
        assert_eq!(c.recall(1), None);
        assert_eq!(c.macro_f1(), 0.0);
        // Never-predicted class drags macro F1 down.
        let skew = Confusion { counts: vec![vec![5, 0], vec![5, 0]] };
        assert!(skew.macro_f1() < 0.6);
    }

    #[test]
    fn ece_of_confident_correct_model_is_low() {
        let (m, data) = trained();
        let ece = expected_calibration_error(&m, &data, 10).unwrap();
        assert!(ece < 0.2, "ece {ece}");
        let empty = LabeledData::new(Matrix::zeros(0, 2), vec![]).unwrap();
        assert_eq!(expected_calibration_error(&m, &empty, 10).unwrap(), 0.0);
    }

    #[test]
    fn frechet_identical_sets_is_zero() {
        let mut rng = Pcg64::new(1);
        let a = Matrix::randn(200, 4, &mut rng);
        let d = frechet_distance(&a, &a).unwrap();
        assert!(d < 1e-2, "distance {d}");
    }

    #[test]
    fn frechet_grows_with_mean_shift() {
        let mut rng = Pcg64::new(2);
        let a = Matrix::randn(300, 3, &mut rng);
        let near = a.map(|x| x + 0.1);
        let far = a.map(|x| x + 2.0);
        let dn = frechet_distance(&a, &near).unwrap();
        let df = frechet_distance(&a, &far).unwrap();
        assert!(dn < df, "{dn} !< {df}");
        // Mean shift of 2 in 3 dims => FD ≈ 12.
        assert!((df - 12.0).abs() < 2.0, "df {df}");
    }

    #[test]
    fn frechet_detects_covariance_change() {
        let mut rng = Pcg64::new(3);
        let a = Matrix::randn(400, 3, &mut rng);
        let wide = Matrix::randn(400, 3, &mut rng).scale(2.0);
        let d = frechet_distance(&a, &wide).unwrap();
        // tr((1-? )..) for σ 1 vs 2: per-dim (1 + 4 − 2·2) = 1, total ≈ 3.
        assert!((d - 3.0).abs() < 1.0, "d {d}");
    }

    #[test]
    fn frechet_validation() {
        let a = Matrix::zeros(5, 3);
        let b = Matrix::zeros(5, 4);
        assert!(frechet_distance(&a, &b).is_err());
        assert!(frechet_distance(&Matrix::zeros(1, 3), &a).is_err());
    }
}
