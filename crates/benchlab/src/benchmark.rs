//! The `Benchmark` artifact: `S(M, B) ∈ R` (§3).

use crate::metrics::{expected_calibration_error, frechet_distance, Confusion};
use mlake_nn::{LabeledData, Model};
use mlake_tensor::{Matrix, TensorError};
use serde::{Deserialize, Serialize};

/// What a benchmark measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BenchmarkKind {
    /// Classifier accuracy on held-out labelled data.
    Classification(LabeledData),
    /// LM perplexity on held-out token text (lower is better).
    Perplexity(Vec<usize>),
    /// Fréchet distance between a generative LM's sampled next-token
    /// feature rows and a reference distribution (lower is better).
    Distribution(Matrix),
    /// Calibration (ECE, lower is better) on labelled data.
    Calibration(LabeledData),
}

/// A named, reusable benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Stable name, e.g. `"legal-tab-holdout"`.
    pub name: String,
    /// What is measured.
    pub kind: BenchmarkKind,
}

/// A scored result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Score {
    /// Benchmark name.
    pub benchmark: String,
    /// Metric name ("accuracy", "perplexity", "frechet", "ece").
    pub metric: String,
    /// Raw value.
    pub value: f32,
    /// Whether larger values are better.
    pub higher_better: bool,
}

impl Score {
    /// A comparable goodness key: higher is always better.
    pub fn goodness(&self) -> f32 {
        if self.higher_better {
            self.value
        } else {
            -self.value
        }
    }
}

impl Benchmark {
    /// Classification benchmark constructor.
    pub fn classification(name: impl Into<String>, data: LabeledData) -> Benchmark {
        Benchmark {
            name: name.into(),
            kind: BenchmarkKind::Classification(data),
        }
    }

    /// Perplexity benchmark constructor.
    pub fn perplexity(name: impl Into<String>, text: Vec<usize>) -> Benchmark {
        Benchmark {
            name: name.into(),
            kind: BenchmarkKind::Perplexity(text),
        }
    }

    /// Whether this benchmark can score the given model family.
    pub fn applicable(&self, model: &Model) -> bool {
        match (&self.kind, model) {
            (BenchmarkKind::Classification(d), Model::Mlp(m)) => {
                d.dim() == m.layer_sizes()[0]
            }
            (BenchmarkKind::Calibration(d), Model::Mlp(m)) => d.dim() == m.layer_sizes()[0],
            (BenchmarkKind::Perplexity(t), Model::Lm(lm)) => {
                t.iter().all(|&tok| tok < lm.vocab())
            }
            (BenchmarkKind::Distribution(_), Model::Lm(_)) => true,
            _ => false,
        }
    }

    /// Scores a model; errors when the benchmark does not apply.
    pub fn score(&self, model: &Model) -> mlake_tensor::Result<Score> {
        match (&self.kind, model) {
            (BenchmarkKind::Classification(data), Model::Mlp(m)) => {
                let conf = Confusion::of(m, data, data.num_classes())?;
                Ok(Score {
                    benchmark: self.name.clone(),
                    metric: "accuracy".into(),
                    value: conf.accuracy(),
                    higher_better: true,
                })
            }
            (BenchmarkKind::Calibration(data), Model::Mlp(m)) => Ok(Score {
                benchmark: self.name.clone(),
                metric: "ece".into(),
                value: expected_calibration_error(m, data, 10)?,
                higher_better: false,
            }),
            (BenchmarkKind::Perplexity(text), Model::Lm(lm)) => Ok(Score {
                benchmark: self.name.clone(),
                metric: "perplexity".into(),
                value: lm.perplexity(text)? as f32,
                higher_better: false,
            }),
            (BenchmarkKind::Distribution(reference), Model::Lm(lm)) => {
                // Model feature rows: next-token distributions over a
                // deterministic set of single-token contexts.
                let mut rows = Vec::with_capacity(lm.vocab());
                for t in 0..lm.vocab().min(reference.cols()) {
                    let d = lm.next_dist(&[t])?;
                    rows.push(d[..reference.cols().min(d.len())].to_vec());
                }
                let m = Matrix::from_rows(&rows)?;
                Ok(Score {
                    benchmark: self.name.clone(),
                    metric: "frechet".into(),
                    value: frechet_distance(&m, reference)?,
                    higher_better: false,
                })
            }
            _ => Err(TensorError::Empty("benchmark not applicable to model family")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::{train_mlp, Activation, Mlp, NgramLm, TrainConfig};
    use mlake_tensor::{init::Init, Seed};

    fn data(seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("bench-data").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![center + rng.normal() * 0.4, center + rng.normal() * 0.4]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    fn classifier() -> Model {
        let mut rng = Seed::new(1).derive("init").rng();
        let mut m = Mlp::new(vec![2, 8, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        train_mlp(&mut m, &data(1), &TrainConfig { epochs: 20, ..Default::default() }).unwrap();
        Model::Mlp(m)
    }

    fn lm() -> Model {
        let mut l = NgramLm::new(6, 2, 0.1).unwrap();
        l.add_counts(&(0..200).map(|i| i % 6).collect::<Vec<_>>(), 1.0).unwrap();
        Model::Lm(l)
    }

    #[test]
    fn classification_scoring() {
        let b = Benchmark::classification("blobs", data(2));
        let m = classifier();
        assert!(b.applicable(&m));
        let s = b.score(&m).unwrap();
        assert_eq!(s.metric, "accuracy");
        assert!(s.value > 0.9);
        assert!(s.higher_better);
        assert!(s.goodness() > 0.9);
    }

    #[test]
    fn perplexity_scoring() {
        let b = Benchmark::perplexity("cycle", (0..50).map(|i| i % 6).collect());
        let m = lm();
        assert!(b.applicable(&m));
        let s = b.score(&m).unwrap();
        assert_eq!(s.metric, "perplexity");
        assert!(s.value < 2.0, "ppl {}", s.value);
        assert!(!s.higher_better);
        assert!(s.goodness() < 0.0);
    }

    #[test]
    fn family_gating() {
        let cls = Benchmark::classification("blobs", data(3));
        let ppl = Benchmark::perplexity("cycle", vec![0, 1, 2]);
        assert!(!cls.applicable(&lm()));
        assert!(!ppl.applicable(&classifier()));
        assert!(cls.score(&lm()).is_err());
        assert!(ppl.score(&classifier()).is_err());
    }

    #[test]
    fn dimension_gating() {
        let cls = Benchmark::classification("blobs", data(4));
        let mut rng = Seed::new(9).rng();
        let wrong_dim = Model::Mlp(
            Mlp::new(vec![5, 4, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap(),
        );
        assert!(!cls.applicable(&wrong_dim));
    }

    #[test]
    fn calibration_scoring() {
        let b = Benchmark {
            name: "cal".into(),
            kind: BenchmarkKind::Calibration(data(5)),
        };
        let s = b.score(&classifier()).unwrap();
        assert_eq!(s.metric, "ece");
        assert!(s.value >= 0.0 && s.value <= 1.0);
    }

    #[test]
    fn distribution_scoring() {
        let reference = {
            // Reference rows: the LM's own conditionals — distance ~ 0.
            let m = lm();
            let l = m.as_lm().unwrap();
            let rows: Vec<Vec<f32>> =
                (0..6).map(|t| l.next_dist(&[t]).unwrap()).collect();
            Matrix::from_rows(&rows).unwrap()
        };
        let b = Benchmark {
            name: "dist".into(),
            kind: BenchmarkKind::Distribution(reference),
        };
        let s = b.score(&lm()).unwrap();
        assert_eq!(s.metric, "frechet");
        assert!(s.value < 0.05, "fd {}", s.value);
    }
}
