//! Leaderboards: ranked `S(M, B)` over many models, and the "outperforms X
//! on Y" relation surfaced by the declarative query layer (§6).

use crate::benchmark::{Benchmark, Score};
use mlake_nn::Model;
use serde::{Deserialize, Serialize};

/// One leaderboard entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaderboardRow {
    /// Model identifier (caller-defined, typically the lake model id).
    pub model_id: u64,
    /// The score.
    pub score: Score,
}

/// A ranked evaluation of models on one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Leaderboard {
    /// Benchmark name.
    pub benchmark: String,
    /// Rows, best first.
    pub rows: Vec<LeaderboardRow>,
    /// Model ids the benchmark did not apply to.
    pub skipped: Vec<u64>,
}

impl Leaderboard {
    /// Evaluates every applicable `(id, model)` pair and ranks the results.
    pub fn run<'a>(
        benchmark: &Benchmark,
        models: impl IntoIterator<Item = (u64, &'a Model)>,
    ) -> mlake_tensor::Result<Leaderboard> {
        let mut rows = Vec::new();
        let mut skipped = Vec::new();
        for (id, model) in models {
            if benchmark.applicable(model) {
                rows.push(LeaderboardRow {
                    model_id: id,
                    score: benchmark.score(model)?,
                });
            } else {
                skipped.push(id);
            }
        }
        rows.sort_by(|a, b| {
            b.score
                .goodness()
                .total_cmp(&a.score.goodness())
                .then(a.model_id.cmp(&b.model_id))
        });
        Ok(Leaderboard {
            benchmark: benchmark.name.clone(),
            rows,
            skipped,
        })
    }

    /// Rank (0-based) of a model, if present.
    pub fn rank_of(&self, model_id: u64) -> Option<usize> {
        self.rows.iter().position(|r| r.model_id == model_id)
    }

    /// The winning row.
    pub fn best(&self) -> Option<&LeaderboardRow> {
        self.rows.first()
    }

    /// Models that strictly outperform `model_id` on this benchmark.
    pub fn outperformers(&self, model_id: u64) -> Vec<u64> {
        let Some(rank) = self.rank_of(model_id) else {
            return Vec::new();
        };
        let target = self.rows[rank].score.goodness();
        self.rows
            .iter()
            .filter(|r| r.score.goodness() > target)
            .map(|r| r.model_id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::{train_mlp, Activation, LabeledData, Mlp, TrainConfig};
    use mlake_tensor::{init::Init, Matrix, Seed};

    fn data(seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("lb-data").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![center + rng.normal() * 0.4, center + rng.normal() * 0.4]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    fn model(epochs: usize, seed: u64) -> Model {
        let mut rng = Seed::new(seed).derive("init").rng();
        let mut m = Mlp::new(vec![2, 8, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        train_mlp(&mut m, &data(1), &TrainConfig { epochs, ..Default::default() }).unwrap();
        Model::Mlp(m)
    }

    #[test]
    fn ranks_better_models_first() {
        let good = model(25, 1);
        let bad = model(0, 2);
        let b = Benchmark::classification("holdout", data(9));
        let lb = Leaderboard::run(&b, vec![(10, &good), (20, &bad)]).unwrap();
        assert_eq!(lb.rows.len(), 2);
        assert_eq!(lb.best().unwrap().model_id, 10);
        assert_eq!(lb.rank_of(20), Some(1));
        assert_eq!(lb.outperformers(20), vec![10]);
        assert!(lb.outperformers(10).is_empty());
        assert_eq!(lb.outperformers(999), Vec::<u64>::new());
    }

    #[test]
    fn inapplicable_models_are_skipped() {
        let mut lm = mlake_nn::NgramLm::new(4, 2, 0.1).unwrap();
        lm.add_counts(&[0, 1, 2, 3], 1.0).unwrap();
        let lm = Model::Lm(lm);
        let m = model(5, 3);
        let b = Benchmark::classification("holdout", data(9));
        let lb = Leaderboard::run(&b, vec![(1, &m), (2, &lm)]).unwrap();
        assert_eq!(lb.rows.len(), 1);
        assert_eq!(lb.skipped, vec![2]);
    }

    #[test]
    fn empty_leaderboard() {
        let b = Benchmark::classification("holdout", data(9));
        let lb = Leaderboard::run(&b, vec![]).unwrap();
        assert!(lb.best().is_none());
        assert!(lb.rows.is_empty());
    }
}
