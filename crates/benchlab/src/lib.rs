//! # mlake-benchlab
//!
//! Model benchmarking (§3 Benchmarking): scoring functions `S(M, B) ∈ R`,
//! leaderboards across a lake, calibration and distribution metrics, fairness
//! summaries for nutritional labels, and **lifelong benchmarks** (§5) with
//! cached incremental evaluation.
//!
//! * [`metrics`] — accuracy, confusion matrices, macro F1, expected
//!   calibration error, Fréchet distance (the FID construction on Gaussian
//!   fits of feature sets);
//! * [`benchmark`] — the `Benchmark` artifact: named, versionable, typed by
//!   task (classification / perplexity / distribution);
//! * [`leaderboard`] — ranked evaluation of many models, and the
//!   "outperforms X on Y" relation the declarative query layer exposes;
//! * [`lifelong`] — growing benchmarks that only evaluate deltas, plus
//!   subsampled estimates with confidence intervals;
//! * [`fairness`] — demographic-parity and per-group accuracy summaries for
//!   nutritional-label style card sections.

pub mod benchmark;
pub mod fairness;
pub mod leaderboard;
pub mod lifelong;
pub mod metrics;

pub use benchmark::{Benchmark, BenchmarkKind, Score};
pub use leaderboard::{Leaderboard, LeaderboardRow};
pub use lifelong::LifelongBenchmark;
