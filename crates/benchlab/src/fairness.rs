//! Fairness summaries for nutritional-label card sections (§4 "model cards
//! can and should be augmented with information more similar to nutritional
//! labels that also include information about fairness and bias").

use mlake_nn::{LabeledData, Mlp};
use mlake_tensor::TensorError;

/// Per-group evaluation given a binary protected attribute derived from a
/// feature column (group 1 when `x[attr] >= threshold`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessReport {
    /// Accuracy on group 0.
    pub accuracy_g0: f32,
    /// Accuracy on group 1.
    pub accuracy_g1: f32,
    /// `P(pred = positive | g1) − P(pred = positive | g0)` where "positive"
    /// is class `positive_class`. Zero means demographic parity.
    pub demographic_parity_gap: f32,
    /// Group sizes `(n_g0, n_g1)`.
    pub group_sizes: (usize, usize),
}

/// Computes the fairness report of `model` on `data` with groups split by
/// `attr` column at `threshold` and parity measured on `positive_class`.
pub fn fairness_report(
    model: &Mlp,
    data: &LabeledData,
    attr: usize,
    threshold: f32,
    positive_class: usize,
) -> mlake_tensor::Result<FairnessReport> {
    if data.is_empty() {
        return Err(TensorError::Empty("fairness data"));
    }
    if attr >= data.dim() {
        return Err(TensorError::OutOfBounds {
            index: (0, attr),
            shape: data.x.shape(),
        });
    }
    let mut stats = [(0usize, 0usize, 0usize); 2]; // (n, correct, positive)
    for (row, &y) in data.x.rows_iter().zip(&data.y) {
        let g = usize::from(row[attr] >= threshold);
        let pred = model.predict_class(row)?;
        stats[g].0 += 1;
        if pred == y {
            stats[g].1 += 1;
        }
        if pred == positive_class {
            stats[g].2 += 1;
        }
    }
    let acc = |g: usize| {
        if stats[g].0 == 0 {
            0.0
        } else {
            stats[g].1 as f32 / stats[g].0 as f32
        }
    };
    let pos_rate = |g: usize| {
        if stats[g].0 == 0 {
            0.0
        } else {
            stats[g].2 as f32 / stats[g].0 as f32
        }
    };
    Ok(FairnessReport {
        accuracy_g0: acc(0),
        accuracy_g1: acc(1),
        demographic_parity_gap: pos_rate(1) - pos_rate(0),
        group_sizes: (stats[0].0, stats[1].0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::{train_mlp, Activation, TrainConfig};
    use mlake_tensor::{init::Init, Matrix, Seed};

    /// Dataset where feature 1 is a "protected attribute" correlated with the
    /// label — a model that uses it will show a parity gap.
    fn biased_data(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("fair-data").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let signal = if c == 0 { -1.5 } else { 1.5 };
            // Protected attribute strongly correlated with the class.
            let attr = if c == 0 { -1.0 } else { 1.0 };
            rows.push(vec![signal + rng.normal() * 0.4, attr + rng.normal() * 0.2]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn detects_parity_gap_on_biased_model() {
        let data = biased_data(120, 1);
        let mut rng = Seed::new(2).derive("init").rng();
        let mut m = Mlp::new(vec![2, 8, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        train_mlp(&mut m, &data, &TrainConfig { epochs: 20, ..Default::default() }).unwrap();
        let report = fairness_report(&m, &data, 1, 0.0, 1).unwrap();
        // Group 1 (attr >= 0) is almost entirely class 1, so its positive
        // rate dwarfs group 0's.
        assert!(report.demographic_parity_gap > 0.8, "{report:?}");
        assert!(report.group_sizes.0 > 0 && report.group_sizes.1 > 0);
        assert!(report.accuracy_g0 > 0.8);
    }

    #[test]
    fn validation() {
        let data = biased_data(10, 3);
        let mut rng = Seed::new(4).rng();
        let m = Mlp::new(vec![2, 4, 2], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        assert!(fairness_report(&m, &data, 9, 0.0, 1).is_err());
        let empty = LabeledData::new(Matrix::zeros(0, 2), vec![]).unwrap();
        assert!(fairness_report(&m, &empty, 0, 0.0, 1).is_err());
    }
}
