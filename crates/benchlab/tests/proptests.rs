//! Property-based tests for benchlab: metric bounds, leaderboard ordering
//! invariants, lifelong-benchmark cache coherence.

use mlake_benchlab::benchmark::{Benchmark, BenchmarkKind};
use mlake_benchlab::metrics::{expected_calibration_error, frechet_distance, Confusion};
use mlake_benchlab::{Leaderboard, LifelongBenchmark};
use mlake_nn::{Activation, LabeledData, Mlp, Model};
use mlake_tensor::{init::Init, Matrix, Pcg64};
use proptest::prelude::*;

fn arb_data(classes: usize) -> impl Strategy<Value = LabeledData> {
    (4usize..24, any::<u64>()).prop_map(move |(n, seed)| {
        let mut rng = Pcg64::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            let mut x = vec![0.0f32; 3];
            x[c % 3] = 1.5;
            for v in &mut x {
                *v += rng.normal() * 0.5;
            }
            rows.push(x);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    })
}

fn arb_model() -> impl Strategy<Value = Model> {
    any::<u64>().prop_map(|seed| {
        let mut rng = Pcg64::new(seed);
        Model::Mlp(Mlp::new(vec![3, 6, 3], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn confusion_metrics_bounded(data in arb_data(3), model in arb_model()) {
        let m = model.as_mlp().unwrap();
        let conf = Confusion::of(m, &data, 3).unwrap();
        prop_assert!((0.0..=1.0).contains(&conf.accuracy()));
        prop_assert!((0.0..=1.0).contains(&conf.macro_f1()));
        for c in 0..3 {
            if let Some(p) = conf.precision(c) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
            if let Some(r) = conf.recall(c) {
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
        let total: usize = conf.counts.iter().flatten().sum();
        prop_assert_eq!(total, data.len());
    }

    #[test]
    fn ece_bounded(data in arb_data(3), model in arb_model()) {
        let m = model.as_mlp().unwrap();
        let ece = expected_calibration_error(m, &data, 10).unwrap();
        prop_assert!((0.0..=1.0 + 1e-5).contains(&ece));
    }

    #[test]
    fn frechet_symmetric_nonnegative(seed in any::<u64>()) {
        let mut rng = Pcg64::new(seed);
        let a = Matrix::randn(40, 3, &mut rng);
        let b = Matrix::randn(40, 3, &mut rng).map(|x| x * 1.3 + 0.2);
        let ab = frechet_distance(&a, &b).unwrap();
        let ba = frechet_distance(&b, &a).unwrap();
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 0.05 * ab.max(1.0), "{ab} vs {ba}");
    }

    #[test]
    fn leaderboard_is_sorted_and_complete(data in arb_data(3), seeds in proptest::collection::vec(any::<u64>(), 1..5)) {
        let models: Vec<(u64, Model)> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let mut rng = Pcg64::new(s);
                (
                    i as u64,
                    Model::Mlp(
                        Mlp::new(vec![3, 6, 3], Activation::Tanh, Init::XavierNormal, &mut rng)
                            .unwrap(),
                    ),
                )
            })
            .collect();
        let bench = Benchmark::classification("b", data);
        let lb = Leaderboard::run(&bench, models.iter().map(|(i, m)| (*i, m))).unwrap();
        prop_assert_eq!(lb.rows.len() + lb.skipped.len(), models.len());
        for w in lb.rows.windows(2) {
            prop_assert!(w[0].score.goodness() >= w[1].score.goodness());
        }
        // outperformers of the winner is empty; of the loser covers the rest.
        if let Some(best) = lb.best() {
            prop_assert!(lb.outperformers(best.model_id).is_empty());
        }
        if let Some(last) = lb.rows.last() {
            let better = lb.outperformers(last.model_id);
            prop_assert!(better.len() < lb.rows.len());
        }
    }

    #[test]
    fn lifelong_full_matches_fresh_evaluation(data in arb_data(3), model in arb_model()) {
        let mut pool = LifelongBenchmark::new();
        pool.extend(&data);
        let cached = pool.accuracy(1, &model).unwrap();
        // A brand-new pool over the same probes must agree exactly.
        let mut fresh = LifelongBenchmark::new();
        fresh.extend(&data);
        let direct = fresh.accuracy(9, &model).unwrap();
        prop_assert_eq!(cached, direct);
        // And equals the plain benchmark accuracy.
        let bench = Benchmark {
            name: "b".into(),
            kind: BenchmarkKind::Classification(data),
        };
        let s = bench.score(&model).unwrap();
        prop_assert!((s.value - cached).abs() < 1e-6);
    }
}
