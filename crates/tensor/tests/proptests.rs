//! Property-based invariants for the tensor substrate.

use mlake_tensor::{linalg, stats, vector, Matrix, Pcg64};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in small_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_right(m in small_matrix(8)) {
        let id = Matrix::identity(m.cols());
        let p = m.matmul(&id).unwrap();
        prop_assert!(mlake_tensor::approx_eq_slice(p.as_slice(), m.as_slice(), 1e-4));
    }

    #[test]
    fn matmul_transpose_identity(a in small_matrix(6), b in small_matrix(6)) {
        // (A B)ᵀ = Bᵀ Aᵀ whenever shapes allow.
        if a.cols() == b.rows() {
            let lhs = a.matmul(&b).unwrap().transpose();
            let rhs = b.transpose().matmul(&a.transpose()).unwrap();
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn add_commutes(a in small_matrix(6)) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(mlake_tensor::approx_eq_slice(ab.as_slice(), ba.as_slice(), 1e-5));
    }

    #[test]
    fn cosine_similarity_bounded(xs in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
        let ys: Vec<f32> = xs.iter().map(|x| x * 0.3 + 1.0).collect();
        let c = vector::cosine_similarity(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-30.0f32..30.0, 1..16)) {
        let p = vector::softmax(&xs);
        let total: f32 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn ranks_are_permutation_sums(xs in proptest::collection::vec(-50.0f32..50.0, 2..20)) {
        let r = stats::ranks(&xs);
        let total: f32 = r.iter().sum();
        let n = xs.len() as f32;
        // Sum of 1..=n is preserved under tie averaging.
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-3);
    }

    #[test]
    fn spearman_invariant_under_monotone_map(xs in proptest::collection::vec(-50.0f32..50.0, 3..20)) {
        // Skip degenerate all-equal vectors.
        let distinct = xs.iter().any(|&x| x != xs[0]);
        if distinct {
            let ys: Vec<f32> = xs.iter().map(|&x| x.exp().min(1e30)).collect();
            if let (Some(s), Some(p)) = (stats::spearman(&xs, &ys), stats::spearman(&xs, &xs)) {
                prop_assert!((s - p).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn quantile_within_range(xs in proptest::collection::vec(-50.0f32..50.0, 1..30), q in 0.0f32..1.0) {
        let v = stats::quantile(&xs, q).unwrap();
        let lo = xs.iter().fold(f32::INFINITY, |m, &x| m.min(x));
        let hi = xs.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
    }

    #[test]
    fn cg_solves_spd_system(diag in proptest::collection::vec(0.5f32..5.0, 2..8)) {
        let n = diag.len();
        let a = Matrix::from_fn(n, n, |r, c| if r == c { diag[r] } else { 0.0 });
        let b: Vec<f32> = (0..n).map(|i| (i as f32) - 1.5).collect();
        let x = linalg::conjugate_gradient(&a, &b, 0.0, 200, 1e-7).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - b[i] / diag[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn pcg_uniform_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Pcg64::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn sample_indices_distinct(seed in any::<u64>(), n in 1usize..200, k in 0usize..50) {
        let mut rng = Pcg64::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        for w in s.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn frobenius_norm_scales(m in small_matrix(6), alpha in -4.0f32..4.0) {
        let scaled = m.scale(alpha);
        let expected = m.frobenius_norm() * alpha.abs();
        prop_assert!((scaled.frobenius_norm() - expected).abs() < 1e-2);
    }

    #[test]
    fn sq8_roundtrip_error_within_half_step(
        rows in proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 8), 2..12)
    ) {
        let codec = mlake_tensor::Sq8Codec::train(&rows).unwrap();
        let half = codec.step() / 2.0;
        for row in &rows {
            let decoded = codec.decode(&codec.encode(row).unwrap()).unwrap();
            for (x, y) in row.iter().zip(&decoded) {
                // In-range values (the training sample is in range by
                // definition) decode within half a quantization step.
                prop_assert!((x - y).abs() <= half * 1.001, "{} vs {} (step {})", x, y, codec.step());
            }
        }
    }

    #[test]
    fn sq8_l2_kernel_error_bounded_vs_f32_kernel(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 12), 2..10)
    ) {
        // |l2_u8 − l2_f32| ≤ 2s·√(n·l2_f32²) + n·s²  (per-dim error ≤ s,
        // cross terms bounded by Cauchy–Schwarz), with 1.5× slack for
        // float rounding.
        let codec = mlake_tensor::Sq8Codec::train(&rows).unwrap();
        let s = codec.step();
        let n = rows[0].len() as f32;
        let ca = codec.encode(&rows[0]).unwrap();
        let cb = codec.encode(&rows[1]).unwrap();
        let exact = vector::l2_distance_sq(&rows[0], &rows[1]);
        let quant = codec.l2_distance_sq(&ca, &cb);
        let bound = 1.5 * (2.0 * s * (n * exact).sqrt() + n * s * s) + 1e-4;
        prop_assert!((quant - exact).abs() <= bound, "{} vs {} (bound {})", quant, exact, bound);
    }

    #[test]
    fn sq8_dot_kernel_error_bounded_vs_f32_kernel(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 12), 2..10)
    ) {
        // |dot_u8 − dot_f32| ≤ (s/2)·(‖a‖₁ + ‖b‖₁) + n·(s/2)²  with slack.
        let codec = mlake_tensor::Sq8Codec::train(&rows).unwrap();
        let h = codec.step() / 2.0;
        let n = rows[0].len() as f32;
        let ca = codec.encode(&rows[0]).unwrap();
        let cb = codec.encode(&rows[1]).unwrap();
        let exact = vector::dot(&rows[0], &rows[1]);
        let quant = codec.dot(&ca, &cb);
        let bound = 1.5 * (h * (vector::l1_norm(&rows[0]) + vector::l1_norm(&rows[1])) + n * h * h) + 1e-3;
        prop_assert!((quant - exact).abs() <= bound, "{} vs {} (bound {})", quant, exact, bound);
    }

    #[test]
    fn sq8_raw_l2_matches_naive(
        a in proptest::collection::vec(any::<u8>(), 0..70),
        seed in any::<u64>()
    ) {
        let mut rng = Pcg64::new(seed);
        let b: Vec<u8> = (0..a.len()).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        let naive: u64 = a.iter().zip(&b).map(|(&x, &y)| {
            let d = i64::from(x) - i64::from(y);
            (d * d) as u64
        }).sum();
        prop_assert_eq!(mlake_tensor::quant::l2_distance_sq_u8(&a, &b), naive);
        let naive_dot: u64 = a.iter().zip(&b).map(|(&x, &y)| u64::from(x) * u64::from(y)).sum();
        prop_assert_eq!(mlake_tensor::quant::dot_u8(&a, &b), naive_dot);
    }
}
