//! Parallel kernels must agree with their serial execution.
//!
//! Determinism policy (see DESIGN.md): every tensor kernel decomposes work
//! so that the per-element accumulation order is a function of the operand
//! shapes only, never of the thread count. That makes `matmul`, `gram`,
//! `matvec`, and `t_matvec` **bit-identical** between a pooled run and a
//! `mlake_par::serial` run (the same inline path `MLAKE_THREADS=1` takes —
//! `scripts/ci.sh` re-runs this suite under `MLAKE_THREADS=1` to cover the
//! env override end-to-end). The tiled kernel vs the naive ikj reference
//! reassociates additions, so that pair is compared within a tolerance.

use mlake_tensor::{vector, Matrix};
use proptest::prelude::*;

fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Rectangular pair with compatible inner dimension, including shapes that
/// straddle the MC=64 / KC=256 tile boundaries when scaled by the caller.
fn matmul_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-5.0f32..5.0, m * k)
                .prop_map(move |d| Matrix::from_vec(m, k, d).unwrap()),
            proptest::collection::vec(-5.0f32..5.0, k * n)
                .prop_map(move |d| Matrix::from_vec(k, n, d).unwrap()),
        )
    })
}

proptest! {
    #[test]
    fn matmul_parallel_is_bitwise_serial((a, b) in matmul_pair(24)) {
        let par = a.matmul(&b).unwrap();
        let ser = mlake_par::serial(|| a.matmul(&b).unwrap());
        prop_assert_eq!(par.as_slice(), ser.as_slice());
    }

    #[test]
    fn matmul_tiled_matches_naive_within_tolerance((a, b) in matmul_pair(24)) {
        let tiled = a.matmul(&b).unwrap();
        let naive = a.matmul_naive(&b).unwrap();
        for (x, y) in tiled.as_slice().iter().zip(naive.as_slice()) {
            // Relative tolerance: entries grow with the inner dimension.
            let scale = x.abs().max(y.abs()).max(1.0);
            prop_assert!((x - y).abs() <= 1e-4 * scale, "{x} vs {y}");
        }
    }

    #[test]
    fn gram_parallel_is_bitwise_serial(m in matrix(24)) {
        let par = m.gram();
        let ser = mlake_par::serial(|| m.gram());
        prop_assert_eq!(par.as_slice(), ser.as_slice());
    }

    #[test]
    fn matvec_parallel_is_bitwise_serial(m in matrix(24)) {
        let x: Vec<f32> = (0..m.cols()).map(|i| (i as f32) * 0.25 - 1.0).collect();
        let par = m.matvec(&x).unwrap();
        let ser = mlake_par::serial(|| m.matvec(&x).unwrap());
        prop_assert_eq!(par, ser);
    }

    #[test]
    fn t_matvec_parallel_is_bitwise_serial(m in matrix(24)) {
        let x: Vec<f32> = (0..m.rows()).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let par = m.t_matvec(&x).unwrap();
        let ser = mlake_par::serial(|| m.t_matvec(&x).unwrap());
        prop_assert_eq!(par, ser);
    }

    #[test]
    fn unrolled_l2_matches_scalar_reference(
        xs in proptest::collection::vec(-50.0f32..50.0, 1..64)
    ) {
        let ys: Vec<f32> = xs.iter().map(|x| x * -0.7 + 2.0).collect();
        let fast = vector::l2_distance_sq(&xs, &ys);
        let reference: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(a, b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum();
        let scale = reference.abs().max(1.0) as f32;
        prop_assert!((fast - reference as f32).abs() <= 1e-5 * scale);
    }

    #[test]
    fn fused_cosine_matches_scalar_reference(
        xs in proptest::collection::vec(-50.0f32..50.0, 1..64)
    ) {
        let ys: Vec<f32> = xs.iter().map(|x| x * 0.3 - 1.0).collect();
        let fast = vector::cosine_similarity(&xs, &ys);
        let dot: f64 = xs.iter().zip(&ys).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let na: f64 = xs.iter().map(|a| (*a as f64) * (*a as f64)).sum::<f64>().sqrt();
        let nb: f64 = ys.iter().map(|b| (*b as f64) * (*b as f64)).sum::<f64>().sqrt();
        let reference = if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(-1.0, 1.0) as f32
        };
        prop_assert!((fast - reference).abs() <= 1e-5, "{fast} vs {reference}");
    }
}

/// Shapes sized past the tile boundaries (MC=64 rows, KC=256 depth) so the
/// multi-panel and multi-chunk paths run, not just the small-matrix path.
#[test]
fn matmul_parallel_is_bitwise_serial_across_tile_boundaries() {
    let mut rng = mlake_tensor::Pcg64::new(97);
    for &(m, k, n) in &[(65usize, 300usize, 17usize), (130, 64, 70), (3, 513, 5)] {
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let par = a.matmul(&b).unwrap();
        let ser = mlake_par::serial(|| a.matmul(&b).unwrap());
        assert_eq!(par.as_slice(), ser.as_slice(), "shape ({m},{k},{n})");
    }
}
