//! # mlake-tensor
//!
//! Dense `f32` linear-algebra substrate for the Model Lakes workspace.
//!
//! The Model Lakes paper (Pal, Bau & Miller, EDBT 2025) defines a model as
//! `M = (D, A, f*, θ, p_θ)`; everything downstream — training, fingerprinting,
//! attribution, indexing — manipulates the parameter vector `θ` and data `D`
//! as dense matrices. This crate provides that foundation with **no external
//! numeric dependencies** so that every experiment in the repository is
//! bit-reproducible from a `u64` seed.
//!
//! Contents:
//! * [`Matrix`] — row-major dense matrix with the usual algebra.
//! * [`rng`] — a from-scratch PCG64 generator and seed-derivation helpers.
//! * [`vector`] — free functions over `&[f32]` slices (dot, norms, cosine…).
//! * [`quant`] — SQ8 scalar quantization: per-dimension affine `u8` codec
//!   and unrolled integer distance kernels for cache-resident scans.
//! * [`linalg`] — power iteration, Jacobi eigendecomposition, truncated SVD,
//!   conjugate-gradient solves (used by influence functions).
//! * [`stats`] — moments, quantiles, correlations, histograms.
//! * [`init`] — Xavier/He/uniform weight initialisation.

pub mod error;
pub mod init;
pub mod linalg;
pub mod matrix;
pub mod quant;
pub mod rng;
pub mod stats;
pub mod vector;

pub use error::TensorError;
pub use matrix::Matrix;
pub use quant::Sq8Codec;
pub use rng::{Pcg64, Seed};

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Tolerance used by the crate's own tests for float comparisons.
pub const TEST_EPS: f32 = 1e-4;

/// Returns `true` when `a` and `b` differ by at most `eps` (absolute).
#[inline]
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps
}

/// Returns `true` when every pair of elements differs by at most `eps`.
pub fn approx_eq_slice(a: &[f32], b: &[f32], eps: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y, eps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basics() {
        assert!(approx_eq(1.0, 1.0 + 1e-6, 1e-4));
        assert!(!approx_eq(1.0, 1.1, 1e-4));
    }

    #[test]
    fn approx_eq_slice_len_mismatch() {
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0], 1e-4));
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0], 0.0));
    }
}
