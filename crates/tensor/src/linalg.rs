//! Numerical linear algebra: power iteration, Jacobi eigendecomposition,
//! truncated SVD and conjugate gradients.
//!
//! These routines back three model-lake subsystems:
//! * **spectral fingerprints** — top singular values of weight matrices;
//! * **transform classification** — the effective rank of a weight delta
//!   separates LoRA (low rank) from full fine-tuning (full rank);
//! * **influence functions** — `H⁻¹ g` solves via conjugate gradients.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::rng::Pcg64;
use crate::vector;
use crate::Result;

/// Estimates the largest singular value of `a` by power iteration on `aᵀa`.
///
/// Converges quickly for the well-separated spectra typical of trained weight
/// matrices; `iters` around 30 is ample for fingerprinting purposes.
pub fn top_singular_value(a: &Matrix, iters: usize, rng: &mut Pcg64) -> Result<f32> {
    if a.is_empty() {
        return Ok(0.0);
    }
    let mut v = vec![0.0f32; a.cols()];
    rng.fill_normal(&mut v);
    vector::normalize(&mut v);
    let mut sigma = 0.0f32;
    for _ in 0..iters {
        // v <- normalize(aᵀ (a v))
        let av = a.matvec(&v)?;
        let atav = a.t_matvec(&av)?;
        let n = vector::l2_norm(&atav);
        if n == 0.0 {
            return Ok(0.0);
        }
        v = atav;
        vector::scale(&mut v, 1.0 / n);
        sigma = n.sqrt();
    }
    Ok(sigma)
}

/// Jacobi eigendecomposition of a small symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted descending
/// and eigenvectors as rows of the returned matrix. Errors if `a` is not
/// square. Intended for matrices up to a few hundred rows (Gram matrices of
/// probe batches, covariance of fingerprint features).
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize) -> Result<(Vec<f32>, Matrix)> {
    if a.rows() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "jacobi_eigen",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok((Vec::new(), Matrix::zeros(0, 0)));
    }
    // Work in f64 for stability.
    let mut m: Vec<f64> = a.as_slice().iter().map(|&x| f64::from(x)).collect();
    let mut v: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let idx = |r: usize, c: usize| r * n + c;
    for _ in 0..max_sweeps {
        // Largest off-diagonal magnitude decides convergence.
        let mut off = 0.0f64;
        for r in 0..n {
            for c in (r + 1)..n {
                off = off.max(m[idx(r, c)].abs());
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[idx(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[idx(p, p)];
                let aqq = m[idx(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..n {
                    let akp = m[idx(k, p)];
                    let akq = m[idx(k, q)];
                    m[idx(k, p)] = c * akp - s * akq;
                    m[idx(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[idx(p, k)];
                    let aqk = m[idx(q, k)];
                    m[idx(p, k)] = c * apk - s * aqk;
                    m[idx(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[idx(k, p)];
                    let vkq = v[idx(k, q)];
                    v[idx(k, p)] = c * vkp - s * vkq;
                    v[idx(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f32, usize)> = (0..n).map(|i| (m[idx(i, i)] as f32, i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let eigenvalues: Vec<f32> = pairs.iter().map(|&(e, _)| e).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (row, &(_, col)) in pairs.iter().enumerate() {
        for k in 0..n {
            vectors.set_at(row, k, v[idx(k, col)] as f32);
        }
    }
    Ok((eigenvalues, vectors))
}

/// Top-`k` singular values of `a` via Jacobi on the smaller Gram matrix.
///
/// Exact (up to Jacobi tolerance) rather than iterative, so suitable for the
/// rank analysis in transform classification where small singular values
/// matter. Cost is `O(min(r,c)³)` — keep the smaller dimension modest.
pub fn singular_values(a: &Matrix, k: usize) -> Result<Vec<f32>> {
    if a.is_empty() {
        return Ok(Vec::new());
    }
    let gram = if a.rows() <= a.cols() {
        // a aᵀ : rows × rows
        a.matmul(&a.transpose())?
    } else {
        a.transpose().matmul(a)?
    };
    let (eigs, _) = jacobi_eigen(&gram, 50)?;
    Ok(eigs
        .into_iter()
        .take(k)
        .map(|e| e.max(0.0).sqrt())
        .collect())
}

/// Effective rank: number of singular values ≥ `rel_tol · σ₁`.
pub fn effective_rank(a: &Matrix, rel_tol: f32) -> Result<usize> {
    let k = a.rows().min(a.cols());
    let svs = singular_values(a, k)?;
    let top = svs.first().copied().unwrap_or(0.0);
    if top <= 0.0 {
        return Ok(0);
    }
    Ok(svs.iter().filter(|&&s| s >= rel_tol * top).count())
}

/// Stable-rank `‖A‖_F² / σ₁²` — a smooth, cheap proxy for rank used when the
/// full spectrum is too expensive.
pub fn stable_rank(a: &Matrix, rng: &mut Pcg64) -> Result<f32> {
    let fro = a.frobenius_norm();
    if fro == 0.0 {
        return Ok(0.0);
    }
    let sigma = top_singular_value(a, 40, rng)?;
    if sigma == 0.0 {
        return Ok(0.0);
    }
    Ok((fro * fro) / (sigma * sigma))
}

/// Solves `A x = b` for symmetric positive-definite `A` by conjugate
/// gradients with Tikhonov damping `A + damping·I` (the standard trick for
/// influence functions where the Hessian may be ill-conditioned).
pub fn conjugate_gradient(
    a: &Matrix,
    b: &[f32],
    damping: f32,
    max_iters: usize,
    tol: f32,
) -> Result<Vec<f32>> {
    if a.rows() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "conjugate_gradient",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if a.rows() != b.len() {
        return Err(TensorError::ShapeMismatch {
            op: "conjugate_gradient",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let apply = |x: &[f32]| -> Result<Vec<f32>> {
        let mut ax = a.matvec(x)?;
        vector::axpy(damping, x, &mut ax);
        Ok(ax)
    };
    cg_impl(apply, b, max_iters, tol)
}

/// Matrix-free conjugate gradients: `apply` computes `A x` (plus any damping
/// the caller folds in). This is the entry point used by Hessian-vector
/// product based influence functions, which never materialise `A`.
pub fn conjugate_gradient_fn(
    apply: impl Fn(&[f32]) -> Vec<f32>,
    b: &[f32],
    max_iters: usize,
    tol: f32,
) -> Result<Vec<f32>> {
    cg_impl(|x| Ok(apply(x)), b, max_iters, tol)
}

/// Shared CG iteration over a fallible operator: lets the dense entry point
/// propagate `matvec` shape errors as typed [`TensorError`]s instead of
/// panicking mid-iteration.
fn cg_impl(
    apply: impl Fn(&[f32]) -> Result<Vec<f32>>,
    b: &[f32],
    max_iters: usize,
    tol: f32,
) -> Result<Vec<f32>> {
    let n = b.len();
    let mut x = vec![0.0f32; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = f64::from(vector::dot(&r, &r));
    if rs_old.sqrt() <= f64::from(tol) {
        return Ok(x);
    }
    for _ in 0..max_iters {
        let ap = apply(&p)?;
        let p_ap = f64::from(vector::dot(&p, &ap));
        if p_ap <= 0.0 {
            // Not positive definite along p (or numerical breakdown):
            // return the best iterate so far rather than diverging.
            return Ok(x);
        }
        let alpha = (rs_old / p_ap) as f32;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        let rs_new = f64::from(vector::dot(&r, &r));
        if rs_new.sqrt() <= f64::from(tol) {
            return Ok(x);
        }
        let beta = (rs_new / rs_old) as f32;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }
    Ok(x)
}

/// Solves the small dense system `A x = b` by Gaussian elimination with
/// partial pivoting. Errors on singular systems. For the small Hessians of
/// logistic models this is the exact baseline CG is compared against.
pub fn solve_dense(a: &Matrix, b: &[f32]) -> Result<Vec<f32>> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "solve_dense",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut aug: Vec<f64> = Vec::with_capacity(n * (n + 1));
    for (r, &rhs) in b.iter().enumerate() {
        for c in 0..n {
            aug.push(f64::from(a.at(r, c)));
        }
        aug.push(f64::from(rhs));
    }
    let w = n + 1;
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if aug[r * w + col].abs() > aug[pivot * w + col].abs() {
                pivot = r;
            }
        }
        if aug[pivot * w + col].abs() < 1e-12 {
            return Err(TensorError::Numerical("singular system in solve_dense"));
        }
        if pivot != col {
            for c in 0..w {
                aug.swap(col * w + c, pivot * w + c);
            }
        }
        let diag = aug[col * w + col];
        for r in (col + 1)..n {
            let factor = aug[r * w + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..w {
                aug[r * w + c] -= factor * aug[col * w + c];
            }
        }
    }
    let mut x = vec![0.0f64; n];
    for r in (0..n).rev() {
        let mut acc = aug[r * w + n];
        for c in (r + 1)..n {
            acc -= aug[r * w + c] * x[c];
        }
        x[r] = acc / aug[r * w + r];
    }
    Ok(x.into_iter().map(|v| v as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn top_singular_value_of_diagonal() {
        let a = m(2, 2, &[3.0, 0.0, 0.0, 1.0]);
        let mut rng = Pcg64::new(1);
        let s = top_singular_value(&a, 50, &mut rng).unwrap();
        assert!((s - 3.0).abs() < 1e-3, "sigma {s}");
    }

    #[test]
    fn jacobi_recovers_known_spectrum() {
        // Symmetric matrix with eigenvalues 5 and 1 (basis rotated 45°).
        let a = m(2, 2, &[3.0, 2.0, 2.0, 3.0]);
        let (eigs, vecs) = jacobi_eigen(&a, 30).unwrap();
        assert!((eigs[0] - 5.0).abs() < 1e-4);
        assert!((eigs[1] - 1.0).abs() < 1e-4);
        // Eigenvector rows are unit-norm.
        for r in 0..2 {
            let n = vector::l2_norm(vecs.row(r));
            assert!((n - 1.0).abs() < 1e-4);
        }
        // A v = λ v for the top pair.
        let av = a.matvec(vecs.row(0)).unwrap();
        for (x, &v) in av.iter().zip(vecs.row(0)) {
            assert!((x - eigs[0] * v).abs() < 1e-3);
        }
    }

    #[test]
    fn jacobi_rejects_non_square() {
        assert!(jacobi_eigen(&Matrix::zeros(2, 3), 10).is_err());
    }

    #[test]
    fn singular_values_of_rank_one() {
        // Outer product => exactly one nonzero singular value.
        let u = [1.0f32, 2.0];
        let v = [3.0f32, 0.0, 4.0];
        let a = Matrix::from_fn(2, 3, |r, c| u[r] * v[c]);
        let svs = singular_values(&a, 3).unwrap();
        let expected = vector::l2_norm(&u) * vector::l2_norm(&v);
        assert!((svs[0] - expected).abs() < 1e-3, "{svs:?}");
        assert!(svs[1].abs() < 1e-3);
    }

    #[test]
    fn effective_rank_separates_low_rank() {
        let mut rng = Pcg64::new(7);
        let full = Matrix::randn(8, 8, &mut rng);
        let u = Matrix::randn(8, 1, &mut rng);
        let v = Matrix::randn(1, 8, &mut rng);
        let low = u.matmul(&v).unwrap();
        assert_eq!(effective_rank(&low, 0.05).unwrap(), 1);
        assert!(effective_rank(&full, 0.01).unwrap() >= 6);
    }

    #[test]
    fn stable_rank_bounds() {
        let mut rng = Pcg64::new(9);
        let id = Matrix::identity(6);
        let sr = stable_rank(&id, &mut rng).unwrap();
        assert!((sr - 6.0).abs() < 0.2, "stable rank of identity {sr}");
        assert_eq!(stable_rank(&Matrix::zeros(3, 3), &mut rng).unwrap(), 0.0);
    }

    #[test]
    fn cg_matches_direct_solve() {
        let a = m(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let b = [1.0, 2.0, 3.0];
        let x_cg = conjugate_gradient(&a, &b, 0.0, 100, 1e-7).unwrap();
        let x_direct = solve_dense(&a, &b).unwrap();
        for (u, v) in x_cg.iter().zip(&x_direct) {
            assert!((u - v).abs() < 1e-3, "{x_cg:?} vs {x_direct:?}");
        }
    }

    #[test]
    fn cg_with_damping_shrinks_solution() {
        let a = Matrix::identity(4);
        let b = [1.0, 1.0, 1.0, 1.0];
        let x0 = conjugate_gradient(&a, &b, 0.0, 50, 1e-7).unwrap();
        let x1 = conjugate_gradient(&a, &b, 1.0, 50, 1e-7).unwrap();
        assert!(vector::l2_norm(&x1) < vector::l2_norm(&x0));
        // (I + I) x = b => x = 0.5 b
        assert!((x1[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn solve_dense_detects_singular() {
        let a = m(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            solve_dense(&a, &[1.0, 2.0]),
            Err(TensorError::Numerical(_))
        ));
        assert!(solve_dense(&Matrix::zeros(2, 3), &[0.0, 0.0]).is_err());
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = Matrix::identity(3);
        let x = conjugate_gradient(&a, &[0.0, 0.0, 0.0], 0.0, 10, 1e-9).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
